//! # unikernel — MirageOS-style appliance model
//!
//! A unikernel is a single-address-space VM produced by compiling the
//! application, its configuration and its device drivers into one image
//! (§2). This crate models the pieces of that story the evaluation depends
//! on:
//!
//! * [`image`] — the on-disk artefact: ~1 MB images, 8–16 MiB memory
//!   requirements, versus a multi-hundred-MiB Linux guest;
//! * [`boot`] — the guest-side boot pipeline of §2.3 (assembler boot tasks,
//!   MMU and exception setup, the C `arch_init`, binding the OCaml runtime,
//!   then attaching netfront and starting the application), with calibrated
//!   per-stage costs for ARM and x86 and the equivalent multi-second Linux
//!   boot used as the legacy-VM baseline;
//! * [`appliance`] — the application logic the evaluation runs inside
//!   unikernels: a static personal-site HTTP server and the disk-backed
//!   persistent HTTP queue whose throughput §4 reports;
//! * [`instance`] — a running unikernel: a [`netstack::Interface`] plus an
//!   appliance, fed Ethernet frames and producing response frames, with
//!   support for adopting proxied TCP connections from Synjitsu.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appliance;
pub mod boot;
pub mod image;
pub mod instance;

pub use appliance::{Appliance, QueueAppliance, StaticSiteAppliance};
pub use boot::{BootPipeline, BootStage};
pub use image::{ImageKind, UnikernelImage};
pub use instance::UnikernelInstance;
