//! Appliances: the application logic compiled into a unikernel.
//!
//! The evaluation exercises two appliance shapes: small personal web sites
//! (the `alice.family.name` scenario of §3.3.2 and §5) and the HTTP
//! persistent-queue service whose disk-bound throughput §4 reports at
//! 57.92 Mb/s. Both are implemented against the plain [`netstack::http`]
//! types so they can be driven over the simulated bridge, over a conduit or
//! directly in tests.

use jitsu_sim::{SimDuration, SimRng};
use netstack::http::{HttpRequest, HttpResponse};
use netstack::FrameBuf;
use platform::StorageDevice;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Application logic hosted inside a unikernel.
pub trait Appliance: std::fmt::Debug {
    /// The service name (matches the DNS label Jitsu maps to it).
    fn name(&self) -> &str;

    /// Handle one HTTP request, returning the response and the simulated
    /// processing time (most appliances are CPU-trivial; storage-backed ones
    /// charge their I/O).
    fn handle(&mut self, request: &HttpRequest, rng: &mut SimRng) -> (HttpResponse, SimDuration);
}

/// A static personal web site: a handful of pages served from memory.
#[derive(Debug, Clone)]
pub struct StaticSiteAppliance {
    name: String,
    /// Page bodies as shared buffers: serving a page hands the response an
    /// O(1) view instead of cloning the body per request.
    pages: BTreeMap<String, FrameBuf>,
    requests_served: u64,
}

impl StaticSiteAppliance {
    /// Create a site with a default index page.
    pub fn new(name: impl Into<String>) -> StaticSiteAppliance {
        let name = name.into();
        let mut pages = BTreeMap::new();
        pages.insert(
            "/".to_string(),
            FrameBuf::from_vec(
                format!("<html><body><h1>{name}</h1><p>served by a unikernel</p></body></html>")
                    .into_bytes(),
            ),
        );
        StaticSiteAppliance {
            name,
            pages,
            requests_served: 0,
        }
    }

    /// Add a page.
    pub fn add_page(&mut self, path: &str, body: impl Into<FrameBuf>) {
        self.pages.insert(path.to_string(), body.into());
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }
}

impl Appliance for StaticSiteAppliance {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, request: &HttpRequest, _rng: &mut SimRng) -> (HttpResponse, SimDuration) {
        self.requests_served += 1;
        let response = match self.pages.get(&request.path) {
            Some(body) if request.method == "GET" => HttpResponse::ok(body),
            Some(_) => HttpResponse::with_status(405, "Method Not Allowed", FrameBuf::empty()),
            None => HttpResponse::not_found(),
        };
        // Serving from the OCaml heap costs microseconds.
        (response, SimDuration::from_micros(200))
    }
}

/// The HTTP persistent-queue service of §4: items are POSTed onto a queue
/// and GET pops them; the working set is larger than RAM, so every
/// operation touches the backing store and throughput is disk-bound.
#[derive(Debug, Clone)]
pub struct QueueAppliance {
    name: String,
    backing: StorageDevice,
    /// Queue of item sizes (contents live "on disk"; we track sizes so the
    /// I/O cost model is exercised without holding the data in memory).
    items: VecDeque<usize>,
    bytes_served: u64,
    /// Fraction of reads absorbed by the in-memory cache; the paper's
    /// working set exceeds RAM so most requests miss.
    cache_hit_rate: f64,
}

impl QueueAppliance {
    /// Create a queue backed by a storage device.
    pub fn new(name: impl Into<String>, backing: StorageDevice) -> QueueAppliance {
        QueueAppliance {
            name: name.into(),
            backing,
            items: VecDeque::new(),
            bytes_served: 0,
            cache_hit_rate: 0.1,
        }
    }

    /// Pre-populate the queue with `count` items of `size` bytes (the
    /// throughput experiment serves a working set prepared in advance).
    pub fn preload(&mut self, count: usize, size: usize) {
        for _ in 0..count {
            self.items.push_back(size);
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total bytes served by GET requests.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

impl Appliance for QueueAppliance {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, request: &HttpRequest, rng: &mut SimRng) -> (HttpResponse, SimDuration) {
        match request.method.as_str() {
            "POST" => {
                let size = request.body.len();
                self.items.push_back(size);
                let io = self.backing.write_time(size, rng);
                (
                    HttpResponse::with_status(201, "Created", b"queued\n"),
                    io + SimDuration::from_micros(300),
                )
            }
            "GET" => match self.items.pop_front() {
                Some(size) => {
                    self.bytes_served += size as u64;
                    let io = if rng.chance(self.cache_hit_rate) {
                        SimDuration::from_micros(50)
                    } else {
                        self.backing.read_time(size, rng)
                    };
                    (
                        HttpResponse::ok(vec![0x51; size]),
                        io + SimDuration::from_micros(300),
                    )
                }
                None => (
                    HttpResponse::with_status(204, "No Content", FrameBuf::empty()),
                    SimDuration::from_micros(100),
                ),
            },
            _ => (
                HttpResponse::with_status(405, "Method Not Allowed", FrameBuf::empty()),
                SimDuration::from_micros(100),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::StorageKind;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(11)
    }

    #[test]
    fn static_site_serves_pages() {
        let mut site = StaticSiteAppliance::new("alice");
        site.add_page("/photos", b"<html>cats</html>".to_vec());
        let mut r = rng();
        let (resp, t) = site.handle(&HttpRequest::get("/", "alice.family.name"), &mut r);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("alice"));
        assert!(t < SimDuration::from_millis(1));
        let (resp, _) = site.handle(&HttpRequest::get("/photos", "alice.family.name"), &mut r);
        assert_eq!(resp.body, b"<html>cats</html>");
        let (resp, _) = site.handle(&HttpRequest::get("/missing", "alice.family.name"), &mut r);
        assert_eq!(resp.status, 404);
        let (resp, _) = site.handle(&HttpRequest::post("/", "h", vec![1]), &mut r);
        assert_eq!(resp.status, 405);
        assert_eq!(site.requests_served(), 4);
        assert_eq!(site.name(), "alice");
    }

    #[test]
    fn queue_post_then_get_round_trips() {
        let mut q = QueueAppliance::new("queue", StorageKind::SdCard.device());
        let mut r = rng();
        assert!(q.is_empty());
        let (resp, _) = q.handle(&HttpRequest::post("/q", "q", vec![7; 1000]), &mut r);
        assert_eq!(resp.status, 201);
        assert_eq!(q.len(), 1);
        let (resp, _) = q.handle(&HttpRequest::get("/q", "q"), &mut r);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 1000);
        assert_eq!(q.bytes_served(), 1000);
        let (resp, _) = q.handle(&HttpRequest::get("/q", "q"), &mut r);
        assert_eq!(resp.status, 204, "empty queue returns no content");
        let (resp, _) = q.handle(
            &HttpRequest {
                method: "DELETE".into(),
                path: "/q".into(),
                headers: Default::default(),
                body: FrameBuf::empty(),
            },
            &mut r,
        );
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn queue_get_cost_is_disk_bound_on_sd_card() {
        // Serving 64 KiB items from a 10 MB/s SD card costs milliseconds per
        // request — which is what bounds throughput to tens of Mb/s in §4.
        let mut q = QueueAppliance::new("queue", StorageKind::SdCard.device());
        q.preload(100, 64 * 1024);
        let mut r = rng();
        let mut total = SimDuration::ZERO;
        let mut bytes = 0u64;
        for _ in 0..100 {
            let (resp, t) = q.handle(&HttpRequest::get("/q", "q"), &mut r);
            bytes += resp.body.len() as u64;
            total += t;
        }
        let mbps = (bytes as f64 * 8.0) / total.as_secs_f64() / 1e6;
        assert!(
            (30.0..90.0).contains(&mbps),
            "disk-bound throughput should be tens of Mb/s, got {mbps:.1}"
        );
    }

    #[test]
    fn queue_on_ssd_is_faster_than_sd() {
        let mut sd = QueueAppliance::new("q", StorageKind::SdCard.device());
        let mut ssd = QueueAppliance::new("q", StorageKind::Ssd.device());
        sd.preload(50, 64 * 1024);
        ssd.preload(50, 64 * 1024);
        let mut r = rng();
        let mut t_sd = SimDuration::ZERO;
        let mut t_ssd = SimDuration::ZERO;
        for _ in 0..50 {
            t_sd += sd.handle(&HttpRequest::get("/q", "q"), &mut r).1;
            t_ssd += ssd.handle(&HttpRequest::get("/q", "q"), &mut r).1;
        }
        assert!(t_sd > t_ssd);
    }
}
