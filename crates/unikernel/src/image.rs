//! Unikernel and legacy-VM images.
//!
//! "the small binary size of unikernels (around 1MB) means that in many
//! cases we do not require a lot of space beyond that provided by the
//! internal MMC flash" (§4). Image descriptors capture the size and memory
//! requirements that drive both the domain-build time (Figure 4) and the
//! storage footprint comparison with containers and Linux VMs.

use xen_sim::domain::DomainConfig;

/// What kind of guest an image boots into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageKind {
    /// A MirageOS unikernel (single-purpose appliance).
    MirageUnikernel,
    /// A full Linux distribution image (the legacy-VM baseline).
    LinuxVm,
}

/// An image stored on the board, ready to be summoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnikernelImage {
    /// Service name (also the DNS label Jitsu maps to it).
    pub name: String,
    /// Image kind.
    pub kind: ImageKind,
    /// Size of the kernel image in bytes.
    pub kernel_bytes: usize,
    /// Memory the guest needs, in MiB.
    pub memory_mib: u32,
    /// Whether the appliance needs a block device (e.g. the persistent
    /// queue); pure network appliances do not.
    pub needs_storage: bool,
}

impl UnikernelImage {
    /// A typical MirageOS appliance image: ~1 MB binary, 16 MiB of RAM.
    pub fn mirage(name: impl Into<String>) -> UnikernelImage {
        UnikernelImage {
            name: name.into(),
            kind: ImageKind::MirageUnikernel,
            kernel_bytes: 1024 * 1024,
            memory_mib: 16,
            needs_storage: false,
        }
    }

    /// A minimal 8 MiB configuration ("8MB is plenty", §3.1).
    pub fn mirage_minimal(name: impl Into<String>) -> UnikernelImage {
        UnikernelImage {
            memory_mib: 8,
            ..UnikernelImage::mirage(name)
        }
    }

    /// A storage-backed appliance (the HTTP persistent queue of §4).
    pub fn mirage_with_storage(name: impl Into<String>) -> UnikernelImage {
        UnikernelImage {
            needs_storage: true,
            ..UnikernelImage::mirage(name)
        }
    }

    /// A full Ubuntu 14.04 guest, the legacy-VM comparison point: hundreds
    /// of MiB of disk and at least 128 MiB of RAM.
    pub fn ubuntu(name: impl Into<String>) -> UnikernelImage {
        UnikernelImage {
            name: name.into(),
            kind: ImageKind::LinuxVm,
            kernel_bytes: 12 * 1024 * 1024,
            memory_mib: 128,
            needs_storage: true,
        }
    }

    /// The domain configuration needed to build this image.
    pub fn domain_config(&self) -> DomainConfig {
        let base = match self.kind {
            ImageKind::MirageUnikernel => DomainConfig::unikernel(self.name.clone()),
            ImageKind::LinuxVm => DomainConfig::linux_vm(self.name.clone()),
        };
        DomainConfig {
            memory_mib: self.memory_mib,
            kernel_size_bytes: self.kernel_bytes,
            ..base
        }
    }

    /// How many images of this size fit in a storage budget — the §4
    /// observation that many appliances fit in on-board flash.
    pub fn images_per_storage(&self, storage_bytes: usize) -> usize {
        if self.kernel_bytes == 0 {
            return usize::MAX;
        }
        storage_bytes / self.kernel_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirage_images_are_tiny() {
        let img = UnikernelImage::mirage("www-alice");
        assert_eq!(img.kernel_bytes, 1024 * 1024);
        assert_eq!(img.memory_mib, 16);
        assert!(!img.needs_storage);
        let minimal = UnikernelImage::mirage_minimal("tiny");
        assert_eq!(minimal.memory_mib, 8);
        let ubuntu = UnikernelImage::ubuntu("legacy");
        assert!(ubuntu.kernel_bytes > 10 * img.kernel_bytes);
        assert!(ubuntu.memory_mib >= 128);
    }

    #[test]
    fn domain_config_reflects_image() {
        let img = UnikernelImage::mirage("www");
        let cfg = img.domain_config();
        assert_eq!(cfg.memory_mib, 16);
        assert_eq!(cfg.kernel_size_bytes, 1024 * 1024);
        assert_eq!(cfg.name, "www");
        let ucfg = UnikernelImage::ubuntu("u").domain_config();
        assert_eq!(ucfg.memory_mib, 128);
    }

    #[test]
    fn many_unikernels_fit_in_onboard_flash() {
        // A 4 GB eMMC holds thousands of 1 MB appliances but only a handful
        // of multi-GB Linux images.
        let mirage = UnikernelImage::mirage("x");
        assert!(mirage.images_per_storage(4 * 1024 * 1024 * 1024) >= 4000);
        let storage_appliance = UnikernelImage::mirage_with_storage("q");
        assert!(storage_appliance.needs_storage);
    }
}
