//! The guest-side boot pipeline.
//!
//! After the toolstack finishes *constructing* a domain (Figure 4), the
//! guest still has to boot before it can serve traffic. §2.3 walks through
//! the MirageOS/ARM sequence: assembler boot tasks (MMU, caches, exception
//! vectors, stack), the early C `arch_init` (console, interrupt
//! controllers), binding interrupt handlers / memory allocators /
//! timekeeping / grant tables into the language runtime, then jumping into
//! OCaml where the memory-safe libraries attach netfront and start the
//! application. The calibrated stage costs below put an optimised cold start
//! (construction + boot + first response) at roughly 300–350 ms on the
//! Cubieboard2 and 20–30 ms on x86, matching §3.3/§6, while a legacy Linux
//! guest needs several seconds.

use crate::image::ImageKind;
use jitsu_sim::SimDuration;
use platform::Board;

/// One stage of guest boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BootStage {
    /// Assembler boot tasks: MMU configuration, caches and branch
    /// prediction, the exception vector table and the stack pointer (§2.3).
    AssemblerSetup,
    /// Early C code: virtual logging console and interrupt controllers.
    EarlyCInit,
    /// Binding interrupt handlers, memory allocators, timekeeping and grant
    /// tables into the language runtime.
    RuntimeBind,
    /// Starting the OCaml runtime and growing the managed heap.
    LanguageRuntime,
    /// Attaching the PV network frontend and bringing up the TCP/IP stack.
    NetfrontAttach,
    /// Application initialisation (reading configuration, binding sockets).
    ApplicationStart,
    /// Linux-only: kernel decompression, driver probing, init system and
    /// userspace services — the reason legacy VM boot takes seconds.
    LinuxUserspace,
}

impl BootStage {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BootStage::AssemblerSetup => "assembler setup (MMU, caches, vectors, stack)",
            BootStage::EarlyCInit => "early C init (console, interrupt controllers)",
            BootStage::RuntimeBind => "runtime bind (allocator, timekeeping, grant tables)",
            BootStage::LanguageRuntime => "language runtime start",
            BootStage::NetfrontAttach => "netfront attach + TCP/IP up",
            BootStage::ApplicationStart => "application start",
            BootStage::LinuxUserspace => "Linux kernel + userspace boot",
        }
    }
}

/// A boot pipeline: ordered stages with calibrated durations for a board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootPipeline {
    stages: Vec<(BootStage, SimDuration)>,
}

impl BootPipeline {
    /// The pipeline for an image kind on a board. Stage costs are expressed
    /// on the x86 reference machine and scaled by the board's CPU factor.
    pub fn for_image(kind: ImageKind, board: &Board) -> BootPipeline {
        let scale = |us: u64| board.scale_cpu(SimDuration::from_micros(us));
        let stages = match kind {
            ImageKind::MirageUnikernel => vec![
                (BootStage::AssemblerSetup, scale(300)),
                (BootStage::EarlyCInit, scale(1_200)),
                (BootStage::RuntimeBind, scale(6_000)),
                (BootStage::LanguageRuntime, scale(10_000)),
                (BootStage::NetfrontAttach, scale(8_000)),
                (BootStage::ApplicationStart, scale(5_000)),
            ],
            ImageKind::LinuxVm => vec![
                (BootStage::AssemblerSetup, scale(500)),
                (BootStage::EarlyCInit, scale(5_000)),
                (BootStage::RuntimeBind, scale(20_000)),
                (BootStage::NetfrontAttach, scale(30_000)),
                // Kernel + init + userspace dominates: ~600 ms on x86,
                // several seconds on the ARM board.
                (BootStage::LinuxUserspace, scale(600_000)),
                (BootStage::ApplicationStart, scale(40_000)),
            ],
        };
        BootPipeline { stages }
    }

    /// The ordered stages with their durations.
    pub fn stages(&self) -> &[(BootStage, SimDuration)] {
        &self.stages
    }

    /// Total guest boot time (excluding domain construction).
    pub fn total(&self) -> SimDuration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Time from the start of boot until the network frontend is attached —
    /// the moment the unikernel can signal Synjitsu that it is ready to take
    /// over its proxied connections.
    pub fn time_to_network_ready(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for (stage, d) in &self.stages {
            total += *d;
            if *stage == BootStage::NetfrontAttach {
                return total;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    #[test]
    fn mirage_arm_boot_is_a_few_hundred_ms() {
        let board = BoardKind::Cubieboard2.board();
        let p = BootPipeline::for_image(ImageKind::MirageUnikernel, &board);
        let total = p.total();
        // §3.3: unikernel boot takes ~350 ms on ARM including construction;
        // the guest-side portion here is the remainder after the ~120 ms
        // optimised construction.
        assert!((150..260).contains(&total.as_millis()), "total={total}");
        assert!(p.time_to_network_ready() <= total);
        assert!(p.time_to_network_ready() > total - SimDuration::from_millis(50));
        assert_eq!(p.stages().len(), 6);
    }

    #[test]
    fn mirage_x86_boot_is_about_ten_ms() {
        let board = BoardKind::X86Server.board();
        let p = BootPipeline::for_image(ImageKind::MirageUnikernel, &board);
        assert!(
            (20..40).contains(&p.total().as_millis()),
            "total={}",
            p.total()
        );
    }

    #[test]
    fn linux_boot_takes_seconds_on_arm() {
        let board = BoardKind::Cubieboard2.board();
        let p = BootPipeline::for_image(ImageKind::LinuxVm, &board);
        let secs = p.total().as_secs_f64();
        assert!(
            (3.0..6.0).contains(&secs),
            "paper: 3-5 s Linux VM boot, got {secs}"
        );
        let mirage = BootPipeline::for_image(ImageKind::MirageUnikernel, &board);
        assert!(p.total() > mirage.total() * 10);
    }

    #[test]
    fn cold_start_budget_matches_paper() {
        // Optimised construction (~120 ms, from xen-sim) plus guest boot
        // must land in the 300–350 ms cold-start envelope of §3.3/§6.
        let board = BoardKind::Cubieboard2.board();
        let construction = SimDuration::from_millis(120);
        let boot = BootPipeline::for_image(ImageKind::MirageUnikernel, &board).total();
        let cold_start = construction + boot;
        assert!(
            (280..380).contains(&cold_start.as_millis()),
            "cold start {cold_start}"
        );
    }

    #[test]
    fn stage_labels_are_descriptive() {
        for (stage, _) in
            BootPipeline::for_image(ImageKind::LinuxVm, &BoardKind::X86Server.board()).stages()
        {
            assert!(!stage.label().is_empty());
        }
        assert!(BootStage::AssemblerSetup.label().contains("MMU"));
        assert!(BootStage::RuntimeBind.label().contains("grant tables"));
    }

    #[test]
    fn network_ready_before_application_start_for_mirage() {
        let board = BoardKind::Cubieboard2.board();
        let p = BootPipeline::for_image(ImageKind::MirageUnikernel, &board);
        let app_total = p.total();
        let net_ready = p.time_to_network_ready();
        assert!(net_ready < app_total);
    }
}
