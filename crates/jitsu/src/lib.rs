//! # jitsu — just-in-time summoning of unikernels
//!
//! This crate is the paper's primary contribution: the toolstack layer that
//! launches unikernels in response to network traffic and masks their boot
//! latency.
//!
//! * [`config`] — service configuration: which DNS name maps to which
//!   unikernel image, external IP, protocol and port (§3.3.2);
//! * [`directory`] — the Jitsu directory service: an authoritative DNS
//!   responder that returns the address of a running unikernel, triggers a
//!   launch for a known-but-not-running one, or answers `SERVFAIL` when the
//!   host is out of resources;
//! * [`launcher`] — summoning and retiring unikernels through the
//!   (optimised) `xen-sim` toolstack, composing domain construction with the
//!   guest boot pipeline;
//! * [`synjitsu`] — the SYN proxy: accepts embryonic TCP connections on
//!   behalf of still-booting unikernels, buffers their data, and records the
//!   connection state in XenStore (Figure 7);
//! * [`handoff`] — the two-phase commit through XenStore that guarantees
//!   exactly one of Synjitsu or the unikernel answers any given packet;
//! * [`jitsud`] — the daemon tying it all together, with the end-to-end
//!   cold-start and warm-request timelines that Figure 9a measures;
//! * [`concurrent`] — the event-driven concurrent engine: per-service
//!   lifecycle state machines scheduled on the `jitsu_sim` event engine,
//!   with launch-slot admission control, duplicate-query coalescing,
//!   memory-exhaustion `SERVFAIL` and idle reaping (§3.3) — the machinery
//!   the boot-storm experiment drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod config;
pub mod directory;
pub mod fleet;
pub mod handoff;
pub mod jitsud;
pub mod launcher;
pub mod synjitsu;

pub use concurrent::{ConcurrentJitsud, Lifecycle, LifecyclePhase, StormMetrics, StormSim};
pub use config::{JitsuConfig, Protocol, ServiceConfig};
pub use directory::{DirectoryAction, DirectoryService, ServicePhase};
pub use fleet::{FleetMsg, FleetSim};
pub use handoff::{HandoffCoordinator, HandoffPhase};
pub use jitsud::{ColdStartMode, ColdStartReport, Jitsud, RequestOutcome};
pub use launcher::{LaunchOutcome, Launcher};
pub use synjitsu::Synjitsu;
