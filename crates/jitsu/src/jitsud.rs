//! jitsud: the Jitsu daemon and its end-to-end request timelines.
//!
//! This module composes everything the crate provides into the flows the
//! paper evaluates (Figure 6 shows the cold-start flow; Figure 9a measures
//! it):
//!
//! 1. a DNS query arrives for a configured name — the directory answers
//!    immediately and triggers a launch;
//! 2. the optimised toolstack constructs the domain while Synjitsu (if
//!    enabled) answers the client's SYN and buffers its request;
//! 3. when the unikernel's network stack attaches, the buffered connection
//!    state is handed over via XenStore and the unikernel replays and
//!    answers the request;
//! 4. subsequent requests hit the already-running unikernel directly
//!    (≈5 ms on the local network).
//!
//! Without Synjitsu, the early SYN is simply lost and the client's kernel
//! retransmits after the conventional 1 s initial retransmission timeout —
//! which is exactly the >1 s mode visible in Figure 9a.

use crate::config::{JitsuConfig, ServiceConfig};
use crate::directory::{DirectoryAction, DirectoryService};
use crate::launcher::{LaunchError, LaunchOutcome, Launcher};
use crate::synjitsu::Synjitsu;
use jitsu_sim::{SimDuration, SimTime, Tracer};
use netstack::dns::{DnsMessage, Rcode};
use netstack::ethernet::MacAddr;
use netstack::http::{HttpRequest, HttpResponse};
use netstack::iface::Interface;
use netstack::ipv4::Ipv4Addr;
use platform::Board;
use std::collections::BTreeMap;
use unikernel::instance::UnikernelInstance;
use xen_sim::toolstack::Toolstack;
use xenstore::DomId;

/// Which Figure 9a configuration a cold start uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdStartMode {
    /// No Synjitsu: the first SYN is lost and the client retransmits.
    NoSynjitsu,
    /// Synjitsu with the vanilla (unoptimised) toolstack.
    SynjitsuVanillaToolstack,
    /// Synjitsu with the optimised Jitsu toolstack.
    SynjitsuOptimised,
}

impl ColdStartMode {
    /// The Figure 9a legend label.
    pub fn label(self) -> &'static str {
        match self {
            ColdStartMode::NoSynjitsu => "Jitsu cold start (no synjitsu)",
            ColdStartMode::SynjitsuVanillaToolstack => {
                "Jitsu cold start w/ synjitsu, vanilla toolstack"
            }
            ColdStartMode::SynjitsuOptimised => "Jitsu cold start w/ synjitsu, optimised toolstack",
        }
    }

    /// All modes in legend order.
    pub const ALL: [ColdStartMode; 3] = [
        ColdStartMode::NoSynjitsu,
        ColdStartMode::SynjitsuVanillaToolstack,
        ColdStartMode::SynjitsuOptimised,
    ];
}

/// The outcome of an end-to-end request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdStartReport {
    /// The service requested.
    pub name: String,
    /// Time from the client's DNS query to its receipt of the DNS answer.
    pub dns_response_time: SimDuration,
    /// Time from the client's DNS query to its receipt of the full HTTP
    /// response — the quantity Figure 9a plots.
    pub http_response_time: SimDuration,
    /// When (relative to the query) the unikernel's application was ready.
    pub unikernel_ready_after: SimDuration,
    /// Number of client SYN retransmissions that occurred.
    pub syn_retransmissions: u32,
    /// HTTP status of the final response.
    pub http_status: u16,
    /// Whether Synjitsu proxied the connection.
    pub proxied: bool,
}

/// The outcome of a request against an already-running service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// End-to-end response time.
    pub response_time: SimDuration,
    /// HTTP status.
    pub http_status: u16,
}

/// Errors from jitsud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitsudError {
    /// The requested name is not configured on this host.
    UnknownService(String),
    /// The host could not summon the unikernel.
    Launch(LaunchError),
    /// An internal invariant failed (details in the message).
    Internal(String),
}

/// The Jitsu daemon.
pub struct Jitsud {
    config: JitsuConfig,
    directory: DirectoryService,
    launcher: Launcher,
    synjitsu: Synjitsu,
    instances: BTreeMap<String, UnikernelInstance>,
    doms: BTreeMap<String, DomId>,
    /// One-way propagation delay on the local segment (half the ~5 ms local
    /// RTT quoted in §3.3).
    one_way_delay: SimDuration,
    /// The client kernel's initial SYN retransmission timeout (1 s, per
    /// §3.3: "the client retransmits after 1s").
    syn_rto: SimDuration,
    dns_processing: SimDuration,
    handoff_cost: SimDuration,
    clock: SimTime,
    /// Event trace of the cold-start flow (Figure 6's numbered steps).
    pub tracer: Tracer,
    seed_counter: u64,
}

impl Jitsud {
    /// Start the daemon for a board and configuration.
    pub fn new(config: JitsuConfig, board: Board, seed: u64) -> Jitsud {
        let toolstack = Toolstack::new(board.clone(), config.engine, seed);
        let launcher = Launcher::new(toolstack, config.boot);
        let directory = DirectoryService::new(config.clone());
        Jitsud {
            config,
            directory,
            launcher,
            synjitsu: Synjitsu::new(),
            instances: BTreeMap::new(),
            doms: BTreeMap::new(),
            one_way_delay: SimDuration::from_micros(2_500),
            syn_rto: SimDuration::from_secs(1),
            dns_processing: board.scale_cpu(SimDuration::from_micros(150)),
            handoff_cost: board.scale_cpu(SimDuration::from_micros(700)),
            clock: SimTime::ZERO,
            tracer: Tracer::new(),
            seed_counter: seed,
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &JitsuConfig {
        &self.config
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of unikernels currently running.
    pub fn running_count(&self) -> usize {
        self.instances.len()
    }

    /// Whether a service is currently running.
    pub fn is_running(&self, name: &str) -> bool {
        self.instances.contains_key(name.trim_matches('.'))
    }

    /// Advance the virtual clock (e.g. between requests in an experiment).
    pub fn advance_clock(&mut self, by: SimDuration) {
        self.clock += by;
    }

    fn next_seed(&mut self) -> u64 {
        self.seed_counter = self
            .seed_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.seed_counter
    }

    fn service(&self, name: &str) -> Result<ServiceConfig, JitsudError> {
        self.config
            .service(name)
            .cloned()
            .ok_or_else(|| JitsudError::UnknownService(name.to_string()))
    }

    /// Handle a DNS query at the current virtual time, returning the
    /// response, the action taken, and the launch outcome if a summon was
    /// triggered.
    pub fn handle_dns(
        &mut self,
        query: &DnsMessage,
    ) -> (DnsMessage, DirectoryAction, Option<LaunchOutcome>) {
        let name = query.queried_name().unwrap_or_default().to_string();
        let resources = self
            .config
            .service(&name)
            .map(|s| self.launcher.has_resources_for(s))
            .unwrap_or(true);
        let (response, action) = self.directory.handle_query(query, self.clock, resources);
        let launch = if let DirectoryAction::Launch { name } = &action {
            match self.launch(name) {
                Ok(outcome) => Some(outcome),
                Err(_) => {
                    self.directory.mark_stopped(name);
                    None
                }
            }
        } else {
            None
        };
        (response, action, launch)
    }

    fn launch(&mut self, name: &str) -> Result<LaunchOutcome, JitsudError> {
        let service = self.service(name)?;
        let seed = self.next_seed();
        let launch_start = self.clock + self.dns_processing;
        let (outcome, instance) = self
            .launcher
            .summon(&service, launch_start, seed)
            .map_err(JitsudError::Launch)?;
        if self.config.use_synjitsu {
            self.synjitsu
                .start_proxying(&mut self.launcher.toolstack.xenstore, &service)
                .map_err(|e| JitsudError::Internal(e.to_string()))?;
        }
        self.tracer.emit(
            launch_start,
            "jitsud",
            format!("summoning {} as dom{}", name, outcome.dom.0),
        );
        self.instances.insert(service.name.clone(), instance);
        self.doms.insert(service.name.clone(), outcome.dom);
        // The linear timeline completes the whole launch synchronously, so
        // promote the directory's Launching entry to Running at the moment
        // the application comes up (the concurrent engine instead does this
        // from its app-ready event).
        self.directory
            .mark_ready(&service.name, outcome.app_ready_at());
        Ok(outcome)
    }

    /// Retire services idle longer than the configured timeout; returns the
    /// names retired.
    pub fn retire_idle(&mut self) -> Vec<String> {
        let idle = self.directory.idle_services(self.clock);
        for name in &idle {
            if let Some(dom) = self.doms.remove(name) {
                if let Err(e) = self.launcher.retire(dom) {
                    self.tracer.emit(
                        self.clock,
                        "jitsud",
                        format!("retire of idle {name} failed: {e:?}"),
                    );
                }
            }
            self.instances.remove(name);
            self.directory.mark_stopped(name);
            self.tracer
                .emit(self.clock, "jitsud", format!("retired idle service {name}"));
        }
        idle
    }

    /// Run one complete cold-start request for `name` from an external
    /// client: DNS query → (launch, proxying/handoff or SYN retransmission)
    /// → HTTP response. The heavy lifting — TCP handshake, TCB
    /// serialisation, request replay — is done with the real `netstack` and
    /// XenStore machinery; the virtual clock stitches the stages together.
    pub fn cold_start_request(
        &mut self,
        name: &str,
        client_ip: Ipv4Addr,
        path: &str,
    ) -> Result<ColdStartReport, JitsudError> {
        let service = self.service(name)?;
        if self.is_running(&service.name) {
            return Err(JitsudError::Internal(format!(
                "{name} is already running; use warm_request"
            )));
        }
        let t_query = self.clock;
        let client_mac = MacAddr([2, 0, 0, 0, 0, client_ip.0[3]]);

        // --- 1. DNS resolution triggers the launch -------------------------
        let query = DnsMessage::query(1, &service.name);
        let (response, _action, launch) = self.handle_dns(&query);
        if response.rcode != Rcode::NoError {
            return Err(JitsudError::Launch(LaunchError::OutOfResources));
        }
        let launch = launch.ok_or_else(|| {
            JitsudError::Internal("expected the query to trigger a launch".into())
        })?;
        let t_dns_at_client = t_query + self.dns_processing + self.one_way_delay;
        self.tracer
            .emit(t_dns_at_client, "client", "DNS answer received");

        // --- 2. The client opens TCP and sends its request -----------------
        let mut client = Interface::new(client_mac, client_ip);
        client.add_arp_entry(service.ip, service.mac());
        let syn_frame = client.tcp_connect(service.ip, service.port);
        let t_syn_arrives = t_dns_at_client + self.one_way_delay;
        let client_port = 49152u16;
        let request_bytes = HttpRequest::get(path, &service.name).emit();

        let network_ready = launch.network_ready_at();
        let app_ready = launch.app_ready_at();
        let mut retransmissions = 0u32;
        let proxied = self.config.use_synjitsu;

        let (response_frames, t_response_sent);
        if proxied {
            // Synjitsu answers the handshake immediately and buffers the
            // request until the unikernel is ready.
            let xs = &mut self.launcher.toolstack.xenstore;
            let mut to_proxy = vec![syn_frame];
            let mut frames_from_proxy = Vec::new();
            for _ in 0..8 {
                if to_proxy.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                for f in to_proxy.drain(..) {
                    next.extend(
                        self.synjitsu
                            .handle_frame(xs, &service.name, &f)
                            .map_err(|e| JitsudError::Internal(e.to_string()))?,
                    );
                }
                for f in next.drain(..) {
                    let (out, _) = client.handle_frame(&f);
                    frames_from_proxy.extend(out.clone());
                    to_proxy.extend(out);
                }
            }
            let t_handshake_done = t_syn_arrives + self.one_way_delay * 2;
            self.tracer.emit(
                t_handshake_done,
                "synjitsu",
                "handshake completed on behalf of booting unikernel",
            );
            // The client sends its HTTP request; Synjitsu buffers it.
            let req_frame = client
                .tcp_send((service.ip, service.port), client_port, &request_bytes)
                .ok_or_else(|| JitsudError::Internal("client connection missing".into()))?;
            let acks = self
                .synjitsu
                .handle_frame(xs, &service.name, &req_frame)
                .map_err(|e| JitsudError::Internal(e.to_string()))?;
            for f in acks {
                client.handle_frame(&f);
            }

            // --- 3. Handoff once the unikernel's network stack is up -------
            let tcbs = self
                .synjitsu
                .handoff(xs, &service.name)
                .map_err(|e| JitsudError::Internal(e.to_string()))?;
            let instance = self
                .instances
                .get_mut(&service.name)
                .ok_or_else(|| JitsudError::Internal("instance missing".into()))?;
            let mut frames = Vec::new();
            let mut appliance_cost = SimDuration::ZERO;
            for tcb in tcbs {
                let (f, cost) = instance.adopt_handoff(tcb, client_mac);
                frames.extend(f);
                appliance_cost += cost;
            }
            let t_handoff_done = network_ready + self.handoff_cost;
            t_response_sent = t_handoff_done + appliance_cost;
            response_frames = frames;
            self.tracer.emit(
                t_handoff_done,
                "unikernel",
                "adopted proxied connections and replayed buffered requests",
            );
        } else {
            // No Synjitsu: the SYN is dropped until the unikernel listens.
            let mut t_attempt = t_syn_arrives;
            while t_attempt < app_ready {
                retransmissions += 1;
                // Exponential backoff: 1 s, then 2 s, then 4 s…
                let backoff = self.syn_rto * (1u64 << (retransmissions - 1).min(6));
                t_attempt += backoff;
            }
            self.tracer.emit(
                t_attempt,
                "client",
                format!("SYN finally answered after {retransmissions} retransmission(s)"),
            );
            // Handshake + request against the (now running) unikernel.
            let instance = self
                .instances
                .get_mut(&service.name)
                .ok_or_else(|| JitsudError::Internal("instance missing".into()))?;
            instance.iface.add_arp_entry(client_ip, client_mac);
            let syn_frame = client.tcp_connect(service.ip, service.port);
            let mut to_server = vec![syn_frame];
            for _ in 0..8 {
                if to_server.is_empty() {
                    break;
                }
                let mut to_client = Vec::new();
                for f in to_server.drain(..) {
                    let (out, _) = instance.handle_frame(&f);
                    to_client.extend(out);
                }
                for f in to_client {
                    let (out, _) = client.handle_frame(&f);
                    to_server.extend(out);
                }
            }
            let req_frame = client
                .tcp_send((service.ip, service.port), client_port + 1, &request_bytes)
                .or_else(|| {
                    client.tcp_send((service.ip, service.port), client_port, &request_bytes)
                })
                .ok_or_else(|| JitsudError::Internal("client connection missing".into()))?;
            let (frames, appliance_cost) = instance.handle_frame(&req_frame);
            // handshake (1 RTT) + request flight + processing.
            t_response_sent = t_attempt + self.one_way_delay * 4 + appliance_cost;
            response_frames = frames;
        }

        // --- 4. The client receives and parses the response ----------------
        let mut http_status = 0u16;
        let mut collected = Vec::new();
        for frame in &response_frames {
            let (_, events) = client.handle_frame(frame);
            for ev in events {
                if let netstack::iface::IfaceEvent::TcpData { data, .. } = ev {
                    collected.extend_from_slice(&data);
                }
            }
        }
        if let Ok(Some(resp)) = HttpResponse::parse(&collected.into()) {
            http_status = resp.status;
        }
        let t_response_at_client = t_response_sent + self.one_way_delay;
        let report = ColdStartReport {
            name: service.name.clone(),
            dns_response_time: t_dns_at_client.duration_since(t_query),
            http_response_time: t_response_at_client.duration_since(t_query),
            unikernel_ready_after: app_ready.duration_since(t_query),
            syn_retransmissions: retransmissions,
            http_status,
            proxied,
        };
        self.clock = t_response_at_client;
        self.directory.touch(&service.name, self.clock);
        Ok(report)
    }

    /// Run one request against an already-running service (the
    /// "already-booted service responds in ≈5 ms" case of §3).
    pub fn warm_request(
        &mut self,
        name: &str,
        client_ip: Ipv4Addr,
        path: &str,
    ) -> Result<RequestOutcome, JitsudError> {
        let service = self.service(name)?;
        let seed = self.next_seed();
        let instance = self
            .instances
            .get_mut(&service.name)
            .ok_or_else(|| JitsudError::UnknownService(format!("{name} is not running")))?;
        let client_mac = MacAddr([2, 0, 0, 0, 0, client_ip.0[3]]);
        let mut client = Interface::new(client_mac, client_ip);
        // Each simulated client picks a distinct ephemeral port so repeated
        // requests from the same address do not collide with connections a
        // previous client (or a Synjitsu handoff) left behind.
        let ephemeral = 50_000 + (seed % 10_000) as u16;
        client.set_ephemeral_base(ephemeral);
        client.add_arp_entry(service.ip, service.mac());
        instance.iface.add_arp_entry(client_ip, client_mac);

        // Handshake.
        let syn = client.tcp_connect(service.ip, service.port);
        let mut to_server = vec![syn];
        for _ in 0..8 {
            if to_server.is_empty() {
                break;
            }
            let mut to_client = Vec::new();
            for f in to_server.drain(..) {
                let (out, _) = instance.handle_frame(&f);
                to_client.extend(out);
            }
            for f in to_client {
                let (out, _) = client.handle_frame(&f);
                to_server.extend(out);
            }
        }
        // Request/response.
        let request = HttpRequest::get(path, &service.name).emit();
        let req_frame = client
            .tcp_send((service.ip, service.port), ephemeral, &request)
            .ok_or_else(|| JitsudError::Internal("handshake failed".into()))?;
        let (frames, appliance_cost) = instance.handle_frame(&req_frame);
        let mut collected = Vec::new();
        for frame in &frames {
            let (_, events) = client.handle_frame(frame);
            for ev in events {
                if let netstack::iface::IfaceEvent::TcpData { data, .. } = ev {
                    collected.extend_from_slice(&data);
                }
            }
        }
        let status = HttpResponse::parse(&collected.into())
            .ok()
            .flatten()
            .map(|r| r.status)
            .unwrap_or(0);
        // 1.5 RTTs of handshake + request flight + processing + response.
        let response_time = self.one_way_delay * 4 + appliance_cost;
        self.clock += response_time;
        self.directory.touch(&service.name, self.clock);
        Ok(RequestOutcome {
            response_time,
            http_status: status,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    fn config() -> JitsuConfig {
        JitsuConfig::new("family.name").with_service(ServiceConfig::http_site(
            "alice.family.name",
            Ipv4Addr::new(192, 168, 1, 20),
        ))
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);

    #[test]
    fn optimised_cold_start_responds_in_300_to_400ms() {
        let mut jitsud = Jitsud::new(config(), BoardKind::Cubieboard2.board(), 1);
        let report = jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        let ms = report.http_response_time.as_millis();
        assert!((250..420).contains(&ms), "cold start response = {ms} ms");
        assert_eq!(report.http_status, 200);
        assert_eq!(report.syn_retransmissions, 0);
        assert!(report.proxied);
        assert!(report.dns_response_time < SimDuration::from_millis(10));
        assert!(jitsud.is_running("alice.family.name"));
    }

    #[test]
    fn cold_start_without_synjitsu_takes_over_a_second() {
        let mut jitsud = Jitsud::new(
            config().without_synjitsu(),
            BoardKind::Cubieboard2.board(),
            1,
        );
        let report = jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        let ms = report.http_response_time.as_millis();
        assert!(
            ms > 1000,
            "SYN retransmission pushes response over 1 s: {ms} ms"
        );
        assert!(report.syn_retransmissions >= 1);
        assert_eq!(report.http_status, 200);
        assert!(!report.proxied);
    }

    #[test]
    fn vanilla_toolstack_with_synjitsu_lands_in_between() {
        let mut optimised = Jitsud::new(config(), BoardKind::Cubieboard2.board(), 1);
        let mut vanilla = Jitsud::new(
            config().with_vanilla_toolstack(),
            BoardKind::Cubieboard2.board(),
            1,
        );
        let fast = optimised
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        let slow = vanilla
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        assert!(slow.http_response_time > fast.http_response_time);
        assert!(slow.http_response_time < SimDuration::from_secs(1));
        assert_eq!(slow.http_status, 200);
    }

    #[test]
    fn warm_requests_are_a_few_milliseconds() {
        let mut jitsud = Jitsud::new(config(), BoardKind::Cubieboard2.board(), 1);
        jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        let warm = jitsud
            .warm_request("alice.family.name", CLIENT, "/")
            .unwrap();
        assert!(
            warm.response_time < SimDuration::from_millis(15),
            "warm = {}",
            warm.response_time
        );
        assert_eq!(warm.http_status, 200);
    }

    #[test]
    fn x86_cold_start_is_tens_of_milliseconds() {
        let mut jitsud = Jitsud::new(config(), BoardKind::X86Server.board(), 1);
        let report = jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        let ms = report.http_response_time.as_millis();
        assert!((20..80).contains(&ms), "x86 cold start = {ms} ms");
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut jitsud = Jitsud::new(config(), BoardKind::Cubieboard2.board(), 1);
        assert!(matches!(
            jitsud.cold_start_request("carol.family.name", CLIENT, "/"),
            Err(JitsudError::UnknownService(_))
        ));
        assert!(matches!(
            jitsud.warm_request("alice.family.name", CLIENT, "/"),
            Err(JitsudError::UnknownService(_)),
        ));
    }

    #[test]
    fn dns_for_running_service_does_not_relaunch() {
        let mut jitsud = Jitsud::new(config(), BoardKind::Cubieboard2.board(), 1);
        jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        let before = jitsud.running_count();
        let (resp, action, launch) = jitsud.handle_dns(&DnsMessage::query(9, "alice.family.name"));
        assert_eq!(resp.rcode, Rcode::NoError);
        assert!(matches!(action, DirectoryAction::AlreadyRunning { .. }));
        assert!(launch.is_none());
        assert_eq!(jitsud.running_count(), before);
    }

    #[test]
    fn idle_services_are_retired_and_can_be_resummoned() {
        let mut cfg = config();
        cfg.idle_timeout = Some(SimDuration::from_secs(60));
        let mut jitsud = Jitsud::new(cfg, BoardKind::Cubieboard2.board(), 1);
        jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        assert_eq!(jitsud.running_count(), 1);
        jitsud.advance_clock(SimDuration::from_secs(120));
        let retired = jitsud.retire_idle();
        assert_eq!(retired, vec!["alice.family.name".to_string()]);
        assert_eq!(jitsud.running_count(), 0);
        // The next request cold-starts again.
        let report = jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        assert_eq!(report.http_status, 200);
    }

    #[test]
    fn trace_records_the_figure6_flow() {
        let mut jitsud = Jitsud::new(config(), BoardKind::Cubieboard2.board(), 1);
        jitsud
            .cold_start_request("alice.family.name", CLIENT, "/")
            .unwrap();
        assert!(jitsud.tracer.find("summoning").is_some());
        assert!(jitsud.tracer.find("handshake completed").is_some());
        assert!(jitsud.tracer.find("adopted proxied connections").is_some());
        assert!(jitsud
            .tracer
            .happens_before("summoning", "adopted proxied connections"));
    }
}
