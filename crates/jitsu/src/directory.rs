//! The Jitsu directory service: DNS-triggered summoning.
//!
//! "A Jitsu VM is launched at boot time with access to the external network
//! and handles name resolution ... If a name resolution request is received
//! that maps onto a running unikernel, Jitsu just returns an appropriate IP
//! address or vchan endpoint. If the name requested does not correspond to a
//! running unikernel, Jitsu launches the desired unikernel while
//! simultaneously returning an appropriate endpoint" (§3.3). Resource
//! exhaustion is reported as `SERVFAIL` so clients fail over to another
//! board.

use crate::config::JitsuConfig;
use jitsu_sim::SimTime;
use netstack::dns::{DnsMessage, Rcode};
use netstack::ipv4::Ipv4Addr;
use std::collections::BTreeMap;

/// What the directory decided to do with a query, beyond answering it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryAction {
    /// The name maps to an already-running unikernel; nothing to do.
    AlreadyRunning {
        /// The service name.
        name: String,
    },
    /// The name is known but not running: a launch has been requested.
    Launch {
        /// The service name to summon.
        name: String,
    },
    /// The name is not in our zone or not configured; no action.
    None,
    /// The host lacks resources; the client was told to go elsewhere.
    ResourceExhausted {
        /// The service name that could not be summoned.
        name: String,
    },
}

/// Which phase of its lifecycle a known-alive service is in, from the
/// directory's point of view.
///
/// The distinction matters under concurrency: a query for a *mid-launch*
/// name must coalesce onto the in-flight boot (answered as if the service
/// were already running) rather than trigger a second launch, and a
/// mid-launch service must never be reaped as "idle" — its launch clock is
/// not an idle clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePhase {
    /// A launch has been triggered but the unikernel is not yet serving.
    Launching,
    /// The unikernel is up and serving requests.
    Running,
}

#[derive(Debug, Clone, Copy)]
struct ServiceStatus {
    phase: ServicePhase,
    last_activity: SimTime,
}

/// The directory service state: configured services plus which are alive
/// (mid-launch or running).
#[derive(Debug)]
pub struct DirectoryService {
    config: JitsuConfig,
    /// Alive services: their lifecycle phase and when they last served a
    /// request (for the idle retirement policy).
    services: BTreeMap<String, ServiceStatus>,
    queries_handled: u64,
    launches_triggered: u64,
}

impl DirectoryService {
    /// Create the directory for a host configuration.
    pub fn new(config: JitsuConfig) -> DirectoryService {
        DirectoryService {
            config,
            services: BTreeMap::new(),
            queries_handled: 0,
            launches_triggered: 0,
        }
    }

    /// The host configuration.
    pub fn config(&self) -> &JitsuConfig {
        &self.config
    }

    /// Record that a launch is in flight for a service, so repeat queries
    /// coalesce onto it instead of double-launching.
    pub fn mark_launching(&mut self, name: &str, now: SimTime) {
        self.services.insert(
            name.trim_matches('.').to_string(),
            ServiceStatus {
                phase: ServicePhase::Launching,
                last_activity: now,
            },
        );
    }

    /// Record that a service's unikernel is now serving requests (called
    /// when the launch completes).
    pub fn mark_ready(&mut self, name: &str, now: SimTime) {
        self.services.insert(
            name.trim_matches('.').to_string(),
            ServiceStatus {
                phase: ServicePhase::Running,
                last_activity: now,
            },
        );
    }

    /// Record that a service served a request (refreshes the idle clock).
    pub fn touch(&mut self, name: &str, now: SimTime) {
        if let Some(s) = self.services.get_mut(name.trim_matches('.')) {
            s.last_activity = now;
        }
    }

    /// Record that a service has been retired (or that its launch failed).
    pub fn mark_stopped(&mut self, name: &str) {
        self.services.remove(name.trim_matches('.'));
    }

    /// Is the service alive — mid-launch or running? Either way a query for
    /// it is answered with its address and must not trigger another launch.
    pub fn is_running(&self, name: &str) -> bool {
        self.services.contains_key(name.trim_matches('.'))
    }

    /// The service's lifecycle phase, if it is alive.
    pub fn phase(&self, name: &str) -> Option<ServicePhase> {
        self.services.get(name.trim_matches('.')).map(|s| s.phase)
    }

    /// Services idle for longer than the configured timeout at `now`.
    ///
    /// Only [`ServicePhase::Running`] services are candidates: a mid-launch
    /// service's `last_activity` is its launch-trigger time, and reaping it
    /// would tear down a domain that is still being constructed.
    pub fn idle_services(&self, now: SimTime) -> Vec<String> {
        let Some(timeout) = self.config.idle_timeout else {
            return Vec::new();
        };
        let mut idle: Vec<String> = self
            .services
            .iter()
            .filter(|(_, s)| {
                s.phase == ServicePhase::Running && now.duration_since(s.last_activity) >= timeout
            })
            .map(|(name, _)| name.clone())
            .collect();
        idle.sort();
        idle
    }

    /// Handle a DNS query, given whether the host currently has resources to
    /// summon another unikernel. Returns the response to send immediately
    /// and the action the caller (jitsud) should take.
    pub fn handle_query(
        &mut self,
        query: &DnsMessage,
        now: SimTime,
        resources_available: bool,
    ) -> (DnsMessage, DirectoryAction) {
        self.queries_handled += 1;
        let Some(name) = query
            .queried_name()
            .map(|s| s.trim_matches('.').to_string())
        else {
            return (
                DnsMessage::error(query, Rcode::ServFail),
                DirectoryAction::None,
            );
        };
        // The nameserver's own record.
        if name == self.config.nameserver_name() {
            return (
                DnsMessage::answer(query, Ipv4Addr::new(192, 168, 1, 1), self.config.dns_ttl),
                DirectoryAction::None,
            );
        }
        let Some(service) = self.config.service(&name).cloned() else {
            // Inside our zone but unknown → NXDOMAIN; outside → refuse with
            // SERVFAIL (we are not a recursive resolver in this model).
            let rcode = if name.ends_with(&self.config.zone) {
                Rcode::NxDomain
            } else {
                Rcode::ServFail
            };
            return (DnsMessage::error(query, rcode), DirectoryAction::None);
        };
        if self.is_running(&service.name) {
            self.touch(&service.name, now);
            return (
                DnsMessage::answer(query, service.ip, self.config.dns_ttl),
                DirectoryAction::AlreadyRunning { name: service.name },
            );
        }
        if !resources_available {
            return (
                DnsMessage::error(query, Rcode::ServFail),
                DirectoryAction::ResourceExhausted { name: service.name },
            );
        }
        // Launch while simultaneously answering with the (future) address.
        // The service is marked *launching*, not running: further queries
        // coalesce onto this boot (AlreadyRunning) instead of double-
        // launching, and the idle reaper leaves it alone until it is ready.
        self.launches_triggered += 1;
        self.mark_launching(&service.name, now);
        (
            DnsMessage::answer(query, service.ip, self.config.dns_ttl),
            DirectoryAction::Launch { name: service.name },
        )
    }

    /// Counters: `(queries handled, launches triggered)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.queries_handled, self.launches_triggered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use jitsu_sim::SimDuration;

    fn config() -> JitsuConfig {
        JitsuConfig::new("family.name")
            .with_service(ServiceConfig::http_site(
                "alice.family.name",
                Ipv4Addr::new(192, 168, 1, 20),
            ))
            .with_service(ServiceConfig::http_site(
                "bob.family.name",
                Ipv4Addr::new(192, 168, 1, 21),
            ))
    }

    #[test]
    fn unknown_name_in_zone_is_nxdomain_outside_is_servfail() {
        let mut dir = DirectoryService::new(config());
        let (resp, action) = dir.handle_query(
            &DnsMessage::query(1, "carol.family.name"),
            SimTime::ZERO,
            true,
        );
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert_eq!(action, DirectoryAction::None);
        let (resp, action) =
            dir.handle_query(&DnsMessage::query(2, "example.com"), SimTime::ZERO, true);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(action, DirectoryAction::None);
    }

    #[test]
    fn first_query_triggers_launch_and_answers_immediately() {
        let mut dir = DirectoryService::new(config());
        let (resp, action) = dir.handle_query(
            &DnsMessage::query(1, "alice.family.name"),
            SimTime::ZERO,
            true,
        );
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers[0].addr, Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(
            action,
            DirectoryAction::Launch {
                name: "alice.family.name".into()
            }
        );
        assert!(dir.is_running("alice.family.name"));
        assert_eq!(
            dir.phase("alice.family.name"),
            Some(ServicePhase::Launching)
        );
        assert_eq!(dir.counters(), (1, 1));
    }

    #[test]
    fn mid_launch_query_coalesces_instead_of_double_launching() {
        let mut dir = DirectoryService::new(config());
        let (_, first) = dir.handle_query(
            &DnsMessage::query(1, "alice.family.name"),
            SimTime::ZERO,
            true,
        );
        assert!(matches!(first, DirectoryAction::Launch { .. }));
        // The launch is still in flight (nobody called mark_ready). A second
        // query must be answered as already-running, not trigger launch #2.
        let (resp, action) = dir.handle_query(
            &DnsMessage::query(2, "alice.family.name"),
            SimTime::from_millis(40),
            true,
        );
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(
            action,
            DirectoryAction::AlreadyRunning {
                name: "alice.family.name".into()
            }
        );
        assert_eq!(dir.counters(), (2, 1), "exactly one launch triggered");
        assert_eq!(
            dir.phase("alice.family.name"),
            Some(ServicePhase::Launching)
        );
        dir.mark_ready("alice.family.name", SimTime::from_millis(350));
        assert_eq!(dir.phase("alice.family.name"), Some(ServicePhase::Running));
    }

    #[test]
    fn repeat_query_does_not_double_launch() {
        let mut dir = DirectoryService::new(config());
        dir.handle_query(
            &DnsMessage::query(1, "alice.family.name"),
            SimTime::ZERO,
            true,
        );
        let (resp, action) = dir.handle_query(
            &DnsMessage::query(2, "alice.family.name"),
            SimTime::from_millis(10),
            true,
        );
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(
            action,
            DirectoryAction::AlreadyRunning {
                name: "alice.family.name".into()
            }
        );
        assert_eq!(dir.counters(), (2, 1), "only one launch");
    }

    #[test]
    fn resource_exhaustion_is_servfail() {
        let mut dir = DirectoryService::new(config());
        let (resp, action) = dir.handle_query(
            &DnsMessage::query(1, "bob.family.name"),
            SimTime::ZERO,
            false,
        );
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert_eq!(
            action,
            DirectoryAction::ResourceExhausted {
                name: "bob.family.name".into()
            }
        );
        assert!(!dir.is_running("bob.family.name"));
    }

    #[test]
    fn nameserver_record_resolves() {
        let mut dir = DirectoryService::new(config());
        let (resp, action) =
            dir.handle_query(&DnsMessage::query(1, "ns.family.name"), SimTime::ZERO, true);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(action, DirectoryAction::None);
    }

    #[test]
    fn idle_services_are_reported_after_timeout() {
        let mut cfg = config();
        cfg.idle_timeout = Some(SimDuration::from_secs(60));
        let mut dir = DirectoryService::new(cfg);
        dir.handle_query(
            &DnsMessage::query(1, "alice.family.name"),
            SimTime::ZERO,
            true,
        );
        // Mid-launch the service is never an idle-reaping candidate, no
        // matter how long the launch takes.
        assert!(dir.idle_services(SimTime::from_secs(61)).is_empty());
        dir.mark_ready("alice.family.name", SimTime::ZERO);
        assert!(dir.idle_services(SimTime::from_secs(30)).is_empty());
        assert_eq!(
            dir.idle_services(SimTime::from_secs(61)),
            vec!["alice.family.name".to_string()]
        );
        // A request refreshes the idle clock.
        dir.touch("alice.family.name", SimTime::from_secs(59));
        assert!(dir.idle_services(SimTime::from_secs(100)).is_empty());
        dir.mark_stopped("alice.family.name");
        assert!(!dir.is_running("alice.family.name"));
    }

    #[test]
    fn no_idle_reporting_without_timeout() {
        let mut cfg = config();
        cfg.idle_timeout = None;
        let mut dir = DirectoryService::new(cfg);
        dir.mark_ready("alice.family.name", SimTime::ZERO);
        assert!(dir.idle_services(SimTime::from_secs(10_000)).is_empty());
    }
}
