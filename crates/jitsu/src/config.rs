//! Service configuration.
//!
//! "In our current implementation, the Jitsu services are statically
//! configured via OCaml code to map their unikernel with an IP address,
//! protocol and port" (§3.3.2). The Rust equivalent: a [`ServiceConfig`] per
//! service and a [`JitsuConfig`] for the host (DNS zone, TTL, boot
//! optimisations, idle policy).

use jitsu_sim::SimDuration;
use netstack::ipv4::Ipv4Addr;
use netstack::MacAddr;
use unikernel::image::UnikernelImage;
use xen_sim::toolstack::BootOptimisations;
use xenstore::EngineKind;

/// The transport protocol a service speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// TCP (HTTP sites, the persistent queue, SSL/TLS endpoints).
    Tcp,
    /// UDP (DNS and similar request/response services).
    Udp,
}

/// One service Jitsu is responsible for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Fully-qualified DNS name, e.g. `alice.family.name`.
    pub name: String,
    /// The unikernel image to summon.
    pub image: UnikernelImage,
    /// The external IP assigned on the bridge.
    pub ip: Ipv4Addr,
    /// Protocol.
    pub protocol: Protocol,
    /// Listening port.
    pub port: u16,
}

impl ServiceConfig {
    /// A typical HTTP site service.
    pub fn http_site(name: &str, ip: Ipv4Addr) -> ServiceConfig {
        ServiceConfig {
            name: name.to_string(),
            image: UnikernelImage::mirage(name),
            ip,
            protocol: Protocol::Tcp,
            port: 80,
        }
    }

    /// The deterministic MAC address the service's vif will use (derived
    /// from its IP so Synjitsu can answer ARP for it before the unikernel
    /// exists).
    pub fn mac(&self) -> MacAddr {
        MacAddr([0x06, 0x16, 0x3e, self.ip.0[1], self.ip.0[2], self.ip.0[3]])
    }
}

/// Host-wide Jitsu configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JitsuConfig {
    /// The DNS zone this host is authoritative for (e.g. `family.name`).
    pub zone: String,
    /// TTL handed out in DNS answers.
    pub dns_ttl: u32,
    /// Toolstack optimisations to use when summoning.
    pub boot: BootOptimisations,
    /// XenStore transaction engine.
    pub engine: EngineKind,
    /// Whether Synjitsu connection proxying is enabled.
    pub use_synjitsu: bool,
    /// Retire a unikernel after this much idle time (none = never).
    pub idle_timeout: Option<SimDuration>,
    /// How many domain constructions the concurrent engine may run at once
    /// (the launch-slot semaphore capacity; domain building is dom0-CPU
    /// bound, so this defaults to the dom0 core count of the boards used in
    /// the paper).
    pub launch_slots: u32,
    /// Park memory-exhausted (`SERVFAIL`) queries for fail-over to a peer
    /// board (§3.3.2: "resource exhaustion is reported as `SERVFAIL` so
    /// clients fail over to another board"). Only meaningful when the world
    /// runs as a fleet domain (`jitsu::fleet`); a single standalone board
    /// leaves this off so its behaviour is bit-identical to earlier PRs.
    pub failover: bool,
    /// The services this host manages.
    pub services: Vec<ServiceConfig>,
}

impl JitsuConfig {
    /// The default configuration: fully optimised toolstack, Jitsu XenStore
    /// engine, Synjitsu enabled, 2-minute idle timeout.
    pub fn new(zone: &str) -> JitsuConfig {
        JitsuConfig {
            zone: zone.trim_matches('.').to_string(),
            dns_ttl: 30,
            boot: BootOptimisations::jitsu(),
            engine: EngineKind::JitsuMerge,
            use_synjitsu: true,
            idle_timeout: Some(SimDuration::from_secs(120)),
            launch_slots: 2,
            failover: false,
            services: Vec::new(),
        }
    }

    /// Enable cross-board fail-over of `SERVFAIL`ed queries (fleet runs).
    pub fn with_failover(mut self) -> JitsuConfig {
        self.failover = true;
        self
    }

    /// Add a service (builder style).
    pub fn with_service(mut self, service: ServiceConfig) -> JitsuConfig {
        self.services.push(service);
        self
    }

    /// Disable Synjitsu (the "cold start, no synjitsu" line of Figure 9a).
    pub fn without_synjitsu(mut self) -> JitsuConfig {
        self.use_synjitsu = false;
        self
    }

    /// Use the vanilla (unoptimised) toolstack.
    pub fn with_vanilla_toolstack(mut self) -> JitsuConfig {
        self.boot = BootOptimisations::vanilla();
        self.engine = EngineKind::Serial;
        self
    }

    /// Set the launch-slot semaphore capacity (clamped to at least one).
    pub fn with_launch_slots(mut self, slots: u32) -> JitsuConfig {
        self.launch_slots = slots.max(1);
        self
    }

    /// Set the idle-retirement TTL.
    pub fn with_idle_timeout(mut self, timeout: SimDuration) -> JitsuConfig {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Find a service by DNS name.
    pub fn service(&self, name: &str) -> Option<&ServiceConfig> {
        let name = name.trim_matches('.');
        self.services.iter().find(|s| s.name == name)
    }

    /// The nameserver's own name (`ns.<zone>`), as registered in the public
    /// DNS (§3.3.2).
    pub fn nameserver_name(&self) -> String {
        format!("ns.{}", self.zone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_site_defaults() {
        let s = ServiceConfig::http_site("alice.family.name", Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(s.port, 80);
        assert_eq!(s.protocol, Protocol::Tcp);
        assert_eq!(s.image.memory_mib, 16);
        let mac = s.mac();
        assert_eq!(mac.0[0] & 0x01, 0, "unicast");
        assert_eq!(&mac.0[3..], &[168, 1, 20]);
    }

    #[test]
    fn config_builder_and_lookup() {
        let cfg = JitsuConfig::new("family.name.")
            .with_service(ServiceConfig::http_site(
                "alice.family.name",
                Ipv4Addr::new(192, 168, 1, 20),
            ))
            .with_service(ServiceConfig::http_site(
                "bob.family.name",
                Ipv4Addr::new(192, 168, 1, 21),
            ));
        assert_eq!(cfg.zone, "family.name");
        assert_eq!(cfg.nameserver_name(), "ns.family.name");
        assert!(cfg.service("alice.family.name").is_some());
        assert!(cfg.service("alice.family.name.").is_some());
        assert!(cfg.service("carol.family.name").is_none());
        assert!(cfg.use_synjitsu);
        assert_eq!(cfg.engine, EngineKind::JitsuMerge);
    }

    #[test]
    fn figure9a_variant_constructors() {
        let base = JitsuConfig::new("family.name");
        let no_syn = base.clone().without_synjitsu();
        assert!(!no_syn.use_synjitsu);
        let vanilla = base.with_vanilla_toolstack();
        assert_eq!(vanilla.engine, EngineKind::Serial);
        assert_eq!(vanilla.boot, BootOptimisations::vanilla());
    }

    #[test]
    fn storm_knobs() {
        let cfg = JitsuConfig::new("family.name")
            .with_launch_slots(4)
            .with_idle_timeout(SimDuration::from_secs(5));
        assert_eq!(cfg.launch_slots, 4);
        assert_eq!(cfg.idle_timeout, Some(SimDuration::from_secs(5)));
        assert_eq!(JitsuConfig::new("z").launch_slots, 2, "default");
        assert_eq!(
            JitsuConfig::new("z").with_launch_slots(0).launch_slots,
            1,
            "clamped"
        );
    }
}
