//! A fleet of jitsud boards on the sharded engine.
//!
//! The paper's deployment model (§3.3.2) is a *city* of boards, each running
//! its own jitsud: a query that a memory-exhausted board answers `SERVFAIL`
//! makes the client fail over to another board. This module makes each
//! [`ConcurrentJitsud`] world one [`Domain`] of a
//! [`ShardedSim`](jitsu_sim::ShardedSim):
//!
//! * every board keeps its private XenStore, launcher, Synjitsu and metric
//!   state — domains are isolated Rust values, so no cross-board state can
//!   leak by construction;
//! * `SERVFAIL`ed queries are parked on the board
//!   (`ConcurrentJitsud::pending_failover`) and forwarded to the next board
//!   (id + 1, ring order) at the epoch barrier, arriving as a fresh
//!   [`FleetMsg::Query`] with one hop fewer to spend;
//! * a query that has exhausted every board counts as
//!   `failover_dropped` on the last board that refused it.
//!
//! Because all inter-board traffic is barrier-delivered, a fleet run is a
//! pure function of (configs, seeds, workload, epoch) — the shard count is
//! unobservable, which the `sharded_invariance` suite and the CI
//! shard-invariance gate both enforce.

use crate::concurrent::ConcurrentJitsud;
use jitsu_sim::shard::{Domain, DomainCtx, DomainId};
use jitsu_sim::{Scheduler, ShardedSim, SimTime};

/// Messages exchanged between boards of a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetMsg {
    /// A DNS query failed over from a memory-exhausted peer board.
    Query {
        /// The service name the client asked for.
        name: String,
        /// How many further boards the query may still try after this one.
        hops_left: u32,
    },
}

impl Domain for ConcurrentJitsud {
    type Msg = FleetMsg;

    fn on_message(ctx: &mut DomainCtx<Self>, msg: FleetMsg) {
        match msg {
            FleetMsg::Query { name, hops_left } => {
                // The hint scopes the remaining hop budget to exactly this
                // query: handlers run to completion, so no other query can
                // observe it.
                ctx.world_mut().failover_hint = Some(hops_left);
                ConcurrentJitsud::on_query(ctx, name);
                ctx.world_mut().failover_hint = None;
            }
        }
    }

    fn at_barrier(ctx: &mut DomainCtx<Self>) {
        if ctx.world().pending_failover.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut ctx.world_mut().pending_failover);
        // Ring order: the client retries against the next board. With a
        // single board the ring degenerates to self-delivery, but a
        // standalone board never parks (failover_hops_default is 0), so
        // single-board runs stay bit-identical to the flat engine.
        let next = DomainId((ctx.id().0 + 1) % ctx.domain_count());
        for (name, hops_left) in parked {
            ctx.send(next, FleetMsg::Query { name, hops_left });
        }
    }
}

/// The simulator type a fleet runs on.
pub type FleetSim = ShardedSim<ConcurrentJitsud>;

/// Schedule a client DNS query to arrive at `board` at absolute time `at` —
/// the fleet analogue of [`ConcurrentJitsud::inject_query`].
pub fn inject_query(sim: &mut FleetSim, board: DomainId, at: SimTime, name: &str) {
    let name = name.to_string();
    sim.schedule_at(board, at, move |ctx| {
        ConcurrentJitsud::on_query(ctx, name);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{JitsuConfig, ServiceConfig};
    use jitsu_sim::SimDuration;
    use netstack::ipv4::Ipv4Addr;
    use platform::BoardKind;

    fn board_config(services: usize, memory_per_service: u32) -> JitsuConfig {
        let mut cfg = JitsuConfig::new("fleet.example")
            .with_launch_slots(2)
            .with_idle_timeout(SimDuration::from_secs(30))
            .with_failover();
        for i in 0..services {
            let mut svc = ServiceConfig::http_site(
                &format!("svc{i:02}.fleet.example"),
                Ipv4Addr::new(192, 168, 5, 10 + i as u8),
            );
            svc.image.memory_mib = memory_per_service;
            cfg = cfg.with_service(svc);
        }
        cfg
    }

    fn fleet(boards: u32, shards: u32, services: usize, memory_mib: u32) -> FleetSim {
        let mut sim = ShardedSim::new(shards, SimDuration::from_millis(50));
        for b in 0..boards {
            let seed = 0xF1EE7 ^ (u64::from(b) << 32);
            let mut world = ConcurrentJitsud::world(
                board_config(services, memory_mib),
                BoardKind::Cubieboard2.board(),
                seed,
            );
            world.set_failover_hops(boards.saturating_sub(1));
            sim.add_domain(world, seed);
        }
        sim
    }

    #[test]
    fn servfail_fails_over_to_the_next_board_and_is_served_there() {
        // Services so large one board can host only one of them: the second
        // query SERVFAILs locally and must be served by board 1.
        let mut sim = fleet(2, 2, 4, 600);
        inject_query(
            &mut sim,
            DomainId(0),
            SimTime::from_millis(1),
            "svc00.fleet.example",
        );
        inject_query(
            &mut sim,
            DomainId(0),
            SimTime::from_millis(2),
            "svc01.fleet.example",
        );
        sim.run();
        let b0 = sim.domain(DomainId(0)).metrics();
        let b1 = sim.domain(DomainId(1)).metrics();
        assert_eq!(b0.servfails, 1, "board 0 exhausted on the second service");
        assert_eq!(b0.failovers, 1, "the SERVFAIL was parked for fail-over");
        assert_eq!(b0.failover_dropped, 0);
        assert_eq!(b1.queries, 1, "the retry arrived at board 1");
        assert_eq!(b1.cold_served, 1, "and was served there");
        assert_eq!(b0.cold_served + b1.cold_served, 2, "both clients served");
    }

    #[test]
    fn a_query_no_board_can_host_is_dropped_after_trying_every_board() {
        // Every board is saturated by a resident service first; the victim
        // query then walks the whole ring and drops.
        let mut sim = fleet(3, 3, 4, 600);
        for b in 0..3 {
            inject_query(
                &mut sim,
                DomainId(b),
                SimTime::from_millis(1),
                &format!("svc0{b}.fleet.example"),
            );
        }
        inject_query(
            &mut sim,
            DomainId(0),
            SimTime::from_secs(1),
            "svc03.fleet.example",
        );
        sim.run();
        let dropped: u64 = (0..3)
            .map(|b| sim.domain(DomainId(b)).metrics().failover_dropped)
            .sum();
        let servfails: u64 = (0..3)
            .map(|b| sim.domain(DomainId(b)).metrics().servfails)
            .sum();
        assert_eq!(dropped, 1, "the unhostable query dropped exactly once");
        assert_eq!(servfails, 3, "after a SERVFAIL on every board");
    }

    #[test]
    fn fleet_runs_are_invariant_across_shard_counts() {
        fn counters(shards: u32) -> Vec<(u64, u64, u64, u64, u64)> {
            let mut sim = fleet(4, shards, 4, 600);
            for i in 0..12u64 {
                let board = DomainId((i % 4) as u32);
                let svc = format!("svc{:02}.fleet.example", i % 4);
                inject_query(&mut sim, board, SimTime::from_millis(1 + 7 * i), &svc);
            }
            sim.run();
            let events = sim.events_executed();
            (0..4)
                .map(|b| {
                    let m = sim.domain(DomainId(b)).metrics();
                    (m.queries, m.cold_served, m.servfails, m.failovers, events)
                })
                .collect()
        }
        let one = counters(1);
        for shards in [2, 4, 8] {
            assert_eq!(counters(shards), one, "shards={shards} diverged");
        }
    }
}
