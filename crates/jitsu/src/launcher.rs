//! Summoning and retiring unikernels.
//!
//! The launcher drives the `xen-sim` toolstack with the configured
//! [`BootOptimisations`](xen_sim::toolstack::BootOptimisations), then
//! composes the domain-construction report with the guest boot pipeline to
//! produce the timeline Jitsu needs: when the VM exists, when its network
//! stack is attached (the moment Synjitsu can hand connections over), and
//! when the application is ready.

use crate::config::ServiceConfig;
use jitsu_sim::{SimDuration, SimTime};
use unikernel::appliance::{Appliance, StaticSiteAppliance};
use unikernel::instance::UnikernelInstance;
use xen_sim::domain_builder::BuildError;
use xen_sim::toolstack::{CreateReport, Toolstack, ToolstackError};
use xenstore::DomId;

/// The timeline of one launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchOutcome {
    /// The domain created.
    pub dom: DomId,
    /// The service name.
    pub name: String,
    /// When the launch started.
    pub started_at: SimTime,
    /// Domain construction (toolstack) report.
    pub construction: CreateReport,
    /// Guest boot time up to the network stack being attached.
    pub network_ready_after: SimDuration,
    /// Guest boot time up to the application serving requests.
    pub app_ready_after: SimDuration,
}

impl LaunchOutcome {
    /// Absolute time at which the unikernel's network stack is attached and
    /// the Synjitsu handoff can begin.
    pub fn network_ready_at(&self) -> SimTime {
        self.started_at + self.construction.total + self.network_ready_after
    }

    /// Absolute time at which the application can serve new requests.
    pub fn app_ready_at(&self) -> SimTime {
        self.started_at + self.construction.total + self.app_ready_after
    }

    /// Total cold-boot latency (construction + guest boot to app ready).
    pub fn cold_boot(&self) -> SimDuration {
        self.construction.total + self.app_ready_after
    }
}

/// Why a launch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The host is out of memory (reported to DNS clients as `SERVFAIL`).
    OutOfResources,
    /// A toolstack error.
    Toolstack(String),
}

/// The launcher: wraps a [`Toolstack`] and tracks which domain serves which
/// service.
pub struct Launcher {
    /// The underlying toolstack (public so jitsud can reach the store,
    /// bridge and grant/event-channel tables).
    pub toolstack: Toolstack,
    boot_opts: xen_sim::toolstack::BootOptimisations,
    launches: Vec<LaunchOutcome>,
}

impl Launcher {
    /// Create a launcher over an existing toolstack.
    pub fn new(toolstack: Toolstack, boot_opts: xen_sim::toolstack::BootOptimisations) -> Launcher {
        Launcher {
            toolstack,
            boot_opts,
            launches: Vec::new(),
        }
    }

    /// Whether the host can currently satisfy a service's memory needs.
    pub fn has_resources_for(&self, service: &ServiceConfig) -> bool {
        self.toolstack.can_allocate(service.image.memory_mib)
    }

    /// Free guest memory on the board, in MiB. The concurrent engine
    /// subtracts its own not-yet-built reservations from this when deciding
    /// admission.
    pub fn free_mib(&self) -> u32 {
        self.toolstack.free_mib()
    }

    /// Time to tear down a retired domain (the `Draining` window of the
    /// lifecycle state machine).
    pub fn teardown_time(&self) -> jitsu_sim::SimDuration {
        self.toolstack.teardown_time()
    }

    /// Summon a unikernel for a service at virtual time `now`. Returns the
    /// launch timeline and a runnable [`UnikernelInstance`] (with a static
    /// site appliance by default; callers may construct their own instance
    /// for other appliances).
    pub fn summon(
        &mut self,
        service: &ServiceConfig,
        now: SimTime,
        seed: u64,
    ) -> Result<(LaunchOutcome, UnikernelInstance), LaunchError> {
        let report = self
            .toolstack
            .create_domain(service.image.domain_config(), self.boot_opts)
            .map_err(|e| match e {
                ToolstackError::Build(BuildError::OutOfMemory { .. }) => {
                    LaunchError::OutOfResources
                }
                other => LaunchError::Toolstack(format!("{other:?}")),
            })?;
        self.toolstack
            .unpause(report.dom)
            .map_err(|e| LaunchError::Toolstack(format!("{e:?}")))?;

        let appliance: Box<dyn Appliance + Send> =
            Box::new(StaticSiteAppliance::new(service.name.clone()));
        let instance = UnikernelInstance::new(
            service.image.clone(),
            service.mac(),
            service.ip,
            service.port,
            appliance,
            seed,
        );
        let pipeline = instance.boot_pipeline(self.toolstack.board());
        let outcome = LaunchOutcome {
            dom: report.dom,
            name: service.name.clone(),
            started_at: now,
            construction: report,
            network_ready_after: pipeline.time_to_network_ready(),
            app_ready_after: pipeline.total(),
        };
        self.launches.push(outcome.clone());
        Ok((outcome, instance))
    }

    /// Retire (destroy) a previously summoned unikernel.
    pub fn retire(&mut self, dom: DomId) -> Result<(), LaunchError> {
        self.toolstack
            .destroy(dom)
            .map_err(|e| LaunchError::Toolstack(format!("{e:?}")))
    }

    /// All launches performed so far.
    pub fn launches(&self) -> &[LaunchOutcome] {
        &self.launches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use netstack::ipv4::Ipv4Addr;
    use platform::BoardKind;
    use xen_sim::toolstack::BootOptimisations;
    use xenstore::EngineKind;

    fn launcher(opts: BootOptimisations) -> Launcher {
        let ts = Toolstack::new(BoardKind::Cubieboard2.board(), EngineKind::JitsuMerge, 7);
        Launcher::new(ts, opts)
    }

    fn alice() -> ServiceConfig {
        ServiceConfig::http_site("alice.family.name", Ipv4Addr::new(192, 168, 1, 20))
    }

    #[test]
    fn optimised_cold_boot_is_around_350ms_on_arm() {
        let mut l = launcher(BootOptimisations::jitsu());
        let (outcome, instance) = l.summon(&alice(), SimTime::ZERO, 1).unwrap();
        let ms = outcome.cold_boot().as_millis();
        assert!((280..400).contains(&ms), "cold boot = {ms} ms");
        assert!(outcome.network_ready_at() < outcome.app_ready_at());
        assert_eq!(instance.name(), "alice.family.name");
        assert_eq!(l.launches().len(), 1);
    }

    #[test]
    fn vanilla_cold_boot_is_much_slower() {
        let mut v = launcher(BootOptimisations::vanilla());
        let mut o = launcher(BootOptimisations::jitsu());
        let (vanilla, _) = v.summon(&alice(), SimTime::ZERO, 1).unwrap();
        let (optimised, _) = o.summon(&alice(), SimTime::ZERO, 1).unwrap();
        assert!(vanilla.cold_boot() > optimised.cold_boot() + SimDuration::from_millis(300));
    }

    #[test]
    fn resource_exhaustion_is_reported() {
        let mut l = launcher(BootOptimisations::jitsu());
        let mut big = alice();
        big.image.memory_mib = 4096; // more than the board has
        assert!(!l.has_resources_for(&big));
        assert_eq!(
            l.summon(&big, SimTime::ZERO, 1).unwrap_err(),
            LaunchError::OutOfResources
        );
    }

    #[test]
    fn retire_frees_capacity_for_the_next_summon() {
        let mut l = launcher(BootOptimisations::jitsu());
        let before = l.toolstack.free_mib();
        let (outcome, _) = l.summon(&alice(), SimTime::ZERO, 1).unwrap();
        assert!(l.toolstack.free_mib() < before);
        l.retire(outcome.dom).unwrap();
        assert_eq!(l.toolstack.free_mib(), before);
        // Retiring twice is an error.
        assert!(l.retire(outcome.dom).is_err());
    }

    #[test]
    fn timeline_accessors_are_consistent() {
        let mut l = launcher(BootOptimisations::jitsu());
        let start = SimTime::from_millis(500);
        let (outcome, _) = l.summon(&alice(), start, 1).unwrap();
        assert_eq!(
            outcome.app_ready_at(),
            start + outcome.construction.total + outcome.app_ready_after
        );
        assert!(outcome.network_ready_after <= outcome.app_ready_after);
        assert_eq!(outcome.started_at, start);
    }
}
