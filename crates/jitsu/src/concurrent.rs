//! The concurrent boot-storm engine: an event-driven jitsud.
//!
//! [`Jitsud`](crate::jitsud::Jitsud) drives exactly one cold-start timeline
//! at a time, which is faithful to Figure 9a but cannot exercise the regime
//! §3.3 actually describes: "If the name requested does not correspond to a
//! running unikernel, Jitsu launches the desired unikernel while
//! simultaneously returning an appropriate endpoint", idle unikernels are
//! reaped to reclaim memory, and "resource exhaustion is reported as
//! `SERVFAIL` so clients fail over to another board". All three behaviours
//! only become interesting when many DNS queries for many names overlap —
//! the boot storm.
//!
//! [`ConcurrentJitsud`] is that daemon, rebuilt as a *world* scheduled on
//! the [`jitsu_sim`] discrete-event engine. Every configured service owns a
//! lifecycle state machine:
//!
//! ```text
//!            admission           slot granted          app ready
//!   Idle ──────────────▶ AwaitingSlot ──────▶ Launching ──────▶ Running
//!    ▲   (memory check,   {queued SYNs}      {queued SYNs}        │
//!    │    SERVFAIL on                                             │ idle ≥ TTL
//!    │    exhaustion)                                             ▼
//!    └──────────────────────── teardown done ◀──────────────── Draining
//! ```
//!
//! * **Concurrency** — overlapping queries for *different* names boot
//!   domains concurrently, bounded by a [`LaunchSlots`] semaphore (domain
//!   construction is dom0-CPU-bound; §3.1). Launches past the slot capacity
//!   queue FIFO, which is what turns overload into graceful tail-latency
//!   growth instead of thrash.
//! * **Coalescing** — duplicate queries for a *mid-launch* name join the
//!   in-flight boot's SYN queue instead of double-launching (§3.3: Synjitsu
//!   buffers the early SYNs; the unikernel replays them after handoff).
//! * **Admission control** — board memory is accounted (including
//!   reservations for launches still waiting on a slot); a query that
//!   cannot fit is answered `SERVFAIL` so the client fails over to another
//!   board (§3.3.2).
//! * **Idle reaping** — a service idle longer than the configured TTL is
//!   drained: its domain is torn down (taking
//!   [`Toolstack::teardown_time`](xen_sim::toolstack::Toolstack) of
//!   virtual time) and its memory returns to the pool, after which the name
//!   can be summoned again from scratch.
//!
//! The SYN queue is not a counter: while a service boots, each queued
//! client completes a real TCP handshake against the real
//! [`Synjitsu`] proxy (same `netstack` the unikernels use), and at
//! network-ready the whole queue is handed over through XenStore exactly as
//! in the linear daemon.

use crate::config::{JitsuConfig, ServiceConfig};
use crate::directory::{DirectoryAction, DirectoryService};
use crate::launcher::Launcher;
use crate::synjitsu::Synjitsu;
use jitsu_sim::{LatencyRecorder, Sim, SimDuration, SimTime, Tracer};
use netstack::dns::{DnsMessage, Rcode};
use netstack::ethernet::MacAddr;
use netstack::iface::Interface;
use netstack::ipv4::Ipv4Addr;
use platform::Board;
use std::collections::{HashMap, VecDeque};
use xen_sim::toolstack::{LaunchSlots, Toolstack};
use xenstore::DomId;

/// One client whose first connection is parked on a booting service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedClient {
    /// Engine-wide client id (used to derive a unique IP/MAC).
    pub id: u32,
    /// When the client's DNS query arrived.
    pub arrived: SimTime,
}

/// The lifecycle state machine of one configured service.
#[derive(Debug)]
pub enum Lifecycle {
    /// No domain exists and nothing is in flight.
    Idle,
    /// Admitted (memory reserved) but waiting for a launch slot.
    AwaitingSlot {
        /// Clients parked on this boot, in arrival order.
        queued: Vec<QueuedClient>,
    },
    /// The toolstack is constructing / the guest is booting the domain.
    Launching {
        /// Clients parked on this boot, in arrival order.
        queued: Vec<QueuedClient>,
        /// The domain being built.
        dom: DomId,
        /// When the guest's network stack attaches (Synjitsu handoff point).
        network_ready_at: SimTime,
        /// When the application can serve requests.
        app_ready_at: SimTime,
    },
    /// The unikernel is serving requests.
    Running {
        /// The serving domain.
        dom: DomId,
        /// Last time the service saw a request (the idle clock).
        last_activity: SimTime,
    },
    /// Reaped: the domain is being torn down; memory frees when it is done.
    Draining {
        /// The domain being destroyed.
        dom: DomId,
        /// Clients that asked for the name mid-drain (they relaunch it).
        queued: Vec<QueuedClient>,
    },
}

/// A copyable label for a service's current lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecyclePhase {
    /// No domain exists.
    Idle,
    /// Waiting for a launch slot.
    AwaitingSlot,
    /// Domain construction / guest boot in flight.
    Launching,
    /// Serving.
    Running,
    /// Being torn down.
    Draining,
}

/// Counters and latency samples accumulated over a storm.
#[derive(Debug, Default)]
pub struct StormMetrics {
    /// DNS queries handled.
    pub queries: u64,
    /// Queries for names outside the configuration (NXDOMAIN / refused).
    pub unknown: u64,
    /// Domains actually constructed.
    pub launches: u64,
    /// Requests answered by a cold start (parked on a boot, then served).
    pub cold_served: u64,
    /// Queries that coalesced onto an in-flight boot or drain.
    pub coalesced: u64,
    /// Queries answered by an already-running unikernel.
    pub warm_hits: u64,
    /// Queries answered `SERVFAIL` because memory was exhausted (the client
    /// fails over to another board, §3.3.2).
    pub servfails: u64,
    /// Idle unikernels reaped.
    pub reaps: u64,
    /// TCP connections handed from Synjitsu to a freshly booted unikernel.
    pub syn_handoffs: u64,
    /// Time from a client's DNS query to its first response byte, for every
    /// served request (cold and warm).
    pub ttfb: LatencyRecorder,
}

impl StormMetrics {
    /// Served requests (cold + warm).
    pub fn served(&self) -> u64 {
        self.cold_served + self.warm_hits
    }

    /// Fraction of service queries answered `SERVFAIL`, in `[0, 1]`.
    pub fn servfail_rate(&self) -> f64 {
        let eligible = self.served() + self.servfails;
        if eligible == 0 {
            0.0
        } else {
            self.servfails as f64 / eligible as f64
        }
    }
}

/// The event-driven concurrent Jitsu daemon: the world of a
/// [`Sim<ConcurrentJitsud>`].
pub struct ConcurrentJitsud {
    config: JitsuConfig,
    directory: DirectoryService,
    launcher: Launcher,
    synjitsu: Synjitsu,
    slots: LaunchSlots,
    services: HashMap<String, Lifecycle>,
    /// Services admitted and waiting for a launch slot, FIFO.
    launch_queue: VecDeque<String>,
    /// Memory reserved for admitted-but-not-yet-built domains, in MiB.
    reserved_mib: u32,
    metrics: StormMetrics,
    one_way_delay: SimDuration,
    dns_processing: SimDuration,
    handoff_cost: SimDuration,
    /// Application-level cost of producing one response.
    service_cost: SimDuration,
    syn_rto: SimDuration,
    next_client_id: u32,
    seed_counter: u64,
    /// Event trace (reuses the Figure 6 vocabulary).
    pub tracer: Tracer,
}

/// The simulator type the engine runs on.
pub type StormSim = Sim<ConcurrentJitsud>;

impl ConcurrentJitsud {
    /// Build the world and wrap it in a simulator at time zero.
    pub fn sim(config: JitsuConfig, board: Board, seed: u64) -> StormSim {
        let toolstack = Toolstack::new(board.clone(), config.engine, seed);
        let launcher = Launcher::new(toolstack, config.boot);
        let directory = DirectoryService::new(config.clone());
        let slots = LaunchSlots::new(config.launch_slots);
        Sim::new(ConcurrentJitsud {
            directory,
            launcher,
            synjitsu: Synjitsu::new(),
            slots,
            services: HashMap::new(),
            launch_queue: VecDeque::new(),
            reserved_mib: 0,
            metrics: StormMetrics::default(),
            one_way_delay: SimDuration::from_micros(2_500),
            dns_processing: board.scale_cpu(SimDuration::from_micros(150)),
            handoff_cost: board.scale_cpu(SimDuration::from_micros(700)),
            service_cost: board.scale_cpu(SimDuration::from_micros(700)),
            syn_rto: SimDuration::from_secs(1),
            next_client_id: 0,
            seed_counter: seed,
            tracer: Tracer::new(),
            config,
        })
    }

    /// Schedule a DNS query for `name` to arrive at `at`.
    pub fn inject_query(sim: &mut StormSim, at: SimTime, name: &str) {
        let name = name.to_string();
        sim.schedule_at(at, move |sim| Self::on_query(sim, name));
    }

    /// The engine's configuration.
    pub fn config(&self) -> &JitsuConfig {
        &self.config
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &StormMetrics {
        &self.metrics
    }

    /// The launch-slot semaphore.
    pub fn slots(&self) -> &LaunchSlots {
        &self.slots
    }

    /// The current lifecycle phase of a service.
    pub fn phase(&self, name: &str) -> LifecyclePhase {
        match self.services.get(name.trim_matches('.')) {
            None | Some(Lifecycle::Idle) => LifecyclePhase::Idle,
            Some(Lifecycle::AwaitingSlot { .. }) => LifecyclePhase::AwaitingSlot,
            Some(Lifecycle::Launching { .. }) => LifecyclePhase::Launching,
            Some(Lifecycle::Running { .. }) => LifecyclePhase::Running,
            Some(Lifecycle::Draining { .. }) => LifecyclePhase::Draining,
        }
    }

    /// Number of services currently in the `Running` phase.
    pub fn running_count(&self) -> usize {
        self.services
            .values()
            .filter(|s| matches!(s, Lifecycle::Running { .. }))
            .count()
    }

    /// Free board memory minus reservations for launches still waiting on a
    /// slot — the quantity admission control checks.
    pub fn effective_free_mib(&self) -> u32 {
        self.launcher.free_mib().saturating_sub(self.reserved_mib)
    }

    /// The directory service (for inspecting phases and counters).
    pub fn directory(&self) -> &DirectoryService {
        &self.directory
    }

    /// The Synjitsu proxy (for inspecting SYN queues mid-boot).
    pub fn synjitsu(&self) -> &Synjitsu {
        &self.synjitsu
    }

    fn next_seed(&mut self) -> u64 {
        self.seed_counter = self
            .seed_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.seed_counter
    }

    fn new_client(&mut self, arrived: SimTime) -> QueuedClient {
        self.next_client_id += 1;
        QueuedClient {
            id: self.next_client_id,
            arrived,
        }
    }

    fn client_ip(id: u32) -> Ipv4Addr {
        // 10.x.y.z, never colliding with the 192.168.* service addresses.
        Ipv4Addr::new(10, (id >> 16) as u8, (id >> 8) as u8, id as u8)
    }

    fn client_mac(id: u32) -> MacAddr {
        MacAddr([
            2,
            0,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// Complete a real TCP handshake for `client` against the Synjitsu
    /// proxy, parking the connection in the service's SYN queue.
    fn park_syn(world: &mut ConcurrentJitsud, svc: &ServiceConfig, client: QueuedClient) {
        if !world.config.use_synjitsu || !world.synjitsu.is_proxying(&svc.name) {
            return;
        }
        let mut iface = Interface::new(Self::client_mac(client.id), Self::client_ip(client.id));
        iface.add_arp_entry(svc.ip, svc.mac());
        let mut to_proxy = vec![iface.tcp_connect(svc.ip, svc.port)];
        for _ in 0..4 {
            if to_proxy.is_empty() {
                break;
            }
            let mut to_client = Vec::new();
            for frame in to_proxy.drain(..) {
                to_client.extend(
                    world
                        .synjitsu
                        .handle_frame(&mut world.launcher.toolstack.xenstore, &svc.name, &frame)
                        .expect("synjitsu accepts proxied frames"),
                );
            }
            for frame in to_client {
                let (out, _) = iface.handle_frame(&frame);
                to_proxy.extend(out);
            }
        }
    }

    /// Event: a DNS query for `name` arrives.
    fn on_query(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        world.metrics.queries += 1;
        let qid = (world.metrics.queries & 0xffff) as u16;
        // Admission: memory for the service, net of reservations for boots
        // still waiting on a slot. A draining service is exempt — the drain
        // is about to free exactly the memory it needs.
        let draining = matches!(
            world.services.get(name.trim_matches('.')),
            Some(Lifecycle::Draining { .. })
        );
        let resources = draining
            || match world.config.service(&name) {
                Some(svc) => world.effective_free_mib() >= svc.image.memory_mib,
                None => true,
            };
        let query = DnsMessage::query(qid, &name);
        let (response, action) = world.directory.handle_query(&query, now, resources);
        match action {
            DirectoryAction::None => {
                if response.rcode != Rcode::NoError {
                    world.metrics.unknown += 1;
                }
            }
            DirectoryAction::ResourceExhausted { name } => {
                world.metrics.servfails += 1;
                world.tracer.emit(
                    now,
                    "jitsud",
                    format!("SERVFAIL for {name}: memory exhausted, client fails over"),
                );
            }
            DirectoryAction::AlreadyRunning { name } => Self::on_alive_query(sim, name),
            DirectoryAction::Launch { name } => Self::on_admitted(sim, name),
        }
    }

    /// A query for a service the directory considers alive (mid-launch or
    /// running) — coalesce or serve warm.
    fn on_alive_query(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let client = world.new_client(now);
        let svc = world
            .config
            .service(&name)
            .cloned()
            .expect("directory only answers configured names");
        match world.services.get_mut(&name) {
            Some(Lifecycle::AwaitingSlot { queued, .. }) => {
                queued.push(client);
                world.metrics.coalesced += 1;
                Self::park_syn(world, &svc, client);
            }
            Some(Lifecycle::Launching { queued, .. }) => {
                queued.push(client);
                world.metrics.coalesced += 1;
                world.tracer.emit(
                    now,
                    "jitsud",
                    format!("query for mid-launch {name} coalesced onto in-flight boot"),
                );
                Self::park_syn(world, &svc, client);
            }
            Some(Lifecycle::Draining { queued, .. }) => {
                // A relaunch is already committed (the query that triggered
                // it marked the directory); ride along.
                queued.push(client);
                world.metrics.coalesced += 1;
            }
            Some(Lifecycle::Running { last_activity, .. }) => {
                // Warm hit: DNS round plus handshake, request and response
                // against the running unikernel (the ≈5 ms local path, §3).
                let ttfb = world.dns_processing
                    + world.one_way_delay * 6
                    + world.service_cost
                    + world.one_way_delay;
                world.metrics.ttfb.record(ttfb);
                world.metrics.warm_hits += 1;
                // The engine's `last_activity` is the idle clock the reaper
                // consults; the directory's copy was already refreshed by
                // `handle_query`.
                *last_activity = now;
                Self::schedule_reap_check(sim, name, now);
            }
            None | Some(Lifecycle::Idle) => {
                debug_assert!(false, "directory alive but engine idle for {name}");
            }
        }
    }

    /// A query the directory admitted for launch: reserve memory, start
    /// Synjitsu proxying, and queue for a launch slot.
    fn on_admitted(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let svc = world
            .config
            .service(&name)
            .cloned()
            .expect("directory only launches configured names");
        if matches!(world.services.get(&name), Some(Lifecycle::Draining { .. })) {
            // Reap/resummon race: the domain is still tearing down; the
            // relaunch starts the moment the drain completes.
            let client = world.new_client(now);
            if let Some(Lifecycle::Draining { queued, .. }) = world.services.get_mut(&name) {
                queued.push(client);
            }
            world.metrics.coalesced += 1;
            return;
        }
        debug_assert!(
            matches!(world.services.get(&name), None | Some(Lifecycle::Idle)),
            "Launch action for {name} in a non-idle state"
        );
        let client = world.new_client(now);
        if world.config.use_synjitsu {
            world
                .synjitsu
                .start_proxying(&mut world.launcher.toolstack.xenstore, &svc)
                .expect("synjitsu can begin proxying");
            Self::park_syn(world, &svc, client);
        }
        world.reserved_mib += svc.image.memory_mib;
        world.services.insert(
            name.clone(),
            Lifecycle::AwaitingSlot {
                queued: vec![client],
            },
        );
        world.launch_queue.push_back(name);
        Self::dispatch(sim);
    }

    /// Grant launch slots to queued services, in admission order, for as
    /// long as slots are free.
    fn dispatch(sim: &mut StormSim) {
        loop {
            let now = sim.now();
            let world = sim.world_mut();
            if world.launch_queue.is_empty() || !world.slots.try_acquire() {
                return;
            }
            let name = world
                .launch_queue
                .pop_front()
                .expect("checked non-empty above");
            let Some(Lifecycle::AwaitingSlot { queued, .. }) = world.services.remove(&name) else {
                // The service left AwaitingSlot some other way (launch
                // failure cleanup); give the slot back and keep going.
                world.slots.release();
                continue;
            };
            let svc = world
                .config
                .service(&name)
                .cloned()
                .expect("queued services are configured");
            world.reserved_mib = world.reserved_mib.saturating_sub(svc.image.memory_mib);
            let seed = world.next_seed();
            match world.launcher.summon(&svc, now, seed) {
                Ok((outcome, _instance)) => {
                    world.metrics.launches += 1;
                    let construction_done_at = now + outcome.construction.total;
                    let network_ready_at = outcome.network_ready_at();
                    let app_ready_at = outcome.app_ready_at();
                    world.tracer.emit(
                        now,
                        "jitsud",
                        format!(
                            "summoning {} as dom{} ({} queued SYN(s))",
                            name,
                            outcome.dom.0,
                            queued.len()
                        ),
                    );
                    world.services.insert(
                        name.clone(),
                        Lifecycle::Launching {
                            queued,
                            dom: outcome.dom,
                            network_ready_at,
                            app_ready_at,
                        },
                    );
                    // The slot covers dom0's construction work only; the
                    // guest boots on its own vcpu.
                    sim.schedule_at(construction_done_at, |sim| {
                        sim.world_mut().slots.release();
                        Self::dispatch(sim);
                    });
                    let handoff_name = name.clone();
                    sim.schedule_at(network_ready_at, move |sim| {
                        Self::on_network_ready(sim, handoff_name);
                    });
                    sim.schedule_at(app_ready_at, move |sim| Self::on_app_ready(sim, name));
                }
                Err(err) => {
                    // Reservations should make this unreachable; degrade to
                    // SERVFAIL for every parked client rather than wedging.
                    world.tracer.emit(
                        now,
                        "jitsud",
                        format!("launch of {name} failed ({err:?}); SERVFAIL for queued clients"),
                    );
                    world.metrics.servfails += queued.len() as u64;
                    world.directory.mark_stopped(&name);
                    world.services.insert(name, Lifecycle::Idle);
                    world.slots.release();
                }
            }
        }
    }

    /// Event: the booting unikernel's network stack attached — hand the SYN
    /// queue over through XenStore (§3.3.1).
    fn on_network_ready(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        if !world.config.use_synjitsu || !world.synjitsu.is_proxying(&name) {
            return;
        }
        let tcbs = world
            .synjitsu
            .handoff(&mut world.launcher.toolstack.xenstore, &name)
            .expect("handoff commits");
        world.metrics.syn_handoffs += tcbs.len() as u64;
        world.tracer.emit(
            now,
            "synjitsu",
            format!("handed over {} connection(s) for {}", tcbs.len(), name),
        );
    }

    /// Event: the application is up — serve the queued clients, enter
    /// `Running`, and arm the idle reaper.
    fn on_app_ready(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let Some(Lifecycle::Launching {
            queued,
            dom,
            network_ready_at,
            app_ready_at,
        }) = world.services.remove(&name)
        else {
            debug_assert!(false, "app-ready without a Launching {name}");
            return;
        };
        world.directory.mark_ready(&name, now);
        for client in &queued {
            let ttfb = world.cold_ttfb(client.arrived, network_ready_at, app_ready_at);
            world.metrics.ttfb.record(ttfb);
        }
        world.metrics.cold_served += queued.len() as u64;
        world.tracer.emit(
            now,
            "unikernel",
            format!(
                "{} ready; replayed {} buffered request(s)",
                name,
                queued.len()
            ),
        );
        world.services.insert(
            name.clone(),
            Lifecycle::Running {
                dom,
                last_activity: now,
            },
        );
        Self::schedule_reap_check(sim, name, now);
    }

    /// Time from a client's DNS query to its first response byte, for a
    /// client parked on a boot. Mirrors the linear daemon's timeline
    /// arithmetic (`Jitsud::cold_start_request`).
    fn cold_ttfb(
        &self,
        arrived: SimTime,
        network_ready_at: SimTime,
        app_ready_at: SimTime,
    ) -> SimDuration {
        if self.config.use_synjitsu {
            // Synjitsu completes the handshake immediately; the unikernel
            // replays the buffered request right after adopting it.
            let request_buffered = arrived + self.dns_processing + self.one_way_delay * 4;
            let handoff_done = network_ready_at + self.handoff_cost;
            let first_byte_sent = handoff_done.max(request_buffered) + self.service_cost;
            (first_byte_sent + self.one_way_delay).duration_since(arrived)
        } else {
            // The SYN is lost until the app listens; the client retransmits
            // with exponential backoff (1 s, 2 s, 4 s, …).
            let mut attempt = arrived + self.dns_processing + self.one_way_delay * 2;
            let mut retransmissions = 0u32;
            while attempt < app_ready_at {
                retransmissions += 1;
                let backoff = self.syn_rto * (1u64 << (retransmissions - 1).min(6));
                attempt += backoff;
            }
            let first_byte_sent = attempt + self.one_way_delay * 4 + self.service_cost;
            (first_byte_sent + self.one_way_delay).duration_since(arrived)
        }
    }

    /// Arm an idle check at `activity_at + TTL`. Stale checks (the service
    /// saw traffic in the meantime, or was already reaped) fizzle.
    fn schedule_reap_check(sim: &mut StormSim, name: String, activity_at: SimTime) {
        let Some(ttl) = sim.world().config.idle_timeout else {
            return;
        };
        sim.schedule_at(activity_at + ttl, move |sim| Self::on_reap_check(sim, name));
    }

    /// Event: an idle check fires.
    fn on_reap_check(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let Some(ttl) = world.config.idle_timeout else {
            return;
        };
        let Some(Lifecycle::Running { dom, last_activity }) = world.services.get(&name) else {
            return;
        };
        if now.duration_since(*last_activity) < ttl {
            return; // refreshed since this check was armed; a newer one is pending
        }
        let dom = *dom;
        world.services.insert(
            name.clone(),
            Lifecycle::Draining {
                dom,
                queued: Vec::new(),
            },
        );
        world.directory.mark_stopped(&name);
        world.metrics.reaps += 1;
        world
            .tracer
            .emit(now, "jitsud", format!("reaping idle {name} (dom{})", dom.0));
        let teardown = world.launcher.teardown_time();
        sim.schedule_in(teardown, move |sim| Self::on_drain_done(sim, name));
    }

    /// Event: teardown finished — free the domain and either go idle or
    /// immediately relaunch for clients that arrived mid-drain.
    fn on_drain_done(sim: &mut StormSim, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let Some(Lifecycle::Draining { dom, queued }) = world.services.remove(&name) else {
            debug_assert!(false, "drain-done without a Draining {name}");
            return;
        };
        world
            .launcher
            .retire(dom)
            .expect("draining domain exists until retired");
        world
            .tracer
            .emit(now, "jitsud", format!("retired idle service {name}"));
        if queued.is_empty() {
            world.services.insert(name, Lifecycle::Idle);
            return;
        }
        // Re-entry: waiters arrived while the old domain drained. Launch
        // again from scratch (the directory already shows it as launching).
        let svc = world
            .config
            .service(&name)
            .cloned()
            .expect("drained services are configured");
        if world.config.use_synjitsu {
            world
                .synjitsu
                .start_proxying(&mut world.launcher.toolstack.xenstore, &svc)
                .expect("synjitsu can begin proxying");
            for client in &queued {
                Self::park_syn(world, &svc, *client);
            }
        }
        world.reserved_mib += svc.image.memory_mib;
        world
            .services
            .insert(name.clone(), Lifecycle::AwaitingSlot { queued });
        world.launch_queue.push_back(name);
        Self::dispatch(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    const ALICE: &str = "alice.family.name";
    const BOB: &str = "bob.family.name";

    /// Base test config with idle reaping off, so `sim.run()` leaves
    /// services in `Running` (tests that exercise the reaper opt in via
    /// `with_idle_timeout`).
    fn config() -> JitsuConfig {
        let mut cfg = JitsuConfig::new("family.name")
            .with_service(ServiceConfig::http_site(
                ALICE,
                Ipv4Addr::new(192, 168, 1, 20),
            ))
            .with_service(ServiceConfig::http_site(
                BOB,
                Ipv4Addr::new(192, 168, 1, 21),
            ));
        cfg.idle_timeout = None;
        cfg
    }

    fn sim(config: JitsuConfig) -> StormSim {
        ConcurrentJitsud::sim(config, BoardKind::Cubieboard2.board(), 7)
    }

    #[test]
    fn duplicate_queries_coalesce_onto_the_in_flight_boot() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(10), ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(20), ALICE);
        sim.run_until(SimTime::from_millis(50));
        // Mid-boot: one launch in flight, three SYNs parked on it.
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(sim.world().metrics().coalesced, 2);
        assert_eq!(sim.world().synjitsu().proxied_connection_count(ALICE), 3);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.launches, 1, "duplicates must not double-launch");
        assert_eq!(m.cold_served, 3);
        assert_eq!(m.syn_handoffs, 3, "all parked SYNs handed over");
        assert_eq!(m.ttfb.count(), 3);
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        assert!(sim
            .world()
            .tracer
            .find("coalesced onto in-flight boot")
            .is_some());
    }

    #[test]
    fn different_names_boot_concurrently_within_slot_capacity() {
        let mut sim = sim(config().with_launch_slots(2));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(sim.world().phase(BOB), LifecyclePhase::Launching);
        assert_eq!(sim.world().slots().in_use(), 2);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.launches, 2);
        assert_eq!(sim.world().slots().peak(), 2);
        assert_eq!(sim.world().running_count(), 2);
    }

    #[test]
    fn single_slot_serialises_overlapping_launches() {
        let mut sim = sim(config().with_launch_slots(1));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(
            sim.world().phase(BOB),
            LifecyclePhase::AwaitingSlot,
            "second launch queues behind the semaphore"
        );
        sim.run();
        assert_eq!(sim.world().slots().peak(), 1);
        assert_eq!(sim.world().metrics().launches, 2);
        // Bob still boots — later, not never.
        assert_eq!(sim.world().running_count(), 2);
    }

    #[test]
    fn synjitsu_syn_queues_hand_off_per_service_under_overlap() {
        let mut sim = sim(config().with_launch_slots(2));
        // Alice gets three clients, Bob two, interleaved mid-boot.
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(2), BOB);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(5), ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(7), BOB);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(9), ALICE);
        sim.run_until(SimTime::from_millis(40));
        assert_eq!(sim.world().synjitsu().proxied_connection_count(ALICE), 3);
        assert_eq!(sim.world().synjitsu().proxied_connection_count(BOB), 2);
        sim.run();
        let world = sim.world();
        assert_eq!(world.metrics().syn_handoffs, 5);
        assert!(world
            .tracer
            .find(&format!("handed over 3 connection(s) for {ALICE}"))
            .is_some());
        assert!(world
            .tracer
            .find(&format!("handed over 2 connection(s) for {BOB}"))
            .is_some());
        // Handoff strictly precedes the app serving the replayed requests.
        assert!(world
            .tracer
            .happens_before("handed over 3 connection(s)", "alice.family.name ready"));
    }

    #[test]
    fn memory_exhaustion_yields_servfail_and_recovers_after_reaping() {
        // Three fat services on a board that fits only two (832 MiB free).
        let mut cfg = JitsuConfig::new("family.name").with_idle_timeout(SimDuration::from_secs(2));
        for (i, name) in ["a.family.name", "b.family.name", "c.family.name"]
            .iter()
            .enumerate()
        {
            let mut svc = ServiceConfig::http_site(name, Ipv4Addr::new(192, 168, 1, 30 + i as u8));
            svc.image.memory_mib = 400;
            cfg = cfg.with_service(svc);
        }
        let mut sim = sim(cfg);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "a.family.name");
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(5), "b.family.name");
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(10), "c.family.name");
        sim.run_until(SimTime::from_secs(1));
        let m = sim.world().metrics();
        assert_eq!(m.launches, 2);
        assert_eq!(m.servfails, 1, "third service cannot fit");
        assert_eq!(sim.world().phase("c.family.name"), LifecyclePhase::Idle);
        // After the idle TTL the first two are reaped; c can now be summoned
        // (the fail-over story: the client retries and this board has room).
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.world().metrics().reaps, 2);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_secs(11), "c.family.name");
        sim.run_until(SimTime::from_secs(12));
        assert_eq!(sim.world().phase("c.family.name"), LifecyclePhase::Running);
        assert_eq!(sim.world().metrics().launches, 3);
        assert_eq!(sim.world().metrics().servfail_rate(), 1.0 / 4.0);
    }

    #[test]
    fn reap_then_resummon_re_enters_the_lifecycle() {
        let mut sim = sim(config().with_idle_timeout(SimDuration::from_secs(1)));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Idle);
        assert_eq!(sim.world().metrics().reaps, 1);
        assert!(sim.world().tracer.find("reaping idle").is_some());
        // Resummon from scratch.
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_secs(5), ALICE);
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        assert_eq!(sim.world().metrics().launches, 2);
        assert_eq!(sim.world().metrics().cold_served, 2);
        // Left alone, the reaper eventually retires it again.
        sim.run();
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Idle);
        assert_eq!(sim.world().metrics().reaps, 2);
    }

    #[test]
    fn query_during_drain_relaunches_after_teardown() {
        let mut sim = sim(config().with_idle_timeout(SimDuration::from_secs(1)));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        // Step in 5 ms increments until the reaper has moved the service
        // into Draining (the teardown window is ~30 ms on ARM).
        let mut guard = 0;
        while sim.world().phase(ALICE) != LifecyclePhase::Draining {
            sim.run_for(SimDuration::from_millis(5));
            guard += 1;
            assert!(guard < 1_000, "service never entered Draining");
        }
        // A query lands mid-drain: it must wait out the teardown, then boot.
        let mid_drain = sim.now();
        ConcurrentJitsud::inject_query(&mut sim, mid_drain, ALICE);
        sim.run_until(mid_drain + SimDuration::from_millis(600));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        assert_eq!(sim.world().metrics().launches, 2);
        assert_eq!(sim.world().metrics().cold_served, 2);
        assert_eq!(sim.world().metrics().reaps, 1);
    }

    #[test]
    fn memory_reservations_are_returned_on_launch() {
        let mut sim = sim(config().with_launch_slots(1));
        let free_before = sim.world().effective_free_mib();
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        // Bob awaits a slot: his memory is reserved but not allocated.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.world().effective_free_mib(), free_before - 32);
        sim.run();
        // Both allocated for real now; reservations fully drained.
        assert_eq!(sim.world().effective_free_mib(), free_before - 32);
        assert_eq!(sim.world().reserved_mib, 0);
    }

    #[test]
    fn warm_hits_are_fast_and_refresh_the_idle_clock() {
        let mut sim = sim(config().with_idle_timeout(SimDuration::from_secs(2)));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        // A warm query at t=1.5s pushes the reap horizon to 3.5s.
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1_500), ALICE);
        sim.run_until(SimTime::from_millis(2_600));
        assert_eq!(
            sim.world().phase(ALICE),
            LifecyclePhase::Running,
            "warm traffic must delay the reaper"
        );
        assert_eq!(sim.world().metrics().warm_hits, 1);
        sim.run();
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Idle);
        let m = sim.world().metrics();
        // Warm TTFB is tens of ms; cold is hundreds.
        assert!(m.ttfb.percentile_ms(0.0) < 50.0);
        assert!(m.ttfb.percentile_ms(100.0) > 250.0);
    }

    #[test]
    fn without_synjitsu_cold_ttfb_exceeds_one_second() {
        let mut sim = sim(config().without_synjitsu());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.cold_served, 1);
        assert_eq!(m.syn_handoffs, 0);
        assert!(
            m.ttfb.percentile_ms(50.0) > 1_000.0,
            "lost SYN costs a retransmission timeout"
        );
    }

    #[test]
    fn unknown_names_are_counted_not_launched() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "carol.family.name");
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "example.com");
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.unknown, 2);
        assert_eq!(m.launches, 0);
        assert_eq!(m.queries, 2);
    }

    #[test]
    fn same_seed_same_storm() {
        let run = || {
            let mut s = sim(config().with_idle_timeout(SimDuration::from_secs(1)));
            for i in 0..20u64 {
                let name = if i % 2 == 0 { ALICE } else { BOB };
                ConcurrentJitsud::inject_query(&mut s, SimTime::from_millis(i * 137), name);
            }
            s.run();
            let m = s.world().metrics();
            (
                m.queries,
                m.launches,
                m.coalesced,
                m.warm_hits,
                m.ttfb.p50_ms().to_bits(),
                m.ttfb.p99_ms().to_bits(),
                s.events_executed(),
            )
        };
        assert_eq!(run(), run());
    }
}
