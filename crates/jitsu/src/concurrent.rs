//! The concurrent boot-storm engine: an event-driven jitsud.
//!
//! [`Jitsud`](crate::jitsud::Jitsud) drives exactly one cold-start timeline
//! at a time, which is faithful to Figure 9a but cannot exercise the regime
//! §3.3 actually describes: "If the name requested does not correspond to a
//! running unikernel, Jitsu launches the desired unikernel while
//! simultaneously returning an appropriate endpoint", idle unikernels are
//! reaped to reclaim memory, and "resource exhaustion is reported as
//! `SERVFAIL` so clients fail over to another board". All three behaviours
//! only become interesting when many DNS queries for many names overlap —
//! the boot storm.
//!
//! [`ConcurrentJitsud`] is that daemon, rebuilt as a *world* scheduled on
//! the [`jitsu_sim`] discrete-event engine. Every configured service owns a
//! lifecycle state machine:
//!
//! ```text
//!            admission           slot granted          app ready
//!   Idle ──────────────▶ AwaitingSlot ──────▶ Launching ──────▶ Running
//!    ▲   (memory check,   {queued SYNs}      {queued SYNs}        │
//!    │    SERVFAIL on                                             │ idle ≥ TTL
//!    │    exhaustion)                                             ▼
//!    └──────────────────────── teardown done ◀──────────────── Draining
//! ```
//!
//! * **Concurrency** — overlapping queries for *different* names boot
//!   domains concurrently, bounded by a [`LaunchSlots`] semaphore (domain
//!   construction is dom0-CPU-bound; §3.1). Launches past the slot capacity
//!   queue FIFO, which is what turns overload into graceful tail-latency
//!   growth instead of thrash.
//! * **Coalescing** — duplicate queries for a *mid-launch* name join the
//!   in-flight boot's SYN queue instead of double-launching (§3.3: Synjitsu
//!   buffers the early SYNs; the unikernel replays them after handoff).
//! * **Admission control** — board memory is accounted (including
//!   reservations for launches still waiting on a slot); a query that
//!   cannot fit is answered `SERVFAIL` so the client fails over to another
//!   board (§3.3.2).
//! * **Idle reaping** — a service idle longer than the configured TTL is
//!   drained: its domain is torn down (taking
//!   [`Toolstack::teardown_time`](xen_sim::toolstack::Toolstack) of
//!   virtual time) and its memory returns to the pool, after which the name
//!   can be summoned again from scratch.
//!
//! The SYN queue is not a counter: while a service boots, each queued
//! client completes a real TCP handshake against the real
//! [`Synjitsu`] proxy (same `netstack` the unikernels use), and at
//! network-ready the whole queue is handed over through XenStore exactly as
//! in the linear daemon.

use crate::config::{JitsuConfig, ServiceConfig};
use crate::directory::{DirectoryAction, DirectoryService};
use crate::handoff::{HandoffCoordinator, HandoffPhase};
use crate::launcher::Launcher;
use crate::synjitsu::Synjitsu;
use conduit::flows::FlowTable;
use conduit::rendezvous::ConduitRegistry;
use conduit::vchan::Side;
use jitsu_sim::{
    LatencyRecorder, Scheduler, Sim, SimDuration, SimRng, SimTime, SummaryStats, Tracer,
};
use netstack::dns::{DnsMessage, Rcode};
use netstack::ethernet::{EthernetFrame, MacAddr};
use netstack::http::HttpRequest;
use netstack::iface::{IfaceEvent, Interface};
use netstack::ipv4::{Ipv4Addr, Ipv4Packet};
use netstack::tcp::Tcb;
use netstack::FrameBuf;
use platform::Board;
use std::collections::{BTreeMap, VecDeque};
use unikernel::appliance::{Appliance, StaticSiteAppliance};
use unikernel::instance::UnikernelInstance;
use xen_sim::toolstack::{LaunchSlots, Toolstack};
use xenstore::DomId;

/// One client whose first connection is parked on a booting service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedClient {
    /// Engine-wide client id (used to derive a unique IP/MAC).
    pub id: u32,
    /// When the client's DNS query arrived.
    pub arrived: SimTime,
}

/// One client's live TCP flow: a real [`Interface`] that completes its
/// handshake against whichever side of the handoff currently owns the
/// service's traffic, sends an HTTP request, and accumulates the response
/// byte stream so the engine can prove nothing was dropped or duplicated
/// across the migration.
#[derive(Debug)]
struct ClientFlow {
    iface: Interface,
    request: FrameBuf,
    response: Vec<u8>,
    sent_request: bool,
}

impl ClientFlow {
    /// Feed one frame from the service side (Synjitsu or the unikernel)
    /// into the client, returning the frames the client transmits in
    /// response — including its HTTP request, sent exactly once, the
    /// moment the handshake completes. Response bytes accumulate for the
    /// zero-drop/zero-dup accounting.
    fn on_peer_frame(&mut self, frame: &FrameBuf) -> Vec<FrameBuf> {
        let (mut out, events) = self.iface.handle_frame(frame);
        for ev in events {
            match ev {
                IfaceEvent::TcpConnected { remote, local_port } if !self.sent_request => {
                    self.sent_request = true;
                    let request = self.request.slice(..);
                    if let Some(f) = self.iface.tcp_send(remote, local_port, request) {
                        out.push(f);
                    }
                }
                IfaceEvent::TcpData { data, .. } => self.response.extend_from_slice(&data),
                _ => {}
            }
        }
        out
    }
}

/// The unikernel side of one service's data plane: the packet-level
/// instance (network stack + appliance) plus the handoff bookkeeping the
/// two-phase commit needs.
#[derive(Debug)]
struct DataPlane {
    instance: UnikernelInstance,
    /// TCBs reconstructed from the conduit vchan drain at `Prepare`,
    /// adopted into the instance at `Committed`.
    drained: Vec<Tcb>,
    /// Phase 2 of the two-phase commit has run.
    committed: bool,
    /// The application has come up (`on_app_ready` fired).
    app_ready: bool,
    /// Clients whose exchanges could not be accounted at app-ready because
    /// the commit had not happened yet (the rare reversed ordering).
    awaiting_account: Vec<QueuedClient>,
}

/// The lifecycle state machine of one configured service.
#[derive(Debug)]
pub enum Lifecycle {
    /// No domain exists and nothing is in flight.
    Idle,
    /// Admitted (memory reserved) but waiting for a launch slot.
    AwaitingSlot {
        /// Clients parked on this boot, in arrival order.
        queued: Vec<QueuedClient>,
    },
    /// The toolstack is constructing / the guest is booting the domain.
    Launching {
        /// Clients parked on this boot, in arrival order.
        queued: Vec<QueuedClient>,
        /// The domain being built.
        dom: DomId,
        /// When the guest's network stack attaches (Synjitsu handoff point).
        network_ready_at: SimTime,
        /// When the application can serve requests.
        app_ready_at: SimTime,
    },
    /// The unikernel is serving requests.
    Running {
        /// The serving domain.
        dom: DomId,
        /// Last time the service saw a request (the idle clock).
        last_activity: SimTime,
    },
    /// Reaped: the domain is being torn down; memory frees when it is done.
    Draining {
        /// The domain being destroyed.
        dom: DomId,
        /// Clients that asked for the name mid-drain (they relaunch it).
        queued: Vec<QueuedClient>,
    },
}

/// A copyable label for a service's current lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecyclePhase {
    /// No domain exists.
    Idle,
    /// Waiting for a launch slot.
    AwaitingSlot,
    /// Domain construction / guest boot in flight.
    Launching,
    /// Serving.
    Running,
    /// Being torn down.
    Draining,
}

/// Data-plane counters for the live-connection handoff (§3.3.1's "only one
/// of them ever handles any given packet", measured rather than assumed).
#[derive(Debug, Default)]
pub struct HandoffStats {
    /// Connections reconstructed from the conduit vchan drain and adopted
    /// by a freshly booted unikernel.
    pub migrated: u64,
    /// Frames that arrived inside a `Prepare` window and were parked in the
    /// handoff area instead of being answered (or dropped) by either side.
    pub queued_during_prepare: u64,
    /// Parked frames replayed by the unikernel after `Committed`.
    pub replayed_after_commit: u64,
    /// HTTP exchanges whose response stream reached the client byte-exact.
    /// Covers every cold-served (parked) client: those migrated through the
    /// vchan drain *and* those that connected directly during the short
    /// post-commit boot tail — the zero-drop guarantee spans both.
    pub completed: u64,
    /// Expected response bytes that never reached a client.
    pub dropped_bytes: u64,
    /// Bytes delivered beyond (or diverging from) the expected stream.
    pub duplicated_bytes: u64,
    /// Client-observed request latency (DNS query → first response byte)
    /// for every cold-served request — i.e. every request whose service was
    /// still booting when it arrived, whichever side of the commit it
    /// landed on. (`migrated` counts the strictly-proxied subset.)
    pub request_latency: LatencyRecorder,
}

impl HandoffStats {
    /// Summary statistics of the cold-path request latency, in
    /// milliseconds of virtual time — exact and seed-deterministic, which
    /// is what lets the `bench_snapshot` harness treat handoff latency as a
    /// drift-checked virtual metric rather than a noisy wall measurement.
    pub fn latency_summary(&self) -> Option<SummaryStats> {
        self.request_latency.summary()
    }
}

/// Counters and latency samples accumulated over a storm.
#[derive(Debug, Default)]
pub struct StormMetrics {
    /// DNS queries handled.
    pub queries: u64,
    /// Queries for names outside the configuration (NXDOMAIN / refused).
    pub unknown: u64,
    /// Domains actually constructed.
    pub launches: u64,
    /// Requests answered by a cold start (parked on a boot, then served).
    pub cold_served: u64,
    /// Queries that coalesced onto an in-flight boot or drain.
    pub coalesced: u64,
    /// Queries answered by an already-running unikernel.
    pub warm_hits: u64,
    /// Queries answered `SERVFAIL` because memory was exhausted (the client
    /// fails over to another board, §3.3.2).
    pub servfails: u64,
    /// `SERVFAIL`ed queries parked for retry on a peer board (fleet runs
    /// only; the retry is delivered at the next epoch barrier).
    pub failovers: u64,
    /// `SERVFAIL`ed queries with no boards left to try (every board in the
    /// fleet was exhausted) — the client-visible hard failure count.
    pub failover_dropped: u64,
    /// Idle unikernels reaped.
    pub reaps: u64,
    /// TCP connections handed from Synjitsu to a freshly booted unikernel.
    pub syn_handoffs: u64,
    /// Data-plane accounting for the live-connection handoff.
    pub handoff: HandoffStats,
    /// Time from a client's DNS query to its first response byte, for every
    /// served request (cold and warm).
    pub ttfb: LatencyRecorder,
}

impl StormMetrics {
    /// Served requests (cold + warm).
    pub fn served(&self) -> u64 {
        self.cold_served + self.warm_hits
    }

    /// Fraction of service queries answered `SERVFAIL`, in `[0, 1]`.
    pub fn servfail_rate(&self) -> f64 {
        let eligible = self.served() + self.servfails;
        if eligible == 0 {
            0.0
        } else {
            self.servfails as f64 / eligible as f64
        }
    }

    /// Summary statistics of time-to-first-byte across every served
    /// request, in milliseconds of virtual time.
    pub fn ttfb_summary(&self) -> Option<SummaryStats> {
        self.ttfb.summary()
    }
}

/// The event-driven concurrent Jitsu daemon: the world of a
/// [`Sim<ConcurrentJitsud>`].
pub struct ConcurrentJitsud {
    config: JitsuConfig,
    directory: DirectoryService,
    launcher: Launcher,
    synjitsu: Synjitsu,
    slots: LaunchSlots,
    /// The conduit rendezvous registry (Synjitsu's handoff endpoint).
    conduit: ConduitRegistry,
    /// Stateless probe into the XenStore handoff area (phase lookups).
    handoff_probe: HandoffCoordinator,
    /// Live client TCP flows, by client id.
    clients: BTreeMap<u32, ClientFlow>,
    /// Per-service unikernel data planes, while launching or running.
    planes: BTreeMap<String, DataPlane>,
    services: BTreeMap<String, Lifecycle>,
    /// The per-boot service-registration transaction, held open for the
    /// whole domain-construction window so overlapping builds genuinely
    /// overlap their store transactions (committed at construction-done;
    /// merged, not aborted, on the Jitsu engine).
    boot_txns: BTreeMap<String, xenstore::TxId>,
    /// Services admitted and waiting for a launch slot, FIFO.
    launch_queue: VecDeque<String>,
    /// Memory reserved for admitted-but-not-yet-built domains, in MiB.
    reserved_mib: u32,
    metrics: StormMetrics,
    one_way_delay: SimDuration,
    dns_processing: SimDuration,
    handoff_cost: SimDuration,
    /// Application-level cost of producing one response.
    service_cost: SimDuration,
    syn_rto: SimDuration,
    next_client_id: u32,
    seed_counter: u64,
    /// `SERVFAIL`ed queries waiting for the next epoch barrier, where the
    /// fleet layer forwards them to a peer board. Each entry carries the
    /// number of further boards the query may still try.
    pub(crate) pending_failover: Vec<(String, u32)>,
    /// Remaining-hops hint for the query currently being handled (set by
    /// `fleet::on_message` around a forwarded query; `None` for fresh
    /// arrivals, which start from `failover_hops_default`).
    pub(crate) failover_hint: Option<u32>,
    /// How many peer boards a fresh query may fail over to (boards − 1 in a
    /// fleet; 0 standalone).
    pub(crate) failover_hops_default: u32,
    /// Event trace (reuses the Figure 6 vocabulary).
    pub tracer: Tracer,
}

/// The simulator type the engine runs on.
pub type StormSim = Sim<ConcurrentJitsud>;

impl ConcurrentJitsud {
    /// Build the world and wrap it in a simulator at time zero.
    pub fn sim(config: JitsuConfig, board: Board, seed: u64) -> StormSim {
        Sim::new(Self::world(config, board, seed))
    }

    /// Build the bare world (one board's jitsud). Used directly by the
    /// sharded fleet, where each board is one [`jitsu_sim::shard::Domain`]
    /// rather than the owner of its own flat simulator.
    pub fn world(config: JitsuConfig, board: Board, seed: u64) -> ConcurrentJitsud {
        let mut toolstack = Toolstack::new(board.clone(), config.engine, seed);
        // Synjitsu registers its conduit endpoint up front: every booting
        // unikernel rendezvouses here to drain its proxied connections.
        let mut conduit = ConduitRegistry::new();
        conduit
            .register(&mut toolstack.xenstore, "synjitsu", DomId::DOM0)
            // jitsu-lint: allow(P001, "engine setup on a fresh store; conduit registration cannot collide")
            .expect("conduit registration succeeds on a fresh store");
        let launcher = Launcher::new(toolstack, config.boot);
        let directory = DirectoryService::new(config.clone());
        let slots = LaunchSlots::new(config.launch_slots);
        ConcurrentJitsud {
            directory,
            launcher,
            synjitsu: Synjitsu::new(),
            slots,
            conduit,
            handoff_probe: HandoffCoordinator::new(),
            clients: BTreeMap::new(),
            planes: BTreeMap::new(),
            services: BTreeMap::new(),
            boot_txns: BTreeMap::new(),
            launch_queue: VecDeque::new(),
            reserved_mib: 0,
            metrics: StormMetrics::default(),
            one_way_delay: SimDuration::from_micros(2_500),
            dns_processing: board.scale_cpu(SimDuration::from_micros(150)),
            handoff_cost: board.scale_cpu(SimDuration::from_micros(700)),
            service_cost: board.scale_cpu(SimDuration::from_micros(700)),
            syn_rto: SimDuration::from_secs(1),
            next_client_id: 0,
            seed_counter: seed,
            pending_failover: Vec::new(),
            failover_hint: None,
            failover_hops_default: 0,
            tracer: Tracer::new(),
            config,
        }
    }

    /// Set how many peer boards a fresh `SERVFAIL`ed query may still try
    /// (boards − 1 in a fleet). The fleet layer calls this at construction.
    pub fn set_failover_hops(&mut self, hops: u32) {
        self.failover_hops_default = hops;
    }

    /// Schedule a DNS query for `name` to arrive at `at`.
    pub fn inject_query<S: Scheduler<World = ConcurrentJitsud>>(
        sim: &mut S,
        at: SimTime,
        name: &str,
    ) {
        let name = name.to_string();
        sim.schedule_at(at, move |sim| Self::on_query(sim, name));
    }

    /// The engine's configuration.
    pub fn config(&self) -> &JitsuConfig {
        &self.config
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &StormMetrics {
        &self.metrics
    }

    /// The launch-slot semaphore.
    pub fn slots(&self) -> &LaunchSlots {
        &self.slots
    }

    /// The current lifecycle phase of a service.
    pub fn phase(&self, name: &str) -> LifecyclePhase {
        match self.services.get(name.trim_matches('.')) {
            None | Some(Lifecycle::Idle) => LifecyclePhase::Idle,
            Some(Lifecycle::AwaitingSlot { .. }) => LifecyclePhase::AwaitingSlot,
            Some(Lifecycle::Launching { .. }) => LifecyclePhase::Launching,
            Some(Lifecycle::Running { .. }) => LifecyclePhase::Running,
            Some(Lifecycle::Draining { .. }) => LifecyclePhase::Draining,
        }
    }

    /// Number of services currently in the `Running` phase.
    pub fn running_count(&self) -> usize {
        self.services
            .values()
            .filter(|s| matches!(s, Lifecycle::Running { .. }))
            .count()
    }

    /// Free board memory minus reservations for launches still waiting on a
    /// slot — the quantity admission control checks.
    pub fn effective_free_mib(&self) -> u32 {
        self.launcher.free_mib().saturating_sub(self.reserved_mib)
    }

    /// Activity counters of the shared XenStore: the boot-storm and handoff
    /// paths issue several overlapping transactions per boot (domain home
    /// creation, device frontends, conduit rendezvous, the two-phase
    /// handoff flip), so these show whether storm-time concurrency turned
    /// into merged commits (good) or `EAGAIN` aborts (the serial engine's
    /// failure mode the paper's XenStore rewrite removed).
    pub fn xenstore_stats(&self) -> xenstore::StoreStats {
        self.launcher.toolstack.xenstore_stats()
    }

    /// The directory service (for inspecting phases and counters).
    pub fn directory(&self) -> &DirectoryService {
        &self.directory
    }

    /// The Synjitsu proxy (for inspecting SYN queues mid-boot).
    pub fn synjitsu(&self) -> &Synjitsu {
        &self.synjitsu
    }

    fn next_seed(&mut self) -> u64 {
        self.seed_counter = self
            .seed_counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        self.seed_counter
    }

    fn new_client(&mut self, arrived: SimTime) -> QueuedClient {
        self.next_client_id += 1;
        QueuedClient {
            id: self.next_client_id,
            arrived,
        }
    }

    fn client_ip(id: u32) -> Ipv4Addr {
        // 10.x.y.z, never colliding with the 192.168.* service addresses.
        Ipv4Addr::new(10, (id >> 16) as u8, (id >> 8) as u8, id as u8)
    }

    fn client_mac(id: u32) -> MacAddr {
        MacAddr([
            2,
            0,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// Recover the client id a `10.x.y.z` address encodes (the inverse of
    /// [`Self::client_ip`]).
    fn client_id_of_ip(ip: Ipv4Addr) -> Option<u32> {
        if ip.0[0] != 10 {
            return None;
        }
        Some(((ip.0[1] as u32) << 16) | ((ip.0[2] as u32) << 8) | ip.0[3] as u32)
    }

    /// The client id a frame is addressed to (by destination IP).
    fn frame_client_dst(frame: &FrameBuf) -> Option<u32> {
        let eth = EthernetFrame::parse(frame).ok()?;
        let ip = Ipv4Packet::parse(&eth.payload).ok()?;
        Self::client_id_of_ip(ip.dst)
    }

    /// The client id a frame came from (by source IP).
    fn frame_client_src(frame: &FrameBuf) -> Option<u32> {
        let eth = EthernetFrame::parse(frame).ok()?;
        let ip = Ipv4Packet::parse(&eth.payload).ok()?;
        Self::client_id_of_ip(ip.src)
    }

    /// The exact byte stream the static-site appliance serves for `GET /`
    /// on `name` — the oracle the zero-drop/zero-dup accounting compares
    /// each client's accumulated response against.
    fn expected_response(name: &str) -> FrameBuf {
        let mut app = StaticSiteAppliance::new(name);
        let mut rng = SimRng::seed_from_u64(0);
        let (response, _) = app.handle(&HttpRequest::get("/", name), &mut rng);
        response.emit()
    }

    /// Open a real TCP flow for `client` towards the service: build its
    /// interface, remember the HTTP request it will send once connected,
    /// and route the SYN into whichever side of the handoff currently owns
    /// the service's traffic.
    fn open_client_flow(world: &mut ConcurrentJitsud, svc: &ServiceConfig, client: QueuedClient) {
        if !world.config.use_synjitsu {
            return;
        }
        let mut iface = Interface::new(Self::client_mac(client.id), Self::client_ip(client.id));
        iface.add_arp_entry(svc.ip, svc.mac());
        let syn = iface.tcp_connect(svc.ip, svc.port);
        world.clients.insert(
            client.id,
            ClientFlow {
                iface,
                request: HttpRequest::get("/", &svc.name).emit(),
                response: Vec::new(),
                sent_request: false,
            },
        );
        Self::route_client_frames(world, &svc.name, client.id, vec![syn]);
    }

    /// Deliver client frames to exactly one handler, per the handoff phase:
    /// Synjitsu while `Proxying`, the pending queue while `Prepare` (the
    /// unikernel replays them after `Committed`), the unikernel afterwards.
    fn route_client_frames(
        world: &mut ConcurrentJitsud,
        name: &str,
        client_id: u32,
        frames: Vec<FrameBuf>,
    ) {
        if frames.is_empty() {
            return;
        }
        let xs = &mut world.launcher.toolstack.xenstore;
        match world.handoff_probe.phase(xs, name) {
            HandoffPhase::Proxying => Self::pump_via_synjitsu(world, name, client_id, frames),
            HandoffPhase::Prepare => {
                // The race window between the phases: park every frame.
                // Synjitsu queues it into the handoff area and answers
                // nothing.
                for frame in frames {
                    world.metrics.handoff.queued_during_prepare += 1;
                    world
                        .synjitsu
                        .handle_frame(xs, name, &frame)
                        // jitsu-lint: allow(P001, "prepare phase keeps the parked-frame path writable by dom0")
                        .expect("synjitsu parks frames during prepare");
                }
            }
            HandoffPhase::Committed => Self::pump_via_unikernel(world, name, client_id, frames),
        }
    }

    /// Exchange frames between one client flow and the Synjitsu proxy until
    /// both directions go quiet. The client sends its HTTP request as soon
    /// as its handshake completes; Synjitsu buffers it (it never answers
    /// request data) and mirrors every connection into XenStore.
    fn pump_via_synjitsu(
        world: &mut ConcurrentJitsud,
        name: &str,
        client_id: u32,
        mut to_proxy: Vec<FrameBuf>,
    ) {
        let Some(flow) = world.clients.get_mut(&client_id) else {
            return;
        };
        let xs = &mut world.launcher.toolstack.xenstore;
        let synjitsu = &mut world.synjitsu;
        for _ in 0..16 {
            if to_proxy.is_empty() {
                break;
            }
            let mut to_client = Vec::new();
            for frame in to_proxy.drain(..) {
                to_client.extend(
                    synjitsu
                        .handle_frame(xs, name, &frame)
                        // jitsu-lint: allow(P001, "synjitsu's iface is alive for the whole proxy window")
                        .expect("synjitsu accepts proxied frames"),
                );
            }
            for frame in to_client {
                to_proxy.extend(flow.on_peer_frame(&frame));
            }
        }
    }

    /// Exchange frames between one client flow and the booted unikernel.
    fn pump_via_unikernel(
        world: &mut ConcurrentJitsud,
        name: &str,
        client_id: u32,
        to_server: Vec<FrameBuf>,
    ) {
        let Some(plane) = world.planes.get_mut(name) else {
            return;
        };
        let Some(flow) = world.clients.get_mut(&client_id) else {
            return;
        };
        Self::exchange(plane, flow, to_server, Vec::new());
    }

    /// Deliver unikernel-originated frames (e.g. replayed responses) to the
    /// client that owns them, pumping any ACK traffic back.
    fn deliver_to_client(
        world: &mut ConcurrentJitsud,
        name: &str,
        client_id: u32,
        to_client: Vec<FrameBuf>,
    ) {
        let Some(plane) = world.planes.get_mut(name) else {
            return;
        };
        let Some(flow) = world.clients.get_mut(&client_id) else {
            return;
        };
        Self::exchange(plane, flow, Vec::new(), to_client);
    }

    /// Pump frames both ways between a client flow and a unikernel instance
    /// until quiescent, accumulating the client's response stream.
    fn exchange(
        plane: &mut DataPlane,
        flow: &mut ClientFlow,
        mut to_server: Vec<FrameBuf>,
        mut to_client: Vec<FrameBuf>,
    ) {
        for _ in 0..32 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            for frame in to_server.drain(..) {
                let (out, _cost) = plane.instance.handle_frame(&frame);
                to_client.extend(out);
            }
            for frame in to_client.drain(..) {
                to_server.extend(flow.on_peer_frame(&frame));
            }
        }
    }

    /// Event: a DNS query for `name` arrives. Crate-visible so the fleet
    /// layer (`crate::fleet`) can route failed-over queries into a board's
    /// domain context directly.
    pub(crate) fn on_query<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        world.metrics.queries += 1;
        let qid = (world.metrics.queries & 0xffff) as u16;
        // Admission: memory for the service, net of reservations for boots
        // still waiting on a slot. A draining service is exempt — the drain
        // is about to free exactly the memory it needs.
        let draining = matches!(
            world.services.get(name.trim_matches('.')),
            Some(Lifecycle::Draining { .. })
        );
        let resources = draining
            || match world.config.service(&name) {
                Some(svc) => world.effective_free_mib() >= svc.image.memory_mib,
                None => true,
            };
        let query = DnsMessage::query(qid, &name);
        let (response, action) = world.directory.handle_query(&query, now, resources);
        match action {
            DirectoryAction::None => {
                if response.rcode != Rcode::NoError {
                    world.metrics.unknown += 1;
                }
            }
            DirectoryAction::ResourceExhausted { name } => {
                world.metrics.servfails += 1;
                world.tracer.emit(
                    now,
                    "jitsud",
                    format!("SERVFAIL for {name}: memory exhausted, client fails over"),
                );
                // §3.3.2's other half: in a fleet the SERVFAIL makes the
                // client retry against the next board. Parked here; the
                // fleet layer forwards it at the next epoch barrier.
                if world.config.failover {
                    let hops = world.failover_hint.unwrap_or(world.failover_hops_default);
                    if hops > 0 {
                        world.metrics.failovers += 1;
                        world.pending_failover.push((name, hops - 1));
                    } else {
                        world.metrics.failover_dropped += 1;
                    }
                }
            }
            DirectoryAction::AlreadyRunning { name } => Self::on_alive_query(sim, name),
            DirectoryAction::Launch { name } => Self::on_admitted(sim, name),
        }
    }

    /// A query for a service the directory considers alive (mid-launch or
    /// running) — coalesce or serve warm.
    fn on_alive_query<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let client = world.new_client(now);
        let svc = world
            .config
            .service(&name)
            .cloned()
            // jitsu-lint: allow(P001, "queries reaching here matched a configured service name")
            .expect("directory only answers configured names");
        match world.services.get_mut(&name) {
            Some(Lifecycle::AwaitingSlot { queued, .. }) => {
                queued.push(client);
                world.metrics.coalesced += 1;
                Self::open_client_flow(world, &svc, client);
            }
            Some(Lifecycle::Launching { queued, .. }) => {
                queued.push(client);
                world.metrics.coalesced += 1;
                world.tracer.emit(
                    now,
                    "jitsud",
                    format!("query for mid-launch {name} coalesced onto in-flight boot"),
                );
                Self::open_client_flow(world, &svc, client);
            }
            Some(Lifecycle::Draining { queued, .. }) => {
                // A relaunch is already committed (the query that triggered
                // it marked the directory); ride along.
                queued.push(client);
                world.metrics.coalesced += 1;
            }
            Some(Lifecycle::Running { last_activity, .. }) => {
                // Warm hit: DNS round plus handshake, request and response
                // against the running unikernel (the ≈5 ms local path, §3).
                let ttfb = world.dns_processing
                    + world.one_way_delay * 6
                    + world.service_cost
                    + world.one_way_delay;
                world.metrics.ttfb.record(ttfb);
                world.metrics.warm_hits += 1;
                // The engine's `last_activity` is the idle clock the reaper
                // consults; the directory's copy was already refreshed by
                // `handle_query`.
                *last_activity = now;
                Self::schedule_reap_check(sim, name, now);
            }
            None | Some(Lifecycle::Idle) => {
                debug_assert!(false, "directory alive but engine idle for {name}");
            }
        }
    }

    /// A query the directory admitted for launch: reserve memory, start
    /// Synjitsu proxying, and queue for a launch slot.
    fn on_admitted<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let svc = world
            .config
            .service(&name)
            .cloned()
            // jitsu-lint: allow(P001, "launch actions are only emitted for configured services")
            .expect("directory only launches configured names");
        if matches!(world.services.get(&name), Some(Lifecycle::Draining { .. })) {
            // Reap/resummon race: the domain is still tearing down; the
            // relaunch starts the moment the drain completes.
            let client = world.new_client(now);
            if let Some(Lifecycle::Draining { queued, .. }) = world.services.get_mut(&name) {
                queued.push(client);
            }
            world.metrics.coalesced += 1;
            return;
        }
        debug_assert!(
            matches!(world.services.get(&name), None | Some(Lifecycle::Idle)),
            "Launch action for {name} in a non-idle state"
        );
        let client = world.new_client(now);
        if world.config.use_synjitsu {
            world
                .synjitsu
                .start_proxying(&mut world.launcher.toolstack.xenstore, &svc)
                // jitsu-lint: allow(P001, "synjitsu proxy setup repeats a registration that already succeeded")
                .expect("synjitsu can begin proxying");
            Self::open_client_flow(world, &svc, client);
        }
        world.reserved_mib += svc.image.memory_mib;
        world.services.insert(
            name.clone(),
            Lifecycle::AwaitingSlot {
                queued: vec![client],
            },
        );
        world.launch_queue.push_back(name);
        Self::dispatch(sim);
    }

    /// Grant launch slots to queued services, in admission order, for as
    /// long as slots are free.
    fn dispatch<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S) {
        loop {
            let now = sim.now();
            let world = sim.world_mut();
            if world.launch_queue.is_empty() || !world.slots.try_acquire() {
                return;
            }
            let name = world
                .launch_queue
                .pop_front()
                // jitsu-lint: allow(P001, "guarded by the non-empty check on the previous line")
                .expect("checked non-empty above");
            let Some(Lifecycle::AwaitingSlot { queued, .. }) = world.services.remove(&name) else {
                // The service left AwaitingSlot some other way (launch
                // failure cleanup); give the slot back and keep going.
                world.slots.release();
                continue;
            };
            let svc = world
                .config
                .service(&name)
                .cloned()
                // jitsu-lint: allow(P001, "queued service names were validated at admission")
                .expect("queued services are configured");
            world.reserved_mib = world.reserved_mib.saturating_sub(svc.image.memory_mib);
            let seed = world.next_seed();
            match world.launcher.summon(&svc, now, seed) {
                Ok((outcome, instance)) => {
                    world.metrics.launches += 1;
                    // Register the boot in the store inside a transaction
                    // that stays open for the entire construction window.
                    // Under a storm, several of these overlap; the engine
                    // decides at commit time whether they merge or abort.
                    let xs = &mut world.launcher.toolstack.xenstore;
                    let boot_tx = xs
                        .transaction_start(DomId::DOM0)
                        // jitsu-lint: allow(P001, "dom0 transactions are exempt from the per-domain quota")
                        .expect("dom0 transactions are not quota-limited");
                    Self::write_boot_record(xs, boot_tx, &name, outcome.dom)
                        // jitsu-lint: allow(P001, "boot registration writes go to fresh per-service paths")
                        .expect("boot registration writes succeed");
                    world.boot_txns.insert(name.clone(), boot_tx);
                    // Keep the packet-level instance: it is the unikernel
                    // side of the data plane once the handoff commits.
                    world.planes.insert(
                        name.clone(),
                        DataPlane {
                            instance,
                            drained: Vec::new(),
                            committed: false,
                            app_ready: false,
                            awaiting_account: Vec::new(),
                        },
                    );
                    let construction_done_at = now + outcome.construction.total;
                    let network_ready_at = outcome.network_ready_at();
                    let app_ready_at = outcome.app_ready_at();
                    world.tracer.emit(
                        now,
                        "jitsud",
                        format!(
                            "summoning {} as dom{} ({} queued SYN(s))",
                            name,
                            outcome.dom.0,
                            queued.len()
                        ),
                    );
                    world.services.insert(
                        name.clone(),
                        Lifecycle::Launching {
                            queued,
                            dom: outcome.dom,
                            network_ready_at,
                            app_ready_at,
                        },
                    );
                    // The slot covers dom0's construction work only; the
                    // guest boots on its own vcpu.
                    let built_name = name.clone();
                    sim.schedule_at(construction_done_at, move |sim| {
                        Self::on_construction_done(sim, built_name);
                    });
                    let handoff_name = name.clone();
                    sim.schedule_at(network_ready_at, move |sim| {
                        Self::on_network_ready(sim, handoff_name);
                    });
                    sim.schedule_at(app_ready_at, move |sim| Self::on_app_ready(sim, name));
                }
                Err(err) => {
                    // Reservations should make this unreachable; degrade to
                    // SERVFAIL for every parked client rather than wedging.
                    world.tracer.emit(
                        now,
                        "jitsud",
                        format!("launch of {name} failed ({err:?}); SERVFAIL for queued clients"),
                    );
                    world.metrics.servfails += queued.len() as u64;
                    for client in &queued {
                        world.clients.remove(&client.id);
                    }
                    world.directory.mark_stopped(&name);
                    world.services.insert(name, Lifecycle::Idle);
                    world.slots.release();
                }
            }
        }
    }

    /// The store-side registration a boot performs inside its open
    /// transaction: the service's lifecycle record under `/jitsu/service`.
    fn write_boot_record(
        xs: &mut xenstore::XenStore,
        tx: xenstore::TxId,
        name: &str,
        dom: DomId,
    ) -> Result<(), xenstore::Error> {
        let base = format!("/jitsu/service/{name}");
        xs.write(DomId::DOM0, Some(tx), &format!("{base}/state"), b"booting")?;
        xs.write(
            DomId::DOM0,
            Some(tx),
            &format!("{base}/dom"),
            dom.0.to_string().as_bytes(),
        )?;
        Ok(())
    }

    /// The domain a service currently maps to, whatever lifecycle phase it
    /// is in.
    fn dom_of(&self, name: &str) -> Option<DomId> {
        match self.services.get(name) {
            Some(
                Lifecycle::Launching { dom, .. }
                | Lifecycle::Running { dom, .. }
                | Lifecycle::Draining { dom, .. },
            ) => Some(*dom),
            _ => None,
        }
    }

    /// Event: dom0's construction work for `name` finished. Commit the
    /// boot-registration transaction that has been open since the slot was
    /// granted — on the merge engines a concurrent build's commit merges;
    /// on the serialising engine it aborts with `EAGAIN` and the whole
    /// registration is redone, the "cancel and retry a large set of domain
    /// building RPCs" cost §3.1 describes. Then release the launch slot.
    fn on_construction_done<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let world = sim.world_mut();
        if let Some(tx) = world.boot_txns.remove(&name) {
            let dom = world.dom_of(&name);
            let xs = &mut world.launcher.toolstack.xenstore;
            let state_path = format!("/jitsu/service/{name}/state");
            xs.write(DomId::DOM0, Some(tx), &state_path, b"built")
                // jitsu-lint: allow(P001, "transactional write inside an open boot transaction")
                .expect("transactional write succeeds");
            match xs.transaction_end(DomId::DOM0, tx, true) {
                Ok(()) => {}
                Err(xenstore::Error::Again) => {
                    if let Some(dom) = dom {
                        xs.with_transaction(DomId::DOM0, 8, |xs, t| {
                            Self::write_boot_record(xs, t, &name, dom)?;
                            xs.write(DomId::DOM0, Some(t), &state_path, b"built")
                        })
                        // jitsu-lint: allow(P001, "the retry re-registers on a conflict-free snapshot")
                        .expect("boot-registration retry succeeds");
                    }
                }
                // jitsu-lint: allow(P001, "commit failures other than EAGAIN mean a corrupted store; fail the experiment loudly")
                Err(e) => panic!("boot registration commit failed: {e}"),
            }
        }
        world.slots.release();
        Self::dispatch(sim);
    }

    /// Event: the booting unikernel's network stack attached — phase 1 of
    /// the two-phase commit (§3.3.1). The unikernel writes `Prepare` (so
    /// Synjitsu stops answering and racing frames park in the handoff
    /// area), rendezvouses with Synjitsu over the conduit, and drains every
    /// connection record — `Tcb` plus buffered request bytes, serialised
    /// with `to_sexp` — through a vchan. The commit itself runs one handoff
    /// window later, in [`Self::on_commit_handoff`].
    fn on_network_ready<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        if !world.config.use_synjitsu || !world.synjitsu.is_proxying(&name) {
            return;
        }
        let Some(Lifecycle::Launching { dom, .. }) = world.services.get(&name) else {
            debug_assert!(false, "network-ready without a Launching {name}");
            return;
        };
        let dom = *dom;
        let flushed = world
            .synjitsu
            .prepare_handoff(&mut world.launcher.toolstack.xenstore, &name)
            // jitsu-lint: allow(P001, "prepare flush happens while the synjitsu service still exists")
            .expect("prepare flushes the final records");

        // The unikernel connects to Synjitsu's conduit endpoint and drains
        // the records over a freshly established vchan.
        let records = world.synjitsu.connection_records(&name);
        let conn_name = name.replace('.', "_");
        let (xs, grants, evtchn) = world.launcher.toolstack.conduit_parts();
        ConduitRegistry::connect(xs, dom, "synjitsu", &conn_name)
            // jitsu-lint: allow(P001, "the synjitsu endpoint was registered during engine setup")
            .expect("the synjitsu conduit endpoint is registered");
        let mut accepted = world
            .conduit
            .accept_one(xs, grants, evtchn, "synjitsu", DomId::DOM0, &conn_name)
            // jitsu-lint: allow(P001, "rendezvous follows the accept the unikernel just posted")
            .expect("synjitsu accepts the handoff rendezvous");
        let mut wire = Vec::new();
        for (_, tcb) in &records {
            let sexp = tcb.to_sexp();
            wire.extend_from_slice(&(sexp.len() as u32).to_be_bytes());
            wire.extend_from_slice(sexp.as_bytes());
        }
        let drained_bytes = accepted
            .channel
            .stream(Side::Server, &wire, evtchn)
            // jitsu-lint: allow(P001, "drain loop exits once the vchan reports no more bytes")
            .expect("the vchan drain makes progress");
        accepted.channel.close(Side::Server);
        accepted.channel.teardown(grants, evtchn);
        ConduitRegistry::close(xs, "synjitsu", DomId::DOM0, &conn_name, accepted.flow_id)
            // jitsu-lint: allow(P001, "teardown of conduit metadata this engine created")
            .expect("handoff conduit metadata tears down");
        // Handoff flows are short-lived; prune the closed entries so the
        // flows table stays bounded over a storm's worth of relaunches.
        FlowTable::prune_closed(xs, DomId::DOM0);

        // Reconstruct each TCB on the unikernel side, exactly as written.
        let mut drained = Vec::new();
        let mut cursor = 0usize;
        while cursor + 4 <= drained_bytes.len() {
            let len = u32::from_be_bytes(
                drained_bytes[cursor..cursor + 4]
                    .try_into()
                    // jitsu-lint: allow(P001, "length prefix was written as exactly 4 bytes by the drain protocol")
                    .expect("4 bytes"),
            ) as usize;
            cursor += 4;
            let sexp = std::str::from_utf8(&drained_bytes[cursor..cursor + len])
                // jitsu-lint: allow(P001, "records are emitted by Tcb::to_sexp, which is ASCII")
                .expect("records are valid UTF-8");
            cursor += len;
            // jitsu-lint: allow(P001, "records round-trip through the sexp codec by construction")
            drained.push(Tcb::from_sexp(sexp).expect("records round-trip"));
        }
        let plane = world
            .planes
            .get_mut(&name)
            // jitsu-lint: allow(P001, "a Launching service always owns a data plane")
            .expect("launching services have a data plane");
        plane.drained = drained;
        world.tracer.emit(
            now,
            "synjitsu",
            format!(
                "prepare for {name}: flushed {flushed} record(s), drained {} byte(s) over the conduit vchan",
                drained_bytes.len()
            ),
        );
        let handoff_cost = world.handoff_cost;
        sim.schedule_in(handoff_cost, move |sim| {
            Self::on_commit_handoff(sim, name);
        });
    }

    /// Event: phase 2 of the two-phase commit. The unikernel atomically
    /// flips the phase to `Committed` (clearing the records), adopts every
    /// drained connection — replaying buffered requests straight away — and
    /// replays any frames that were parked during the `Prepare` window.
    /// From this moment Synjitsu never touches the service's traffic again.
    fn on_commit_handoff<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let pending = world
            .synjitsu
            .commit_handoff(&mut world.launcher.toolstack.xenstore, &name)
            // jitsu-lint: allow(P001, "takeover transaction operates on paths this engine owns")
            .expect("the takeover commits");
        let Some(plane) = world.planes.get_mut(&name) else {
            return;
        };
        plane.committed = true;
        let adopted = std::mem::take(&mut plane.drained);
        let migrated = adopted.len() as u64;
        let mut response_frames = Vec::new();
        for tcb in adopted {
            let client_mac = Self::client_id_of_ip(tcb.remote_ip)
                .map(Self::client_mac)
                .unwrap_or(MacAddr::BROADCAST);
            let (frames, _cost) = plane.instance.adopt_handoff(tcb, client_mac);
            response_frames.extend(frames);
        }
        world.metrics.handoff.migrated += migrated;
        world.metrics.syn_handoffs += migrated;
        world.tracer.emit(
            now,
            "synjitsu",
            format!("handed over {migrated} connection(s) for {name}"),
        );

        // Replayed responses go back to the clients that were mid-request.
        for frame in response_frames {
            if let Some(id) = Self::frame_client_dst(&frame) {
                Self::deliver_to_client(world, &name, id, vec![frame]);
            }
        }
        // Frames parked during the Prepare window replay against the
        // unikernel — late SYNs handshake now, late data segments land in
        // their adopted connections.
        let replayed = pending.len() as u64;
        world.metrics.handoff.replayed_after_commit += replayed;
        for frame in pending {
            if let Some(id) = Self::frame_client_src(&frame) {
                Self::pump_via_unikernel(world, &name, id, vec![frame]);
            }
        }
        if replayed > 0 {
            world.tracer.emit(
                now,
                "unikernel",
                format!("replayed {replayed} frame(s) parked during the prepare window"),
            );
        }
        // If the app came up before the commit (short boots), the exchange
        // accounting waited for us.
        let waiting = match world.planes.get_mut(&name) {
            Some(plane) if plane.app_ready => std::mem::take(&mut plane.awaiting_account),
            _ => Vec::new(),
        };
        if !waiting.is_empty() {
            Self::account_exchanges(world, &name, &waiting);
        }
    }

    /// Compare what each parked client's flow actually received against the
    /// exact response the unikernel serves, and fold the result into the
    /// handoff accounting: byte-exact streams count as `completed`, missing
    /// suffixes as dropped bytes, diverging or extra bytes as duplicated.
    fn account_exchanges(world: &mut ConcurrentJitsud, name: &str, clients: &[QueuedClient]) {
        if !world.config.use_synjitsu {
            return;
        }
        let expected = Self::expected_response(name);
        for client in clients {
            let Some(flow) = world.clients.remove(&client.id) else {
                continue;
            };
            let got = flow.response;
            if got == expected {
                world.metrics.handoff.completed += 1;
            } else {
                let common = got
                    .iter()
                    .zip(expected.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                world.metrics.handoff.dropped_bytes += (expected.len() - common) as u64;
                world.metrics.handoff.duplicated_bytes += (got.len() - common) as u64;
            }
        }
    }

    /// Event: the application is up — serve the queued clients, enter
    /// `Running`, and arm the idle reaper.
    fn on_app_ready<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let Some(Lifecycle::Launching {
            queued,
            dom,
            network_ready_at,
            app_ready_at,
        }) = world.services.remove(&name)
        else {
            debug_assert!(false, "app-ready without a Launching {name}");
            return;
        };
        world.directory.mark_ready(&name, now);
        for client in &queued {
            let ttfb = world.cold_ttfb(client.arrived, network_ready_at, app_ready_at);
            world.metrics.ttfb.record(ttfb);
            if world.config.use_synjitsu {
                // Every parked client waited out the handoff window,
                // whether its connection was migrated or opened just after
                // the commit.
                world.metrics.handoff.request_latency.record(ttfb);
            }
        }
        world.metrics.cold_served += queued.len() as u64;
        world.tracer.emit(
            now,
            "unikernel",
            format!(
                "{} ready; replayed {} buffered request(s)",
                name,
                queued.len()
            ),
        );
        // Data plane: settle the zero-drop/zero-dup accounting for every
        // parked client, once the commit has also happened (it almost
        // always has — the handoff window is shorter than the app boot
        // tail; otherwise the commit event settles it).
        let mut account_now = false;
        if let Some(plane) = world.planes.get_mut(&name) {
            plane.app_ready = true;
            if plane.committed {
                account_now = true;
            } else {
                plane.awaiting_account = queued.clone();
            }
        }
        if account_now {
            Self::account_exchanges(world, &name, &queued);
        }
        world.services.insert(
            name.clone(),
            Lifecycle::Running {
                dom,
                last_activity: now,
            },
        );
        Self::schedule_reap_check(sim, name, now);
    }

    /// Time from a client's DNS query to its first response byte, for a
    /// client parked on a boot. Mirrors the linear daemon's timeline
    /// arithmetic (`Jitsud::cold_start_request`).
    fn cold_ttfb(
        &self,
        arrived: SimTime,
        network_ready_at: SimTime,
        app_ready_at: SimTime,
    ) -> SimDuration {
        if self.config.use_synjitsu {
            // Synjitsu completes the handshake immediately; the unikernel
            // replays the buffered request right after adopting it.
            let request_buffered = arrived + self.dns_processing + self.one_way_delay * 4;
            let handoff_done = network_ready_at + self.handoff_cost;
            let first_byte_sent = handoff_done.max(request_buffered) + self.service_cost;
            (first_byte_sent + self.one_way_delay).duration_since(arrived)
        } else {
            // The SYN is lost until the app listens; the client retransmits
            // with exponential backoff (1 s, 2 s, 4 s, …).
            let mut attempt = arrived + self.dns_processing + self.one_way_delay * 2;
            let mut retransmissions = 0u32;
            while attempt < app_ready_at {
                retransmissions += 1;
                let backoff = self.syn_rto * (1u64 << (retransmissions - 1).min(6));
                attempt += backoff;
            }
            let first_byte_sent = attempt + self.one_way_delay * 4 + self.service_cost;
            (first_byte_sent + self.one_way_delay).duration_since(arrived)
        }
    }

    /// Arm an idle check at `activity_at + TTL`. Stale checks (the service
    /// saw traffic in the meantime, or was already reaped) fizzle.
    fn schedule_reap_check<S: Scheduler<World = ConcurrentJitsud>>(
        sim: &mut S,
        name: String,
        activity_at: SimTime,
    ) {
        let Some(ttl) = sim.world().config.idle_timeout else {
            return;
        };
        sim.schedule_at(activity_at + ttl, move |sim| Self::on_reap_check(sim, name));
    }

    /// Event: an idle check fires.
    fn on_reap_check<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let Some(ttl) = world.config.idle_timeout else {
            return;
        };
        let Some(Lifecycle::Running { dom, last_activity }) = world.services.get(&name) else {
            return;
        };
        if now.duration_since(*last_activity) < ttl {
            return; // refreshed since this check was armed; a newer one is pending
        }
        let dom = *dom;
        world.services.insert(
            name.clone(),
            Lifecycle::Draining {
                dom,
                queued: Vec::new(),
            },
        );
        world.directory.mark_stopped(&name);
        world.metrics.reaps += 1;
        world
            .tracer
            .emit(now, "jitsud", format!("reaping idle {name} (dom{})", dom.0));
        let teardown = world.launcher.teardown_time();
        sim.schedule_in(teardown, move |sim| Self::on_drain_done(sim, name));
    }

    /// Event: teardown finished — free the domain and either go idle or
    /// immediately relaunch for clients that arrived mid-drain.
    fn on_drain_done<S: Scheduler<World = ConcurrentJitsud>>(sim: &mut S, name: String) {
        let now = sim.now();
        let world = sim.world_mut();
        let Some(Lifecycle::Draining { dom, queued }) = world.services.remove(&name) else {
            debug_assert!(false, "drain-done without a Draining {name}");
            return;
        };
        world
            .launcher
            .retire(dom)
            // jitsu-lint: allow(P001, "Draining lifecycle holds the domain until retirement")
            .expect("draining domain exists until retired");
        // The unikernel's data plane dies with the domain, and so does its
        // lifecycle record in the store.
        world.planes.remove(&name);
        // jitsu-lint: allow(R001, "lifecycle record removal is best-effort; the path is gone if a racing retire won")
        let _ = world.launcher.toolstack.xenstore.rm(
            DomId::DOM0,
            None,
            &format!("/jitsu/service/{name}"),
        );
        world
            .tracer
            .emit(now, "jitsud", format!("retired idle service {name}"));
        if queued.is_empty() {
            world.services.insert(name, Lifecycle::Idle);
            return;
        }
        // Re-entry: waiters arrived while the old domain drained. Launch
        // again from scratch (the directory already shows it as launching).
        let svc = world
            .config
            .service(&name)
            .cloned()
            // jitsu-lint: allow(P001, "drained service names come from the config map")
            .expect("drained services are configured");
        if world.config.use_synjitsu {
            world
                .synjitsu
                .start_proxying(&mut world.launcher.toolstack.xenstore, &svc)
                // jitsu-lint: allow(P001, "relaunch repeats a proxy setup that already succeeded")
                .expect("synjitsu can begin proxying");
            for client in &queued {
                Self::open_client_flow(world, &svc, *client);
            }
        }
        world.reserved_mib += svc.image.memory_mib;
        world
            .services
            .insert(name.clone(), Lifecycle::AwaitingSlot { queued });
        world.launch_queue.push_back(name);
        Self::dispatch(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    const ALICE: &str = "alice.family.name";
    const BOB: &str = "bob.family.name";

    /// Base test config with idle reaping off, so `sim.run()` leaves
    /// services in `Running` (tests that exercise the reaper opt in via
    /// `with_idle_timeout`).
    fn config() -> JitsuConfig {
        let mut cfg = JitsuConfig::new("family.name")
            .with_service(ServiceConfig::http_site(
                ALICE,
                Ipv4Addr::new(192, 168, 1, 20),
            ))
            .with_service(ServiceConfig::http_site(
                BOB,
                Ipv4Addr::new(192, 168, 1, 21),
            ));
        cfg.idle_timeout = None;
        cfg
    }

    fn sim(config: JitsuConfig) -> StormSim {
        ConcurrentJitsud::sim(config, BoardKind::Cubieboard2.board(), 7)
    }

    #[test]
    fn duplicate_queries_coalesce_onto_the_in_flight_boot() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(10), ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(20), ALICE);
        sim.run_until(SimTime::from_millis(50));
        // Mid-boot: one launch in flight, three SYNs parked on it.
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(sim.world().metrics().coalesced, 2);
        assert_eq!(sim.world().synjitsu().proxied_connection_count(ALICE), 3);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.launches, 1, "duplicates must not double-launch");
        assert_eq!(m.cold_served, 3);
        assert_eq!(m.syn_handoffs, 3, "all parked SYNs handed over");
        assert_eq!(m.ttfb.count(), 3);
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        assert!(sim
            .world()
            .tracer
            .find("coalesced onto in-flight boot")
            .is_some());
    }

    #[test]
    fn overlapping_boots_merge_their_xenstore_transactions_without_aborts() {
        // Two concurrent domain builds interleave their toolstack and
        // handoff transactions against the shared store. With the Jitsu
        // merge engine every commit that lands on a moved base merges —
        // none aborts with EAGAIN, which is what keeps parallel builds off
        // the retry path under storm load.
        let mut sim = sim(config().with_launch_slots(2));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        sim.run();
        let xs = sim.world().xenstore_stats();
        assert_eq!(xs.conflicts, 0, "no storm-time EAGAIN aborts: {xs:?}");
        assert!(xs.commits > 0);
        assert!(
            xs.merged > 0,
            "overlapping boots must exercise the merge path: {xs:?}"
        );
        assert_eq!(sim.world().running_count(), 2);
    }

    #[test]
    fn different_names_boot_concurrently_within_slot_capacity() {
        let mut sim = sim(config().with_launch_slots(2));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(sim.world().phase(BOB), LifecyclePhase::Launching);
        assert_eq!(sim.world().slots().in_use(), 2);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.launches, 2);
        assert_eq!(sim.world().slots().peak(), 2);
        assert_eq!(sim.world().running_count(), 2);
    }

    #[test]
    fn single_slot_serialises_overlapping_launches() {
        let mut sim = sim(config().with_launch_slots(1));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(
            sim.world().phase(BOB),
            LifecyclePhase::AwaitingSlot,
            "second launch queues behind the semaphore"
        );
        sim.run();
        assert_eq!(sim.world().slots().peak(), 1);
        assert_eq!(sim.world().metrics().launches, 2);
        // Bob still boots — later, not never.
        assert_eq!(sim.world().running_count(), 2);
    }

    #[test]
    fn synjitsu_syn_queues_hand_off_per_service_under_overlap() {
        let mut sim = sim(config().with_launch_slots(2));
        // Alice gets three clients, Bob two, interleaved mid-boot.
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(2), BOB);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(5), ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(7), BOB);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(9), ALICE);
        sim.run_until(SimTime::from_millis(40));
        assert_eq!(sim.world().synjitsu().proxied_connection_count(ALICE), 3);
        assert_eq!(sim.world().synjitsu().proxied_connection_count(BOB), 2);
        sim.run();
        let world = sim.world();
        assert_eq!(world.metrics().syn_handoffs, 5);
        assert!(world
            .tracer
            .find(&format!("handed over 3 connection(s) for {ALICE}"))
            .is_some());
        assert!(world
            .tracer
            .find(&format!("handed over 2 connection(s) for {BOB}"))
            .is_some());
        // Handoff strictly precedes the app serving the replayed requests.
        assert!(world
            .tracer
            .happens_before("handed over 3 connection(s)", "alice.family.name ready"));
    }

    #[test]
    fn memory_exhaustion_yields_servfail_and_recovers_after_reaping() {
        // Three fat services on a board that fits only two (832 MiB free).
        let mut cfg = JitsuConfig::new("family.name").with_idle_timeout(SimDuration::from_secs(2));
        for (i, name) in ["a.family.name", "b.family.name", "c.family.name"]
            .iter()
            .enumerate()
        {
            let mut svc = ServiceConfig::http_site(name, Ipv4Addr::new(192, 168, 1, 30 + i as u8));
            svc.image.memory_mib = 400;
            cfg = cfg.with_service(svc);
        }
        let mut sim = sim(cfg);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "a.family.name");
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(5), "b.family.name");
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(10), "c.family.name");
        sim.run_until(SimTime::from_secs(1));
        let m = sim.world().metrics();
        assert_eq!(m.launches, 2);
        assert_eq!(m.servfails, 1, "third service cannot fit");
        assert_eq!(sim.world().phase("c.family.name"), LifecyclePhase::Idle);
        // After the idle TTL the first two are reaped; c can now be summoned
        // (the fail-over story: the client retries and this board has room).
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.world().metrics().reaps, 2);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_secs(11), "c.family.name");
        sim.run_until(SimTime::from_secs(12));
        assert_eq!(sim.world().phase("c.family.name"), LifecyclePhase::Running);
        assert_eq!(sim.world().metrics().launches, 3);
        assert_eq!(sim.world().metrics().servfail_rate(), 1.0 / 4.0);
    }

    #[test]
    fn reap_then_resummon_re_enters_the_lifecycle() {
        let mut sim = sim(config().with_idle_timeout(SimDuration::from_secs(1)));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Idle);
        assert_eq!(sim.world().metrics().reaps, 1);
        assert!(sim.world().tracer.find("reaping idle").is_some());
        // Resummon from scratch.
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_secs(5), ALICE);
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        assert_eq!(sim.world().metrics().launches, 2);
        assert_eq!(sim.world().metrics().cold_served, 2);
        // Left alone, the reaper eventually retires it again.
        sim.run();
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Idle);
        assert_eq!(sim.world().metrics().reaps, 2);
    }

    #[test]
    fn query_during_drain_relaunches_after_teardown() {
        let mut sim = sim(config().with_idle_timeout(SimDuration::from_secs(1)));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        // Step in 5 ms increments until the reaper has moved the service
        // into Draining (the teardown window is ~30 ms on ARM).
        let mut guard = 0;
        while sim.world().phase(ALICE) != LifecyclePhase::Draining {
            sim.run_for(SimDuration::from_millis(5));
            guard += 1;
            assert!(guard < 1_000, "service never entered Draining");
        }
        // A query lands mid-drain: it must wait out the teardown, then boot.
        let mid_drain = sim.now();
        ConcurrentJitsud::inject_query(&mut sim, mid_drain, ALICE);
        sim.run_until(mid_drain + SimDuration::from_millis(600));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        assert_eq!(sim.world().metrics().launches, 2);
        assert_eq!(sim.world().metrics().cold_served, 2);
        assert_eq!(sim.world().metrics().reaps, 1);
    }

    #[test]
    fn memory_reservations_are_returned_on_launch() {
        let mut sim = sim(config().with_launch_slots(1));
        let free_before = sim.world().effective_free_mib();
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1), BOB);
        // Bob awaits a slot: his memory is reserved but not allocated.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.world().effective_free_mib(), free_before - 32);
        sim.run();
        // Both allocated for real now; reservations fully drained.
        assert_eq!(sim.world().effective_free_mib(), free_before - 32);
        assert_eq!(sim.world().reserved_mib, 0);
    }

    #[test]
    fn warm_hits_are_fast_and_refresh_the_idle_clock() {
        let mut sim = sim(config().with_idle_timeout(SimDuration::from_secs(2)));
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Running);
        // A warm query at t=1.5s pushes the reap horizon to 3.5s.
        ConcurrentJitsud::inject_query(&mut sim, SimTime::from_millis(1_500), ALICE);
        sim.run_until(SimTime::from_millis(2_600));
        assert_eq!(
            sim.world().phase(ALICE),
            LifecyclePhase::Running,
            "warm traffic must delay the reaper"
        );
        assert_eq!(sim.world().metrics().warm_hits, 1);
        sim.run();
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Idle);
        let m = sim.world().metrics();
        // Warm TTFB is tens of ms; cold is hundreds.
        assert!(m.ttfb.percentile_ms(0.0) < 50.0);
        assert!(m.ttfb.percentile_ms(100.0) > 250.0);
    }

    #[test]
    fn without_synjitsu_cold_ttfb_exceeds_one_second() {
        let mut sim = sim(config().without_synjitsu());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.cold_served, 1);
        assert_eq!(m.syn_handoffs, 0);
        assert!(
            m.ttfb.percentile_ms(50.0) > 1_000.0,
            "lost SYN costs a retransmission timeout"
        );
    }

    #[test]
    fn unknown_names_are_counted_not_launched() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "carol.family.name");
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, "example.com");
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.unknown, 2);
        assert_eq!(m.launches, 0);
        assert_eq!(m.queries, 2);
    }

    #[test]
    fn mid_request_connection_completes_against_the_unikernel_byte_exact() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        // Mid-boot the client has handshaken with Synjitsu and sent its
        // HTTP request; nothing has answered it yet.
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        assert_eq!(sim.world().synjitsu().proxied_connection_count(ALICE), 1);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.handoff.migrated, 1, "the flow crossed the vchan drain");
        assert_eq!(m.syn_handoffs, 1);
        assert_eq!(
            m.handoff.completed, 1,
            "the unikernel's response reached the client byte-exact"
        );
        assert_eq!(m.handoff.dropped_bytes, 0);
        assert_eq!(m.handoff.duplicated_bytes, 0);
        assert_eq!(m.handoff.request_latency.count(), 1);
        assert!(sim
            .world()
            .tracer
            .find("drained")
            .is_some_and(|line| line.message.contains("over the conduit vchan")));
    }

    #[test]
    fn segments_arriving_during_prepare_are_parked_and_replayed() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run_until(SimTime::from_millis(50));
        let network_ready_at = match sim.world().services.get(ALICE) {
            Some(Lifecycle::Launching {
                network_ready_at, ..
            }) => *network_ready_at,
            other => panic!("expected Launching, got {other:?}"),
        };
        // A second client's query lands exactly at network-ready. Its event
        // is scheduled after the prepare event (same timestamp, later
        // sequence number), so its SYN arrives inside the Prepare window:
        // Synjitsu has stopped answering, the unikernel has not committed.
        ConcurrentJitsud::inject_query(&mut sim, network_ready_at, ALICE);
        sim.run();
        let m = sim.world().metrics();
        assert!(
            m.handoff.queued_during_prepare >= 1,
            "the racing SYN must be parked, not dropped"
        );
        assert_eq!(
            m.handoff.replayed_after_commit, m.handoff.queued_during_prepare,
            "every parked frame is replayed after Committed"
        );
        assert_eq!(m.handoff.migrated, 1, "only the first flow was proxied");
        assert_eq!(m.cold_served, 2);
        assert_eq!(
            m.handoff.completed, 2,
            "both exchanges complete: the migrated one and the replayed one"
        );
        assert_eq!(m.handoff.dropped_bytes, 0);
        assert_eq!(m.handoff.duplicated_bytes, 0);
        assert!(sim
            .world()
            .tracer
            .find("parked during the prepare window")
            .is_some());
    }

    #[test]
    fn clients_arriving_after_commit_connect_directly_to_the_unikernel() {
        let mut sim = sim(config());
        ConcurrentJitsud::inject_query(&mut sim, SimTime::ZERO, ALICE);
        sim.run_until(SimTime::from_millis(50));
        let network_ready_at = match sim.world().services.get(ALICE) {
            Some(Lifecycle::Launching {
                network_ready_at, ..
            }) => *network_ready_at,
            other => panic!("expected Launching, got {other:?}"),
        };
        // Run past the commit (one handoff window after network-ready) but
        // not to app-ready, then land a new client.
        let after_commit =
            network_ready_at + sim.world().handoff_cost + SimDuration::from_micros(1);
        sim.run_until(after_commit);
        assert_eq!(sim.world().phase(ALICE), LifecyclePhase::Launching);
        ConcurrentJitsud::inject_query(&mut sim, after_commit, ALICE);
        sim.run();
        let m = sim.world().metrics();
        assert_eq!(m.handoff.migrated, 1);
        assert_eq!(m.handoff.queued_during_prepare, 0);
        assert_eq!(m.cold_served, 2);
        assert_eq!(
            m.handoff.completed, 2,
            "late client served by the unikernel"
        );
        assert_eq!(m.handoff.dropped_bytes, 0);
        assert_eq!(m.handoff.duplicated_bytes, 0);
    }

    #[test]
    fn same_seed_same_storm() {
        let run = || {
            let mut s = sim(config().with_idle_timeout(SimDuration::from_secs(1)));
            for i in 0..20u64 {
                let name = if i % 2 == 0 { ALICE } else { BOB };
                ConcurrentJitsud::inject_query(&mut s, SimTime::from_millis(i * 137), name);
            }
            s.run();
            let m = s.world().metrics();
            (
                m.queries,
                m.launches,
                m.coalesced,
                m.warm_hits,
                m.ttfb.p50_ms().to_bits(),
                m.ttfb.p99_ms().to_bits(),
                s.events_executed(),
            )
        };
        assert_eq!(run(), run());
    }
}
