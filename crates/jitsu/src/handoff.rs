//! The Synjitsu → unikernel connection handoff over XenStore.
//!
//! Figure 7 shows the proxy registering embryonic TCP connections under the
//! booting unikernel's conduit subtree (`state`, `tcb`, `packets`), and
//! §3.3.1 describes the final step: "When the unikernel finishes booting and
//! has an active network interface, it signals to synjitsu that it is ready
//! for traffic via a two-phase commit in XenStore, ensuring only one of them
//! ever handles any given packet."
//!
//! The coordinator below implements that protocol:
//!
//! 1. while the phase is [`HandoffPhase::Proxying`], only Synjitsu answers
//!    packets and it keeps the per-connection records up to date;
//! 2. the booted unikernel writes [`HandoffPhase::Prepare`] — Synjitsu stops
//!    answering, flushes its final state and acknowledges;
//! 3. the unikernel reads the records, reconstructs the connections and
//!    writes [`HandoffPhase::Committed`] — from then on only the unikernel
//!    answers, and the records are removed.

use netstack::tcp::tcb::{hex_decode, hex_encode};
use netstack::tcp::Tcb;
use netstack::FrameBuf;
use xenstore::{DomId, Result as XsResult, XenStore};

/// The phase of the handoff for one service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffPhase {
    /// Synjitsu owns the traffic (unikernel still booting).
    Proxying,
    /// The unikernel has asked to take over; Synjitsu is flushing state.
    Prepare,
    /// The unikernel owns the traffic.
    Committed,
}

impl HandoffPhase {
    fn token(self) -> &'static str {
        match self {
            HandoffPhase::Proxying => "proxying",
            HandoffPhase::Prepare => "prepare",
            HandoffPhase::Committed => "committed",
        }
    }

    fn from_token(s: &str) -> Option<HandoffPhase> {
        Some(match s {
            "proxying" => HandoffPhase::Proxying,
            "prepare" => HandoffPhase::Prepare,
            "committed" => HandoffPhase::Committed,
            _ => return None,
        })
    }
}

/// Coordinates the handoff records for services on one host.
#[derive(Debug, Default)]
pub struct HandoffCoordinator;

impl HandoffCoordinator {
    /// Create a coordinator.
    pub fn new() -> HandoffCoordinator {
        HandoffCoordinator
    }

    fn service_key(name: &str) -> String {
        name.replace('.', "_")
    }

    fn base(name: &str) -> String {
        format!("/conduit/{}/tcpv4", Self::service_key(name))
    }

    fn phase_path(name: &str) -> String {
        format!("/conduit/{}/synjitsu-phase", Self::service_key(name))
    }

    fn pending_path(name: &str) -> String {
        format!("/conduit/{}/pending", Self::service_key(name))
    }

    /// Initialise the handoff area for a service that is being summoned.
    pub fn begin_proxying(&self, xs: &mut XenStore, name: &str) -> XsResult<()> {
        xs.mkdir(DomId::DOM0, None, &Self::base(name))?;
        xs.write(
            DomId::DOM0,
            None,
            &Self::phase_path(name),
            HandoffPhase::Proxying.token().as_bytes(),
        )
    }

    /// The current phase (defaults to `Committed` when no handoff area
    /// exists — i.e. the unikernel is simply running normally).
    pub fn phase(&self, xs: &mut XenStore, name: &str) -> HandoffPhase {
        match xs.read_string(DomId::DOM0, None, &Self::phase_path(name)) {
            Ok(s) => HandoffPhase::from_token(s.trim()).unwrap_or(HandoffPhase::Committed),
            Err(_) => HandoffPhase::Committed,
        }
    }

    /// True if Synjitsu should answer packets for this service right now.
    pub fn proxy_should_handle(&self, xs: &mut XenStore, name: &str) -> bool {
        self.phase(xs, name) == HandoffPhase::Proxying
    }

    /// True if the unikernel should answer packets for this service.
    pub fn unikernel_should_handle(&self, xs: &mut XenStore, name: &str) -> bool {
        self.phase(xs, name) == HandoffPhase::Committed
    }

    /// Record (or update) one embryonic connection, Figure 7 style: a
    /// numbered entry with `state`, `tcb` and `packets` keys.
    pub fn record_connection(
        &self,
        xs: &mut XenStore,
        name: &str,
        index: u32,
        tcb: &Tcb,
    ) -> XsResult<()> {
        let dir = format!("{}/{}", Self::base(name), index);
        xs.write(
            DomId::DOM0,
            None,
            &format!("{dir}/state"),
            tcb.state.as_token().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{dir}/tcb"),
            tcb.to_sexp().as_bytes(),
        )?;
        let packets = if tcb.buffered.is_empty() {
            "()".to_string()
        } else {
            format!("((data {} bytes))", tcb.buffered.len())
        };
        xs.write(
            DomId::DOM0,
            None,
            &format!("{dir}/packets"),
            packets.as_bytes(),
        )
    }

    /// Number of connections currently recorded for a service.
    pub fn recorded_connections(&self, xs: &mut XenStore, name: &str) -> usize {
        xs.directory(DomId::DOM0, None, &Self::base(name))
            .map(|entries| entries.len())
            .unwrap_or(0)
    }

    /// Queue a raw Ethernet frame that arrived while the phase is
    /// [`HandoffPhase::Prepare`]. Neither side may answer it — Synjitsu has
    /// stopped, the unikernel has not committed — so it is parked in the
    /// handoff area and replayed by the unikernel after `Committed`. This is
    /// what makes "only one of them ever handles any given packet" hold
    /// *across* the phase flip, not just within each phase.
    pub fn queue_pending_frame(
        &self,
        xs: &mut XenStore,
        name: &str,
        frame: &[u8],
    ) -> XsResult<u32> {
        let base = Self::pending_path(name);
        let index = xs
            .directory(DomId::DOM0, None, &base)
            .map(|entries| entries.len() as u32)
            .unwrap_or(0);
        // Zero-padded so the directory's lexical order is arrival order.
        xs.write(
            DomId::DOM0,
            None,
            &format!("{base}/{index:06}"),
            hex_encode(frame).as_bytes(),
        )?;
        Ok(index)
    }

    /// Number of frames currently parked for replay.
    pub fn pending_frames(&self, xs: &mut XenStore, name: &str) -> usize {
        xs.directory(DomId::DOM0, None, &Self::pending_path(name))
            .map(|entries| entries.len())
            .unwrap_or(0)
    }

    /// Remove and return every parked frame, in arrival order. Called by the
    /// unikernel right after it commits the takeover. Each frame is decoded
    /// into a fresh shared buffer, replayed downstream without further
    /// copies.
    pub fn drain_pending_frames(&self, xs: &mut XenStore, name: &str) -> XsResult<Vec<FrameBuf>> {
        let base = Self::pending_path(name);
        let mut entries = xs.directory(DomId::DOM0, None, &base).unwrap_or_default();
        entries.sort();
        let mut frames = Vec::new();
        for entry in entries {
            if let Ok(hex) = xs.read_string(DomId::DOM0, None, &format!("{base}/{entry}")) {
                if let Some(frame) = hex_decode(hex.trim()) {
                    frames.push(FrameBuf::from_vec(frame));
                }
            }
        }
        // jitsu-lint: allow(R001, "the pending directory may be absent when no frames were parked; rm is best-effort")
        let _ = xs.rm(DomId::DOM0, None, &base);
        Ok(frames)
    }

    /// Step 1 of the takeover, performed by the unikernel once its network
    /// stack is attached.
    pub fn request_takeover(&self, xs: &mut XenStore, name: &str) -> XsResult<()> {
        xs.write(
            DomId::DOM0,
            None,
            &Self::phase_path(name),
            HandoffPhase::Prepare.token().as_bytes(),
        )
    }

    /// Commit the takeover without reading the records back: atomically
    /// flip the phase to `Committed` and clear the record directory in one
    /// transaction. This is the path for a unikernel that already drained
    /// the records over the conduit vchan and has no use for the store
    /// copies — [`Self::commit_takeover`] additionally parses and returns
    /// them for callers that adopt straight from the store.
    pub fn commit_phase_only(&self, xs: &mut XenStore, name: &str) -> XsResult<()> {
        let base = Self::base(name);
        let phase_path = Self::phase_path(name);
        xs.with_transaction(DomId::DOM0, 8, |xs, t| {
            xs.write(
                DomId::DOM0,
                Some(t),
                &phase_path,
                HandoffPhase::Committed.token().as_bytes(),
            )?;
            if xs.exists(DomId::DOM0, Some(t), &base).unwrap_or(false) {
                xs.rm(DomId::DOM0, Some(t), &base)?;
            }
            Ok(())
        })?;
        Ok(())
    }

    /// Step 2, performed by the unikernel after Synjitsu has acknowledged
    /// the prepare (flushed its final records): read every recorded TCB,
    /// commit the phase and clear the records — in one XenStore transaction,
    /// so no observer (and no racing packet) can ever see the phase flipped
    /// while records still exist, or records gone while the phase still says
    /// `prepare`. Returns the TCBs to adopt.
    pub fn commit_takeover(&self, xs: &mut XenStore, name: &str) -> XsResult<Vec<Tcb>> {
        let base = Self::base(name);
        let phase_path = Self::phase_path(name);
        let mut tcbs = Vec::new();
        xs.with_transaction(DomId::DOM0, 8, |xs, t| {
            tcbs.clear();
            for entry in xs
                .directory(DomId::DOM0, Some(t), &base)
                .unwrap_or_default()
            {
                if let Ok(sexp) =
                    xs.read_string(DomId::DOM0, Some(t), &format!("{base}/{entry}/tcb"))
                {
                    if let Some(tcb) = Tcb::from_sexp(&sexp) {
                        tcbs.push(tcb);
                    }
                }
            }
            xs.write(
                DomId::DOM0,
                Some(t),
                &phase_path,
                HandoffPhase::Committed.token().as_bytes(),
            )?;
            // Clear the handoff records now ownership has transferred.
            if xs.exists(DomId::DOM0, Some(t), &base).unwrap_or(false) {
                xs.rm(DomId::DOM0, Some(t), &base)?;
            }
            Ok(())
        })?;
        Ok(tcbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::ipv4::Ipv4Addr;
    use netstack::tcp::TcpState;
    use xenstore::EngineKind;

    fn tcb(port: u16, buffered: &[u8]) -> Tcb {
        Tcb {
            state: TcpState::Established,
            local_ip: Ipv4Addr::new(192, 168, 1, 20),
            local_port: 80,
            remote_ip: Ipv4Addr::new(192, 168, 1, 100),
            remote_port: port,
            isn: 1000,
            snd_nxt: 1001,
            snd_una: 1001,
            rcv_nxt: 5000,
            buffered: buffered.to_vec(),
        }
    }

    #[test]
    fn phase_progression_guarantees_single_handler() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let h = HandoffCoordinator::new();
        h.begin_proxying(&mut xs, "alice.family.name").unwrap();
        assert_eq!(
            h.phase(&mut xs, "alice.family.name"),
            HandoffPhase::Proxying
        );
        assert!(h.proxy_should_handle(&mut xs, "alice.family.name"));
        assert!(!h.unikernel_should_handle(&mut xs, "alice.family.name"));

        h.request_takeover(&mut xs, "alice.family.name").unwrap();
        assert_eq!(h.phase(&mut xs, "alice.family.name"), HandoffPhase::Prepare);
        // During prepare, *neither* side answers new packets.
        assert!(!h.proxy_should_handle(&mut xs, "alice.family.name"));
        assert!(!h.unikernel_should_handle(&mut xs, "alice.family.name"));

        h.commit_takeover(&mut xs, "alice.family.name").unwrap();
        assert!(h.unikernel_should_handle(&mut xs, "alice.family.name"));
        assert!(!h.proxy_should_handle(&mut xs, "alice.family.name"));
    }

    #[test]
    fn records_round_trip_through_the_store() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let h = HandoffCoordinator::new();
        h.begin_proxying(&mut xs, "alice.family.name").unwrap();
        let t1 = tcb(51000, b"GET / HTTP/1.1\r\n\r\n");
        let mut t2 = tcb(51001, b"");
        t2.state = TcpState::SynReceived;
        h.record_connection(&mut xs, "alice.family.name", 1, &t1)
            .unwrap();
        h.record_connection(&mut xs, "alice.family.name", 2, &t2)
            .unwrap();
        assert_eq!(h.recorded_connections(&mut xs, "alice.family.name"), 2);

        // The store holds Figure 7's structure.
        let state = xs
            .read_string(
                DomId::DOM0,
                None,
                "/conduit/alice_family_name/tcpv4/1/state",
            )
            .unwrap();
        assert_eq!(state, "ESTABLISHED");
        let packets = xs
            .read_string(
                DomId::DOM0,
                None,
                "/conduit/alice_family_name/tcpv4/1/packets",
            )
            .unwrap();
        assert!(packets.contains("18 bytes"));

        h.request_takeover(&mut xs, "alice.family.name").unwrap();
        let adopted = h.commit_takeover(&mut xs, "alice.family.name").unwrap();
        assert_eq!(adopted.len(), 2);
        assert!(adopted.contains(&t1));
        assert!(adopted.contains(&t2));
        // Records are gone afterwards.
        assert_eq!(h.recorded_connections(&mut xs, "alice.family.name"), 0);
    }

    #[test]
    fn updating_a_record_overwrites_it() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let h = HandoffCoordinator::new();
        h.begin_proxying(&mut xs, "q").unwrap();
        let mut t = tcb(51000, b"");
        t.state = TcpState::SynReceived;
        h.record_connection(&mut xs, "q", 1, &t).unwrap();
        t.state = TcpState::Established;
        t.buffered = b"data".to_vec();
        h.record_connection(&mut xs, "q", 1, &t).unwrap();
        assert_eq!(h.recorded_connections(&mut xs, "q"), 1);
        h.request_takeover(&mut xs, "q").unwrap();
        let adopted = h.commit_takeover(&mut xs, "q").unwrap();
        assert_eq!(adopted[0].state, TcpState::Established);
        assert_eq!(adopted[0].buffered, b"data");
    }

    #[test]
    fn frames_parked_during_prepare_replay_in_arrival_order() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let h = HandoffCoordinator::new();
        h.begin_proxying(&mut xs, "alice.family.name").unwrap();
        h.request_takeover(&mut xs, "alice.family.name").unwrap();
        // The race window: frames arrive while neither side may answer.
        for i in 0..12u8 {
            h.queue_pending_frame(&mut xs, "alice.family.name", &[0xEE, i, i, i])
                .unwrap();
        }
        assert_eq!(h.pending_frames(&mut xs, "alice.family.name"), 12);
        h.commit_takeover(&mut xs, "alice.family.name").unwrap();
        let frames = h
            .drain_pending_frames(&mut xs, "alice.family.name")
            .unwrap();
        assert_eq!(frames.len(), 12);
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame, &vec![0xEE, i as u8, i as u8, i as u8], "order kept");
        }
        // Drained means gone: a second drain yields nothing.
        assert_eq!(h.pending_frames(&mut xs, "alice.family.name"), 0);
        assert!(h
            .drain_pending_frames(&mut xs, "alice.family.name")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn commit_is_atomic_phase_flip_and_record_clear() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let h = HandoffCoordinator::new();
        h.begin_proxying(&mut xs, "q").unwrap();
        h.record_connection(&mut xs, "q", 1, &tcb(51000, b"GET /"))
            .unwrap();
        h.request_takeover(&mut xs, "q").unwrap();
        let adopted = h.commit_takeover(&mut xs, "q").unwrap();
        assert_eq!(adopted.len(), 1);
        // Post-commit the store can never show the intermediate state:
        // phase committed *and* records cleared, together.
        assert_eq!(h.phase(&mut xs, "q"), HandoffPhase::Committed);
        assert_eq!(h.recorded_connections(&mut xs, "q"), 0);
    }

    #[test]
    fn services_without_handoff_area_default_to_unikernel_handling() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let h = HandoffCoordinator::new();
        assert_eq!(h.phase(&mut xs, "never.summoned"), HandoffPhase::Committed);
        assert!(h.unikernel_should_handle(&mut xs, "never.summoned"));
        assert_eq!(h.recorded_connections(&mut xs, "never.summoned"), 0);
        // Committing with no records yields an empty set, not an error.
        assert!(h
            .commit_takeover(&mut xs, "never.summoned")
            .unwrap()
            .is_empty());
    }
}
