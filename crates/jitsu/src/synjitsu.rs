//! Synjitsu: the connection proxy that masks boot latency.
//!
//! "synjitsu, built using the same OCaml TCP stack as the booting unikernel,
//! removes this race entirely by listening on the external network bridge
//! and an internal conduit for TCP packets destined for a unikernel that is
//! still booting. When it receives a SYN, it writes entries into a special
//! area in the conduit XenStore tree for the booting unikernel" (§3.3.1).
//!
//! The Rust Synjitsu does the same: it reuses [`netstack::Interface`] (the
//! same stack the unikernels use) configured with the *booting service's*
//! IP and MAC, accepts handshakes, buffers request bytes, and mirrors every
//! connection's [`Tcb`] into the XenStore handoff area via
//! [`HandoffCoordinator`]. When the unikernel's network stack comes up, the
//! accumulated connections are handed over and Synjitsu stops touching that
//! service's traffic.

use crate::config::ServiceConfig;
use crate::handoff::{HandoffCoordinator, HandoffPhase};
use netstack::iface::{IfaceEvent, Interface};
use netstack::ipv4::Ipv4Addr;
use netstack::tcp::Tcb;
use netstack::FrameBuf;
use std::collections::BTreeMap;
use xenstore::{Result as XsResult, XenStore};

/// Per-service proxy state.
#[derive(Debug)]
struct ProxiedService {
    iface: Interface,
    /// Buffered request bytes per connection, keyed by (client ip, port).
    buffers: BTreeMap<(Ipv4Addr, u16), Vec<u8>>,
    /// Stable record index per connection for the XenStore entries.
    record_ids: BTreeMap<(Ipv4Addr, u16), u32>,
    next_record: u32,
    port: u16,
}

/// The Synjitsu proxy.
#[derive(Debug, Default)]
pub struct Synjitsu {
    services: BTreeMap<String, ProxiedService>,
    handoff: HandoffCoordinator,
    syns_intercepted: u64,
}

impl Synjitsu {
    /// Create the proxy.
    pub fn new() -> Synjitsu {
        Synjitsu::default()
    }

    /// Number of SYNs intercepted on behalf of booting unikernels.
    pub fn syns_intercepted(&self) -> u64 {
        self.syns_intercepted
    }

    /// Number of services currently being proxied.
    pub fn proxied_services(&self) -> usize {
        self.services.len()
    }

    /// Number of live connections currently proxied for one service (the
    /// length of its SYN queue while its unikernel boots).
    pub fn proxied_connection_count(&self, name: &str) -> usize {
        self.services
            .get(name)
            .map(|svc| svc.iface.connection_count())
            .unwrap_or(0)
    }

    /// Begin proxying for a service that has just been summoned: Synjitsu
    /// impersonates the service's IP/MAC on the bridge until handoff.
    pub fn start_proxying(&mut self, xs: &mut XenStore, service: &ServiceConfig) -> XsResult<()> {
        self.handoff.begin_proxying(xs, &service.name)?;
        let mut iface = Interface::new(service.mac(), service.ip);
        iface.listen_tcp(service.port);
        self.services.insert(
            service.name.clone(),
            ProxiedService {
                iface,
                buffers: BTreeMap::new(),
                record_ids: BTreeMap::new(),
                next_record: 1,
                port: service.port,
            },
        );
        Ok(())
    }

    /// True if Synjitsu is currently proxying the named service.
    pub fn is_proxying(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    fn record_id(svc: &mut ProxiedService, key: (Ipv4Addr, u16)) -> u32 {
        if let Some(id) = svc.record_ids.get(&key) {
            *id
        } else {
            let id = svc.next_record;
            svc.next_record += 1;
            svc.record_ids.insert(key, id);
            id
        }
    }

    /// Feed a frame captured from the bridge for the named (still-booting)
    /// service. Returns the frames Synjitsu wants to transmit (ARP replies,
    /// SYN-ACKs, ACKs). All connection state changes are mirrored into the
    /// XenStore handoff area.
    pub fn handle_frame(
        &mut self,
        xs: &mut XenStore,
        name: &str,
        frame: &FrameBuf,
    ) -> XsResult<Vec<FrameBuf>> {
        // Only answer while the handoff protocol says the proxy owns
        // traffic. During the `Prepare` window neither side may answer, so
        // the frame is parked in the handoff area for the unikernel to
        // replay after `Committed` — dropping it here would break the
        // "only one of them ever handles any given packet" guarantee by
        // turning the phase flip into silent loss.
        match self.handoff.phase(xs, name) {
            HandoffPhase::Prepare if self.services.contains_key(name) => {
                self.handoff.queue_pending_frame(xs, name, frame)?;
                return Ok(Vec::new());
            }
            HandoffPhase::Proxying => {}
            _ => return Ok(Vec::new()),
        }
        let Some(svc) = self.services.get_mut(name) else {
            return Ok(Vec::new());
        };
        let before = svc.iface.connection_count();
        let (out, events) = svc.iface.handle_frame(frame);
        if svc.iface.connection_count() > before {
            self.syns_intercepted += (svc.iface.connection_count() - before) as u64;
        }
        // Accumulate any request bytes (the interface surfaces them as
        // events; Synjitsu never answers them — it only buffers).
        for ev in events {
            if let IfaceEvent::TcpData { remote, data, .. } = ev {
                svc.buffers
                    .entry(remote)
                    .or_default()
                    .extend_from_slice(&data);
            }
        }
        // Mirror every live connection's TCB (with buffered bytes) into the
        // store, Figure 7 style.
        // jitsu-lint: allow(P001, "presence checked by the caller's lookup above")
        let to_record = Self::collect_records(self.services.get_mut(name).expect("present above"));
        for (id, tcb) in &to_record {
            self.handoff.record_connection(xs, name, *id, tcb)?;
        }
        Ok(out)
    }

    /// Build the current set of `(record id, TCB)` pairs for a service,
    /// covering every live proxied connection (including data-less embryonic
    /// ones) with any buffered request bytes attached.
    fn collect_records(svc: &mut ProxiedService) -> Vec<(u32, Tcb)> {
        let mut out = Vec::new();
        for (rip, rport, lport) in svc.iface.connection_keys() {
            if lport != svc.port {
                continue;
            }
            let remote = (rip, rport);
            // `tcb_snapshot` (not a raw `tcb` clone) so any segment bytes
            // still staged as shared views inside the connection are
            // flattened into `buffered` before serialisation.
            let tcb = match svc.iface.connection(remote, lport) {
                Some(conn) => conn.tcb_snapshot(),
                None => continue,
            };
            let id = Self::record_id(svc, remote);
            let mut tcb = tcb;
            tcb.buffered = svc.buffers.get(&remote).cloned().unwrap_or_default();
            out.push((id, tcb));
        }
        out
    }

    /// Re-snapshot every proxied connection for a service into XenStore.
    /// [`Synjitsu::handle_frame`] already does this after each frame; this
    /// is exposed for callers that mutate timing-related state out of band.
    pub fn snapshot_connections(&mut self, xs: &mut XenStore, name: &str) -> XsResult<usize> {
        let Some(svc) = self.services.get_mut(name) else {
            return Ok(0);
        };
        let to_record = Self::collect_records(svc);
        for (id, tcb) in &to_record {
            self.handoff.record_connection(xs, name, *id, tcb)?;
        }
        Ok(to_record.len())
    }

    /// The current `(record id, TCB)` snapshot for a service, with buffered
    /// request bytes attached — what the proxy serialises over the conduit
    /// vchan during the handoff drain.
    pub fn connection_records(&mut self, name: &str) -> Vec<(u32, Tcb)> {
        match self.services.get_mut(name) {
            Some(svc) => Self::collect_records(svc),
            None => Vec::new(),
        }
    }

    /// Phase 1 of the two-phase commit, entered when the booting unikernel's
    /// network stack attaches: the unikernel writes `Prepare` (so Synjitsu
    /// stops answering and every in-flight frame parks in the pending
    /// queue), and Synjitsu flushes the final state of every proxied
    /// connection into the store. Returns the number of flushed records.
    pub fn prepare_handoff(&mut self, xs: &mut XenStore, name: &str) -> XsResult<usize> {
        self.handoff.request_takeover(xs, name)?;
        self.snapshot_connections(xs, name)
    }

    /// Phase 2: the unikernel — which already drained every record over
    /// the conduit vchan — commits the takeover atomically (phase flip +
    /// record clear in one transaction, no redundant re-parse of the store
    /// copies) and collects any frames that arrived during the `Prepare`
    /// window for replay. Synjitsu forgets the service — from this point
    /// only the unikernel touches its traffic.
    pub fn commit_handoff(&mut self, xs: &mut XenStore, name: &str) -> XsResult<Vec<FrameBuf>> {
        self.handoff.commit_phase_only(xs, name)?;
        let pending = self.handoff.drain_pending_frames(xs, name)?;
        self.services.remove(name);
        Ok(pending)
    }

    /// Perform the whole handoff in one step (the linear daemon's path,
    /// where no virtual time passes between the phases): prepare, then
    /// commit, returning the TCBs (with buffered request bytes) the
    /// unikernel must adopt — read back from the store, Figure 7 style.
    pub fn handoff(&mut self, xs: &mut XenStore, name: &str) -> XsResult<Vec<Tcb>> {
        self.prepare_handoff(xs, name)?;
        let tcbs = self.handoff.commit_takeover(xs, name)?;
        let _pending = self.handoff.drain_pending_frames(xs, name)?;
        self.services.remove(name);
        Ok(tcbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netstack::ethernet::MacAddr;
    use netstack::http::HttpRequest;
    use netstack::tcp::TcpState;
    use xenstore::EngineKind;

    const CLIENT_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 0x64]);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);

    fn service() -> ServiceConfig {
        ServiceConfig::http_site("alice.family.name", Ipv4Addr::new(192, 168, 1, 20))
    }

    fn client() -> Interface {
        let mut c = Interface::new(CLIENT_MAC, CLIENT_IP);
        c.add_arp_entry(service().ip, service().mac());
        c
    }

    /// Pump frames between the client and Synjitsu until quiescent.
    fn pump(
        xs: &mut XenStore,
        syn: &mut Synjitsu,
        client: &mut Interface,
        name: &str,
        first: FrameBuf,
    ) {
        let mut to_proxy = vec![first];
        for _ in 0..16 {
            if to_proxy.is_empty() {
                break;
            }
            let mut to_client = Vec::new();
            for f in to_proxy.drain(..) {
                to_client.extend(syn.handle_frame(xs, name, &f).unwrap());
            }
            syn.snapshot_connections(xs, name).unwrap();
            for f in to_client {
                let (out, _) = client.handle_frame(&f);
                to_proxy.extend(out);
            }
        }
    }

    #[test]
    fn syn_is_answered_and_recorded_while_booting() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let svc = service();
        synjitsu.start_proxying(&mut xs, &svc).unwrap();
        assert!(synjitsu.is_proxying(&svc.name));

        let mut c = client();
        let syn_frame = c.tcp_connect(svc.ip, svc.port);
        pump(&mut xs, &mut synjitsu, &mut c, &svc.name, syn_frame);

        // The client's handshake completed against the proxy.
        assert_eq!(c.connection_count(), 1);
        assert!(c
            .connection((svc.ip, svc.port), 49152)
            .map(|conn| conn.is_established())
            .unwrap_or(false));
        assert_eq!(synjitsu.syns_intercepted(), 1);
        // And the embryonic connection is visible in the store.
        let h = HandoffCoordinator::new();
        assert_eq!(h.recorded_connections(&mut xs, &svc.name), 1);
    }

    #[test]
    fn buffered_request_is_handed_over_in_the_tcb() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let svc = service();
        synjitsu.start_proxying(&mut xs, &svc).unwrap();

        let mut c = client();
        let syn_frame = c.tcp_connect(svc.ip, svc.port);
        pump(&mut xs, &mut synjitsu, &mut c, &svc.name, syn_frame);
        let request = HttpRequest::get("/", "alice.family.name").emit();
        let data_frame = c.tcp_send((svc.ip, svc.port), 49152, &request).unwrap();
        pump(&mut xs, &mut synjitsu, &mut c, &svc.name, data_frame);

        let tcbs = synjitsu.handoff(&mut xs, &svc.name).unwrap();
        assert_eq!(tcbs.len(), 1);
        assert_eq!(tcbs[0].state, TcpState::Established);
        assert_eq!(tcbs[0].buffered, request);
        assert_eq!(tcbs[0].local_port, 80);
        assert_eq!(tcbs[0].remote_ip, CLIENT_IP);
        // The proxy has withdrawn.
        assert!(!synjitsu.is_proxying(&svc.name));
        assert!(HandoffCoordinator::new().unikernel_should_handle(&mut xs, &svc.name));
    }

    #[test]
    fn proxy_ignores_traffic_after_handoff() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let svc = service();
        synjitsu.start_proxying(&mut xs, &svc).unwrap();
        synjitsu.handoff(&mut xs, &svc.name).unwrap();

        let mut c = client();
        let syn_frame = c.tcp_connect(svc.ip, svc.port);
        let out = synjitsu
            .handle_frame(&mut xs, &svc.name, &syn_frame)
            .unwrap();
        assert!(
            out.is_empty(),
            "only one of proxy/unikernel may answer a packet"
        );
    }

    #[test]
    fn frames_during_prepare_are_queued_not_answered_or_dropped() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let svc = service();
        synjitsu.start_proxying(&mut xs, &svc).unwrap();
        // Phase 1: the unikernel asks to take over.
        synjitsu.prepare_handoff(&mut xs, &svc.name).unwrap();

        // A SYN races the phase flip: Synjitsu must stay silent…
        let mut c = client();
        let racing_syn = c.tcp_connect(svc.ip, svc.port);
        let out = synjitsu
            .handle_frame(&mut xs, &svc.name, &racing_syn)
            .unwrap();
        assert!(out.is_empty(), "neither side answers during prepare");

        // …and the frame must come back out of the commit, byte-identical,
        // for the unikernel to replay.
        let pending = synjitsu.commit_handoff(&mut xs, &svc.name).unwrap();
        assert_eq!(pending, vec![racing_syn]);
        assert!(!synjitsu.is_proxying(&svc.name));
        assert!(HandoffCoordinator::new().unikernel_should_handle(&mut xs, &svc.name));
    }

    #[test]
    fn split_phase_handoff_matches_the_one_shot_path() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let svc = service();
        synjitsu.start_proxying(&mut xs, &svc).unwrap();
        let mut c = client();
        let syn_frame = c.tcp_connect(svc.ip, svc.port);
        pump(&mut xs, &mut synjitsu, &mut c, &svc.name, syn_frame);
        let req = c
            .tcp_send((svc.ip, svc.port), 49152, b"GET / HTTP/1.1\r\n\r\n")
            .unwrap();
        pump(&mut xs, &mut synjitsu, &mut c, &svc.name, req);

        let flushed = synjitsu.prepare_handoff(&mut xs, &svc.name).unwrap();
        assert_eq!(flushed, 1);
        // The records a vchan drain would carry match the one-shot path.
        let records = synjitsu.connection_records(&svc.name);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1.state, TcpState::Established);
        assert_eq!(records[0].1.buffered, b"GET / HTTP/1.1\r\n\r\n");
        let pending = synjitsu.commit_handoff(&mut xs, &svc.name).unwrap();
        assert!(pending.is_empty());
        assert!(!synjitsu.is_proxying(&svc.name));
        let h = HandoffCoordinator::new();
        assert!(h.unikernel_should_handle(&mut xs, &svc.name));
        assert_eq!(h.recorded_connections(&mut xs, &svc.name), 0);
    }

    #[test]
    fn frames_for_unknown_services_are_ignored() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let mut c = client();
        let syn_frame = c.tcp_connect(service().ip, 80);
        let out = synjitsu
            .handle_frame(&mut xs, "nobody.family.name", &syn_frame)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(synjitsu.proxied_services(), 0);
    }

    #[test]
    fn multiple_clients_are_all_recorded() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut synjitsu = Synjitsu::new();
        let svc = service();
        synjitsu.start_proxying(&mut xs, &svc).unwrap();

        let mut c1 = client();
        let mut c2 = Interface::new(
            MacAddr([2, 0, 0, 0, 0, 0x65]),
            Ipv4Addr::new(192, 168, 1, 101),
        );
        c2.add_arp_entry(svc.ip, svc.mac());
        let f1 = c1.tcp_connect(svc.ip, svc.port);
        let f2 = c2.tcp_connect(svc.ip, svc.port);
        pump(&mut xs, &mut synjitsu, &mut c1, &svc.name, f1);
        pump(&mut xs, &mut synjitsu, &mut c2, &svc.name, f2);
        let r1 = c1
            .tcp_send((svc.ip, svc.port), 49152, b"GET /a HTTP/1.1\r\n\r\n")
            .unwrap();
        let r2 = c2
            .tcp_send((svc.ip, svc.port), 49152, b"GET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        pump(&mut xs, &mut synjitsu, &mut c1, &svc.name, r1);
        pump(&mut xs, &mut synjitsu, &mut c2, &svc.name, r2);

        let tcbs = synjitsu.handoff(&mut xs, &svc.name).unwrap();
        assert_eq!(tcbs.len(), 2);
        let mut paths: Vec<Vec<u8>> = tcbs.iter().map(|t| t.buffered.clone()).collect();
        paths.sort();
        assert!(paths[0].starts_with(b"GET /a"));
        assert!(paths[1].starts_with(b"GET /b"));
    }
}
