//! The dom0 software bridge.
//!
//! Guest vifs and the physical NIC are ports on a learning bridge in dom0;
//! external traffic destined for a unikernel's IP traverses this bridge. The
//! Jitsu datapath discussion (§3.2, §4) is about minimising how much work is
//! added on this path — Figure 8's ICMP RTTs include one bridge traversal
//! for guest targets. Synjitsu also listens here promiscuously for TCP
//! packets destined to unikernels that are still booting (§3.3.1).
//!
//! Frames are opaque byte vectors whose first twelve bytes are the standard
//! Ethernet destination and source MAC addresses; the bridge learns source
//! addresses and forwards/floods accordingly, delivering into per-port
//! queues. Ports may additionally be marked promiscuous to receive copies of
//! every frame (how Synjitsu taps the bridge).

use jitsu_sim::SimDuration;
use std::collections::{BTreeMap, VecDeque};

/// A port handle on the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// Errors from bridge operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BridgeError {
    /// The port does not exist (e.g. already detached).
    NoSuchPort(PortId),
    /// The frame is too short to carry Ethernet addressing.
    RuntFrame(usize),
}

/// A learning Ethernet bridge with per-port receive queues.
#[derive(Debug, Default)]
pub struct Bridge {
    next_port: u32,
    ports: BTreeMap<PortId, PortState>,
    /// MAC address → port map learned from source addresses.
    fdb: BTreeMap<[u8; 6], PortId>,
    /// Per-frame forwarding latency (software bridge hop in dom0).
    forward_latency: SimDuration,
    frames_forwarded: u64,
    frames_flooded: u64,
}

#[derive(Debug, Default)]
struct PortState {
    name: String,
    promiscuous: bool,
    rx_queue: VecDeque<Vec<u8>>,
}

impl Bridge {
    /// Create a bridge with the default dom0 forwarding latency (~50 µs of
    /// softirq and bridge processing per frame on the Cubieboard2).
    pub fn new() -> Bridge {
        Bridge {
            forward_latency: SimDuration::from_micros(50),
            ..Bridge::default()
        }
    }

    /// Override the per-frame forwarding latency.
    pub fn with_forward_latency(mut self, latency: SimDuration) -> Bridge {
        self.forward_latency = latency;
        self
    }

    /// The per-frame forwarding latency.
    pub fn forward_latency(&self) -> SimDuration {
        self.forward_latency
    }

    /// Attach a new port (a vif backend or the physical NIC).
    pub fn attach(&mut self, name: impl Into<String>) -> PortId {
        let id = PortId(self.next_port);
        self.next_port += 1;
        self.ports.insert(
            id,
            PortState {
                name: name.into(),
                promiscuous: false,
                rx_queue: VecDeque::new(),
            },
        );
        id
    }

    /// Detach a port, dropping its queue and learned addresses.
    pub fn detach(&mut self, port: PortId) -> Result<(), BridgeError> {
        self.ports
            .remove(&port)
            .ok_or(BridgeError::NoSuchPort(port))?;
        self.fdb.retain(|_, p| *p != port);
        Ok(())
    }

    /// Mark a port promiscuous (it receives a copy of every frame).
    pub fn set_promiscuous(&mut self, port: PortId, on: bool) -> Result<(), BridgeError> {
        self.ports
            .get_mut(&port)
            .ok_or(BridgeError::NoSuchPort(port))?
            .promiscuous = on;
        Ok(())
    }

    /// The number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The name a port was attached with.
    pub fn port_name(&self, port: PortId) -> Option<&str> {
        self.ports.get(&port).map(|p| p.name.as_str())
    }

    /// Counters: `(forwarded, flooded)` frames.
    pub fn counters(&self) -> (u64, u64) {
        (self.frames_forwarded, self.frames_flooded)
    }

    fn dst_src(frame: &[u8]) -> Result<([u8; 6], [u8; 6]), BridgeError> {
        if frame.len() < 12 {
            return Err(BridgeError::RuntFrame(frame.len()));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&frame[0..6]);
        src.copy_from_slice(&frame[6..12]);
        Ok((dst, src))
    }

    /// Transmit a frame into the bridge from `ingress`. Returns the latency
    /// of the bridge hop. Unknown/broadcast destinations are flooded to all
    /// other ports; known destinations are forwarded to their learned port.
    /// Promiscuous ports always receive a copy.
    pub fn transmit(&mut self, ingress: PortId, frame: &[u8]) -> Result<SimDuration, BridgeError> {
        if !self.ports.contains_key(&ingress) {
            return Err(BridgeError::NoSuchPort(ingress));
        }
        let (dst, src) = Self::dst_src(frame)?;
        // Learn the source address.
        self.fdb.insert(src, ingress);
        let is_broadcast = dst == [0xff; 6] || (dst[0] & 0x01) != 0;
        let known = if is_broadcast {
            None
        } else {
            self.fdb.get(&dst).copied()
        };
        let mut delivered_to_known = false;
        let targets: Vec<PortId> = self
            .ports
            .keys()
            .copied()
            .filter(|p| *p != ingress)
            .collect();
        for port in targets {
            let deliver = match known {
                Some(k) if k == port => {
                    delivered_to_known = true;
                    true
                }
                Some(_) => self.ports[&port].promiscuous,
                None => true,
            };
            if deliver {
                self.ports
                    .get_mut(&port)
                    // jitsu-lint: allow(P001, "port ids come from the ports map being iterated")
                    .expect("iterating known ports")
                    .rx_queue
                    .push_back(frame.to_vec());
            }
        }
        if known.is_some() && delivered_to_known {
            self.frames_forwarded += 1;
        } else {
            self.frames_flooded += 1;
        }
        Ok(self.forward_latency)
    }

    /// Receive the next queued frame on a port, if any.
    pub fn receive(&mut self, port: PortId) -> Result<Option<Vec<u8>>, BridgeError> {
        Ok(self
            .ports
            .get_mut(&port)
            .ok_or(BridgeError::NoSuchPort(port))?
            .rx_queue
            .pop_front())
    }

    /// Number of frames queued on a port.
    pub fn pending(&self, port: PortId) -> usize {
        self.ports.get(&port).map(|p| p.rx_queue.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dst: [u8; 6], src: [u8; 6], payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&dst);
        f.extend_from_slice(&src);
        f.extend_from_slice(&[0x08, 0x00]);
        f.extend_from_slice(payload);
        f
    }

    const MAC_A: [u8; 6] = [2, 0, 0, 0, 0, 0xa];
    const MAC_B: [u8; 6] = [2, 0, 0, 0, 0, 0xb];
    const BCAST: [u8; 6] = [0xff; 6];

    #[test]
    fn unknown_destination_floods_then_learns() {
        let mut br = Bridge::new();
        let pa = br.attach("eth0");
        let pb = br.attach("vif5.0");
        let pc = br.attach("vif6.0");

        // A -> B while B is unknown: flooded to both other ports.
        br.transmit(pa, &frame(MAC_B, MAC_A, b"hello")).unwrap();
        assert_eq!(br.pending(pb), 1);
        assert_eq!(br.pending(pc), 1);

        // B replies; the bridge learns B's port and A's port.
        br.receive(pb).unwrap();
        br.transmit(pb, &frame(MAC_A, MAC_B, b"re")).unwrap();
        assert_eq!(br.pending(pa), 1);
        assert_eq!(br.pending(pc), 1, "A was already learned, no extra flood");

        // Second A -> B is now forwarded only to B.
        br.transmit(pa, &frame(MAC_B, MAC_A, b"again")).unwrap();
        assert_eq!(br.pending(pb), 1);
        assert_eq!(br.pending(pc), 1);
        let (fwd, flood) = br.counters();
        assert_eq!(fwd, 2);
        assert_eq!(flood, 1);
    }

    #[test]
    fn broadcast_goes_everywhere_except_ingress() {
        let mut br = Bridge::new();
        let pa = br.attach("eth0");
        let pb = br.attach("vif1.0");
        let pc = br.attach("vif2.0");
        br.transmit(pa, &frame(BCAST, MAC_A, b"arp who-has"))
            .unwrap();
        assert_eq!(br.pending(pa), 0);
        assert_eq!(br.pending(pb), 1);
        assert_eq!(br.pending(pc), 1);
    }

    #[test]
    fn promiscuous_port_sees_forwarded_traffic() {
        // Synjitsu taps the bridge to catch SYNs for booting unikernels.
        let mut br = Bridge::new();
        let eth = br.attach("eth0");
        let vif = br.attach("vif9.0");
        let synjitsu = br.attach("synjitsu");
        br.set_promiscuous(synjitsu, true).unwrap();

        // Teach the bridge where MAC_B lives.
        br.transmit(vif, &frame(MAC_A, MAC_B, b"")).unwrap();
        // Now a directed frame to B still lands on the promiscuous tap.
        br.transmit(eth, &frame(MAC_B, MAC_A, b"SYN")).unwrap();
        assert_eq!(br.pending(vif), 1);
        assert_eq!(br.pending(synjitsu), 2);
    }

    #[test]
    fn detach_removes_port_and_learned_macs() {
        let mut br = Bridge::new();
        let pa = br.attach("eth0");
        let pb = br.attach("vif1.0");
        br.transmit(pb, &frame(MAC_A, MAC_B, b"")).unwrap();
        br.detach(pb).unwrap();
        assert_eq!(br.port_count(), 1);
        // Traffic to the departed MAC floods again (to remaining ports).
        br.transmit(pa, &frame(MAC_B, MAC_A, b"x")).unwrap();
        let (_, flood) = br.counters();
        assert!(flood >= 1);
        assert_eq!(br.receive(pb).unwrap_err(), BridgeError::NoSuchPort(pb));
        assert_eq!(br.detach(pb).unwrap_err(), BridgeError::NoSuchPort(pb));
    }

    #[test]
    fn runt_frames_and_bad_ports_are_errors() {
        let mut br = Bridge::new();
        let pa = br.attach("eth0");
        assert_eq!(br.transmit(pa, &[1, 2, 3]), Err(BridgeError::RuntFrame(3)));
        assert_eq!(
            br.transmit(PortId(99), &frame(MAC_A, MAC_B, b"")),
            Err(BridgeError::NoSuchPort(PortId(99)))
        );
    }

    #[test]
    fn forwarding_latency_is_reported() {
        let mut br = Bridge::new().with_forward_latency(SimDuration::from_micros(120));
        let pa = br.attach("a");
        let _pb = br.attach("b");
        let d = br.transmit(pa, &frame(BCAST, MAC_A, b"")).unwrap();
        assert_eq!(d, SimDuration::from_micros(120));
        assert_eq!(br.forward_latency(), SimDuration::from_micros(120));
    }

    #[test]
    fn port_names_and_receive_order() {
        let mut br = Bridge::new();
        let pa = br.attach("eth0");
        let pb = br.attach("vif3.0");
        assert_eq!(br.port_name(pb), Some("vif3.0"));
        assert_eq!(br.port_name(PortId(9)), None);
        br.transmit(pa, &frame(BCAST, MAC_A, b"1")).unwrap();
        br.transmit(pa, &frame(BCAST, MAC_A, b"2")).unwrap();
        let f1 = br.receive(pb).unwrap().unwrap();
        let f2 = br.receive(pb).unwrap().unwrap();
        assert!(f1.ends_with(b"1"));
        assert!(f2.ends_with(b"2"));
        assert!(br.receive(pb).unwrap().is_none());
    }
}
