//! Grant tables: page sharing between domains.
//!
//! A domain *grants* access to one of its pages to a named peer domain by
//! filling in a grant-table entry; the peer then *maps* the grant to reach
//! the shared memory. The split-driver rings (netfront/netback, console) and
//! the vchan transport used by Conduit (§3.2) are built on exactly this
//! primitive. This model tracks entries, enforces that only the intended
//! peer may map a grant, supports read-only grants, and stores the shared
//! page contents so higher layers genuinely move bytes through it.

use std::collections::BTreeMap;
use xenstore::DomId;

/// A grant reference: an index into the granting domain's grant table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GrantRef(pub u32);

/// Errors from grant-table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrantError {
    /// The grant reference does not exist.
    BadRef(GrantRef),
    /// The mapping domain is not the peer the grant names.
    NotPermitted {
        /// The domain that attempted the mapping.
        mapper: DomId,
        /// The domain the grant actually names.
        expected: DomId,
    },
    /// Attempted to write through a read-only grant.
    ReadOnly(GrantRef),
    /// The grant is still mapped and cannot be revoked.
    StillMapped(GrantRef),
    /// The granting domain has exhausted its grant table.
    TableFull,
}

/// One grant entry.
#[derive(Debug, Clone)]
struct GrantEntry {
    granter: DomId,
    peer: DomId,
    readonly: bool,
    mapped_by: Option<DomId>,
    /// The shared page contents (one PAGE_SIZE page).
    page: Vec<u8>,
}

/// Per-host grant table state (indexed by granting domain).
#[derive(Debug, Default)]
pub struct GrantTable {
    entries: BTreeMap<(DomId, GrantRef), GrantEntry>,
    next_ref: BTreeMap<DomId, u32>,
    /// Maximum entries per domain (the default Xen grant table v1 size).
    max_per_domain: u32,
}

impl GrantTable {
    /// Create a grant table with the default per-domain capacity.
    pub fn new() -> GrantTable {
        GrantTable {
            entries: BTreeMap::new(),
            next_ref: BTreeMap::new(),
            max_per_domain: 512,
        }
    }

    /// Create a grant table with an explicit per-domain capacity.
    pub fn with_capacity(max_per_domain: u32) -> GrantTable {
        GrantTable {
            max_per_domain,
            ..GrantTable::new()
        }
    }

    /// Number of grants a domain currently has outstanding.
    pub fn grants_of(&self, dom: DomId) -> usize {
        self.entries.keys().filter(|(d, _)| *d == dom).count()
    }

    /// Grant `peer` access to a fresh shared page owned by `granter`.
    pub fn grant(
        &mut self,
        granter: DomId,
        peer: DomId,
        readonly: bool,
    ) -> Result<GrantRef, GrantError> {
        if self.grants_of(granter) as u32 >= self.max_per_domain {
            return Err(GrantError::TableFull);
        }
        let counter = self.next_ref.entry(granter).or_insert(0);
        let gref = GrantRef(*counter);
        *counter += 1;
        self.entries.insert(
            (granter, gref),
            GrantEntry {
                granter,
                peer,
                readonly,
                mapped_by: None,
                page: vec![0u8; crate::memory::PAGE_SIZE],
            },
        );
        Ok(gref)
    }

    /// Map a grant as `mapper`. Only the peer named in the grant may map it.
    pub fn map(&mut self, granter: DomId, gref: GrantRef, mapper: DomId) -> Result<(), GrantError> {
        let entry = self
            .entries
            .get_mut(&(granter, gref))
            .ok_or(GrantError::BadRef(gref))?;
        if entry.peer != mapper && !mapper.is_privileged() {
            return Err(GrantError::NotPermitted {
                mapper,
                expected: entry.peer,
            });
        }
        entry.mapped_by = Some(mapper);
        Ok(())
    }

    /// Unmap a previously mapped grant.
    pub fn unmap(&mut self, granter: DomId, gref: GrantRef) -> Result<(), GrantError> {
        let entry = self
            .entries
            .get_mut(&(granter, gref))
            .ok_or(GrantError::BadRef(gref))?;
        entry.mapped_by = None;
        Ok(())
    }

    /// Revoke (end access to) a grant. Fails while the peer still has it
    /// mapped — the source of many real-world driver bugs.
    pub fn revoke(&mut self, granter: DomId, gref: GrantRef) -> Result<(), GrantError> {
        let entry = self
            .entries
            .get(&(granter, gref))
            .ok_or(GrantError::BadRef(gref))?;
        if entry.mapped_by.is_some() {
            return Err(GrantError::StillMapped(gref));
        }
        self.entries.remove(&(granter, gref));
        Ok(())
    }

    /// Write into the shared page as `writer` (granter, or the peer if the
    /// grant is read-write and mapped).
    pub fn write_page(
        &mut self,
        granter: DomId,
        gref: GrantRef,
        writer: DomId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), GrantError> {
        let entry = self
            .entries
            .get_mut(&(granter, gref))
            .ok_or(GrantError::BadRef(gref))?;
        if writer != entry.granter {
            if entry.peer != writer {
                return Err(GrantError::NotPermitted {
                    mapper: writer,
                    expected: entry.peer,
                });
            }
            if entry.readonly {
                return Err(GrantError::ReadOnly(gref));
            }
        }
        let end = (offset + data.len()).min(entry.page.len());
        let n = end.saturating_sub(offset);
        entry.page[offset..offset + n].copy_from_slice(&data[..n]);
        Ok(())
    }

    /// Read from the shared page as `reader` (granter or peer).
    pub fn read_page(
        &self,
        granter: DomId,
        gref: GrantRef,
        reader: DomId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, GrantError> {
        let entry = self
            .entries
            .get(&(granter, gref))
            .ok_or(GrantError::BadRef(gref))?;
        if reader != entry.granter && reader != entry.peer && !reader.is_privileged() {
            return Err(GrantError::NotPermitted {
                mapper: reader,
                expected: entry.peer,
            });
        }
        let end = (offset + len).min(entry.page.len());
        Ok(entry.page[offset.min(end)..end].to_vec())
    }

    /// Drop all grants owned by, or mapped by, a destroyed domain.
    pub fn domain_destroyed(&mut self, dom: DomId) {
        self.entries.retain(|(granter, _), e| {
            if *granter == dom {
                return false;
            }
            if e.mapped_by == Some(dom) {
                e.mapped_by = None;
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_map_readwrite_flow() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(DomId(3), DomId(7), false).unwrap();
        gt.map(DomId(3), gref, DomId(7)).unwrap();
        gt.write_page(DomId(3), gref, DomId(7), 0, b"hello from dom7")
            .unwrap();
        let data = gt.read_page(DomId(3), gref, DomId(3), 0, 15).unwrap();
        assert_eq!(&data, b"hello from dom7");
        gt.unmap(DomId(3), gref).unwrap();
        gt.revoke(DomId(3), gref).unwrap();
        assert_eq!(gt.grants_of(DomId(3)), 0);
    }

    #[test]
    fn only_named_peer_may_map() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(DomId(3), DomId(7), false).unwrap();
        assert_eq!(
            gt.map(DomId(3), gref, DomId(9)),
            Err(GrantError::NotPermitted {
                mapper: DomId(9),
                expected: DomId(7)
            })
        );
        // dom0 (backend drivers) may map anything.
        assert!(gt.map(DomId(3), gref, DomId::DOM0).is_ok());
    }

    #[test]
    fn readonly_grants_reject_peer_writes() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(DomId(3), DomId(7), true).unwrap();
        gt.map(DomId(3), gref, DomId(7)).unwrap();
        assert_eq!(
            gt.write_page(DomId(3), gref, DomId(7), 0, b"x"),
            Err(GrantError::ReadOnly(gref))
        );
        // The granter itself can still write.
        assert!(gt.write_page(DomId(3), gref, DomId(3), 0, b"x").is_ok());
        assert_eq!(gt.read_page(DomId(3), gref, DomId(7), 0, 1).unwrap(), b"x");
    }

    #[test]
    fn revoke_fails_while_mapped() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(DomId(3), DomId(7), false).unwrap();
        gt.map(DomId(3), gref, DomId(7)).unwrap();
        assert_eq!(
            gt.revoke(DomId(3), gref),
            Err(GrantError::StillMapped(gref))
        );
        gt.unmap(DomId(3), gref).unwrap();
        assert!(gt.revoke(DomId(3), gref).is_ok());
    }

    #[test]
    fn bad_refs_and_foreign_readers_rejected() {
        let mut gt = GrantTable::new();
        assert_eq!(
            gt.map(DomId(3), GrantRef(42), DomId(7)),
            Err(GrantError::BadRef(GrantRef(42)))
        );
        let gref = gt.grant(DomId(3), DomId(7), false).unwrap();
        assert!(matches!(
            gt.read_page(DomId(3), gref, DomId(9), 0, 4),
            Err(GrantError::NotPermitted { .. })
        ));
    }

    #[test]
    fn table_capacity_enforced() {
        let mut gt = GrantTable::with_capacity(2);
        gt.grant(DomId(3), DomId(7), false).unwrap();
        gt.grant(DomId(3), DomId(7), false).unwrap();
        assert_eq!(
            gt.grant(DomId(3), DomId(7), false),
            Err(GrantError::TableFull)
        );
        // Another domain has its own budget.
        assert!(gt.grant(DomId(4), DomId(7), false).is_ok());
    }

    #[test]
    fn writes_clamp_to_page_size() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(DomId(3), DomId(7), false).unwrap();
        let big = vec![0xAB; crate::memory::PAGE_SIZE + 100];
        gt.write_page(DomId(3), gref, DomId(3), 0, &big).unwrap();
        let page = gt
            .read_page(DomId(3), gref, DomId(3), 0, crate::memory::PAGE_SIZE + 100)
            .unwrap();
        assert_eq!(page.len(), crate::memory::PAGE_SIZE);
        assert!(page.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn domain_destruction_cleans_grants() {
        let mut gt = GrantTable::new();
        let g1 = gt.grant(DomId(3), DomId(7), false).unwrap();
        let _g2 = gt.grant(DomId(7), DomId(3), false).unwrap();
        gt.map(DomId(3), g1, DomId(7)).unwrap();
        gt.domain_destroyed(DomId(7));
        // dom7's own grants are gone; dom3's grant is no longer mapped.
        assert_eq!(gt.grants_of(DomId(7)), 0);
        assert!(gt.revoke(DomId(3), g1).is_ok(), "mapping was torn down");
    }

    #[test]
    fn grant_refs_are_per_domain_monotonic() {
        let mut gt = GrantTable::new();
        let a = gt.grant(DomId(3), DomId(7), false).unwrap();
        let b = gt.grant(DomId(3), DomId(7), false).unwrap();
        let c = gt.grant(DomId(5), DomId(7), false).unwrap();
        assert_eq!(a, GrantRef(0));
        assert_eq!(b, GrantRef(1));
        assert_eq!(c, GrantRef(0), "each domain numbers its own table");
    }
}
