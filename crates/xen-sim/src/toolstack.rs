//! The toolstack: orchestrating domain creation end to end.
//!
//! This is the layer Jitsu re-architects. Creating a domain involves (§3.1):
//! the domain builder (memory + kernel + FDT), a series of XenStore
//! transactions coordinating the components, attaching the console to
//! `xenconsoled`, and creating and hotplugging the vif backend — all of
//! which the stock `xl` toolstack performs serially while the guest waits.
//!
//! [`BootOptimisations`] captures the individual Jitsu optimisations so the
//! Figure 4 harness can turn them on one at a time:
//!
//! 1. small memory (a property of the [`DomainConfig`], not a flag),
//! 2. lighter hotplug (`dash`, then inline `ioctl`),
//! 3. parallelising vif setup with the domain build,
//! 4. asynchronous console attachment,
//!
//! while the XenStore engine choice (Figure 3) is a property of the store the
//! toolstack is constructed with.

use crate::bridge::Bridge;
use crate::devices::console::ConsoleDevice;
use crate::devices::vif::VifDevice;
use crate::domain::{DomIdAllocator, Domain, DomainConfig, DomainState};
use crate::domain_builder::{BuildError, BuildReport, DomainBuilder};
use crate::event_channel::EventChannelTable;
use crate::grant_table::GrantTable;
use crate::hotplug::HotplugStyle;
use jitsu_sim::{SimDuration, SimRng, Tracer};
use platform::Board;
use std::collections::BTreeMap;
use xenstore::{DomId, EngineKind, Error as XsError, XenStore};

/// The set of toolstack optimisations §3.1 describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootOptimisations {
    /// How the vif hotplug step is performed.
    pub hotplug: HotplugStyle,
    /// Overlap vif backend setup with the domain build (optimisation (ii)).
    pub parallel_device_attach: bool,
    /// Attach the console asynchronously, off the critical path.
    pub async_console: bool,
}

impl BootOptimisations {
    /// The stock Xen 4.4.0 toolstack behaviour.
    pub fn vanilla() -> BootOptimisations {
        BootOptimisations {
            hotplug: HotplugStyle::BashScript,
            parallel_device_attach: false,
            async_console: false,
        }
    }

    /// The fully optimised Jitsu toolstack.
    pub fn jitsu() -> BootOptimisations {
        BootOptimisations {
            hotplug: HotplugStyle::InlineIoctl,
            parallel_device_attach: true,
            async_console: true,
        }
    }

    /// The cumulative optimisation steps of Figure 4, in legend order,
    /// excluding the final "switch to x86" step (which is a board change).
    pub fn figure4_steps() -> Vec<(&'static str, BootOptimisations)> {
        vec![
            ("Xen 4.4.0", BootOptimisations::vanilla()),
            (
                "Replace hotplug script with minimal version",
                BootOptimisations {
                    hotplug: HotplugStyle::DashScript,
                    ..BootOptimisations::vanilla()
                },
            ),
            (
                "Replace hotplug script with inline ioctl()",
                BootOptimisations {
                    hotplug: HotplugStyle::InlineIoctl,
                    ..BootOptimisations::vanilla()
                },
            ),
            (
                "Parallelise hotplug with domain build",
                BootOptimisations {
                    hotplug: HotplugStyle::InlineIoctl,
                    parallel_device_attach: true,
                    async_console: false,
                },
            ),
            ("Remove primary console", BootOptimisations::jitsu()),
        ]
    }
}

/// A counting semaphore bounding how many domain constructions dom0 runs
/// concurrently.
///
/// Domain construction is dom0-CPU-bound (page scrubbing, XenStore
/// transactions, hotplug), so a host can only usefully overlap a small
/// number of builds — roughly its dom0 vcpu count. Jitsu's concurrent
/// engine acquires a slot before calling [`Toolstack::create_domain`] and
/// releases it when construction completes; launches arriving while all
/// slots are busy queue behind the semaphore, which is what produces the
/// graceful time-to-first-byte degradation (rather than thrashing) when a
/// boot storm exceeds the board's build throughput.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSlots {
    capacity: u32,
    in_use: u32,
    peak: u32,
}

impl LaunchSlots {
    /// A semaphore with `capacity` slots (clamped to at least one).
    pub fn new(capacity: u32) -> LaunchSlots {
        LaunchSlots {
            capacity: capacity.max(1),
            in_use: 0,
            peak: 0,
        }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Slots currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Slots currently free.
    pub fn available(&self) -> u32 {
        self.capacity - self.in_use
    }

    /// The highest concurrency observed since construction.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Acquire a slot if one is free. Returns whether acquisition succeeded.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.peak = self.peak.max(self.in_use);
            true
        } else {
            false
        }
    }

    /// Release a previously acquired slot.
    ///
    /// # Panics
    /// Panics if no slot is held — that is always a caller bookkeeping bug.
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "LaunchSlots::release without acquire");
        self.in_use -= 1;
    }
}

/// Per-stage timing of a whole `create` operation (Figure 4's unit of
/// measurement: "VM construction time, not boot time").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateReport {
    /// The domain id created.
    pub dom: DomId,
    /// Domain builder stages.
    pub build: BuildReport,
    /// XenStore coordination overhead (transactions + blocking RPCs).
    pub xenstore_coordination: SimDuration,
    /// Synchronous console attachment (zero when asynchronous).
    pub console_attach: SimDuration,
    /// Creating the vif backend device.
    pub vif_backend_create: SimDuration,
    /// Running the hotplug step.
    pub vif_hotplug: SimDuration,
    /// Blocking RPC round trips the guest sees during vif attach (zero when
    /// overlapped with the build).
    pub vif_blocking_rpc: SimDuration,
    /// Whether the vif path overlapped the build path.
    pub parallelised: bool,
    /// End-to-end VM construction time.
    pub total: SimDuration,
}

/// Errors from toolstack operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolstackError {
    /// Domain building failed (usually out of memory).
    Build(BuildError),
    /// A XenStore operation failed.
    Store(XsError),
    /// The referenced domain does not exist.
    UnknownDomain(DomId),
}

impl From<BuildError> for ToolstackError {
    fn from(e: BuildError) -> Self {
        ToolstackError::Build(e)
    }
}

impl From<XsError> for ToolstackError {
    fn from(e: XsError) -> Self {
        ToolstackError::Store(e)
    }
}

/// The host toolstack: all control-plane state for one Xen host.
pub struct Toolstack {
    board: Board,
    /// The shared store (public so Jitsu and Conduit can use the same one).
    pub xenstore: XenStore,
    /// Grant tables (public for vchan construction).
    pub grants: GrantTable,
    /// Event channels (public for vchan construction).
    pub event_channels: EventChannelTable,
    /// The dom0 software bridge.
    pub bridge: Bridge,
    builder: DomainBuilder,
    domids: DomIdAllocator,
    domains: BTreeMap<DomId, Domain>,
    vifs: BTreeMap<DomId, VifDevice>,
    consoles: BTreeMap<DomId, ConsoleDevice>,
    rng: SimRng,
    /// Trace of control-plane events (public so callers can inspect it).
    pub tracer: Tracer,
}

impl Toolstack {
    /// Create a toolstack for a board using the given XenStore engine.
    pub fn new(board: Board, engine: EngineKind, seed: u64) -> Toolstack {
        Toolstack {
            builder: DomainBuilder::new(board.clone()),
            board,
            xenstore: XenStore::new(engine),
            grants: GrantTable::new(),
            event_channels: EventChannelTable::new(),
            bridge: Bridge::new(),
            domids: DomIdAllocator::new(),
            domains: BTreeMap::new(),
            vifs: BTreeMap::new(),
            consoles: BTreeMap::new(),
            rng: SimRng::seed_from_u64(seed),
            tracer: Tracer::new(),
        }
    }

    /// The board this host runs on.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Split-borrow the three tables a conduit rendezvous needs — the
    /// store, the grant table and the event channels — so callers can
    /// establish vchans (e.g. the Synjitsu handoff drain) while the rest of
    /// the toolstack stays borrowed elsewhere.
    pub fn conduit_parts(&mut self) -> (&mut XenStore, &mut GrantTable, &mut EventChannelTable) {
        (
            &mut self.xenstore,
            &mut self.grants,
            &mut self.event_channels,
        )
    }

    /// Activity counters of the shared store — commits, *merged* commits
    /// (transactions that landed on a concurrently advanced base and were
    /// grafted on instead of aborted) and `EAGAIN` conflicts. Parallel
    /// domain builds issue several overlapping transactions per boot, so
    /// under storm load `merged` grows while `conflicts` stays at zero on
    /// the Jitsu engine.
    pub fn xenstore_stats(&self) -> xenstore::StoreStats {
        self.xenstore.stats()
    }

    /// Free guest memory in MiB.
    pub fn free_mib(&self) -> u32 {
        self.builder.free_mib()
    }

    /// Whether `mib` MiB can currently be allocated (used by Jitsu to decide
    /// between launching and answering `SERVFAIL`).
    pub fn can_allocate(&self, mib: u32) -> bool {
        self.builder.can_allocate(mib)
    }

    /// The domains currently known to the toolstack.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Look up a domain.
    pub fn domain(&self, dom: DomId) -> Option<&Domain> {
        self.domains.get(&dom)
    }

    /// Look up a running domain by its configured name.
    pub fn find_by_name(&self, name: &str) -> Option<&Domain> {
        self.domains.values().find(|d| d.config.name == name)
    }

    /// The vif of a domain, if one was attached.
    pub fn vif(&self, dom: DomId) -> Option<&VifDevice> {
        self.vifs.get(&dom)
    }

    /// XenStore coordination overhead for one domain creation: the
    /// transactions and blocking RPC round trips between the builder, the
    /// device backends and `xenstored` (§3.1 optimisation (iii) attacks the
    /// transaction-conflict part of this; the fixed part is modelled here).
    fn coordination_time(&self) -> SimDuration {
        self.board.scale_cpu(SimDuration::from_micros(13_000))
    }

    /// Create (but do not unpause) a domain, returning the per-stage report.
    pub fn create_domain(
        &mut self,
        config: DomainConfig,
        opts: BootOptimisations,
    ) -> Result<CreateReport, ToolstackError> {
        let dom = self.domids.alloc();
        let mut domain = Domain::new(dom, config.clone());

        // --- builder path -------------------------------------------------
        let build = self.builder.build(&mut domain, &config)?;

        // The real XenStore writes the toolstack performs for a new domain.
        let home = format!("/local/domain/{}", dom.0);
        self.xenstore
            .with_transaction(DomId::DOM0, 8, |xs, t| {
                xs.write(
                    DomId::DOM0,
                    Some(t),
                    &format!("{home}/name"),
                    config.name.as_bytes(),
                )?;
                xs.write(
                    DomId::DOM0,
                    Some(t),
                    &format!("{home}/memory/target"),
                    (config.memory_mib as u64 * 1024).to_string().as_bytes(),
                )?;
                xs.write(
                    DomId::DOM0,
                    Some(t),
                    &format!("{home}/vm"),
                    format!("/vm/{}", dom.0).as_bytes(),
                )?;
                Ok(())
            })
            .map_err(ToolstackError::Store)?;

        // --- console ------------------------------------------------------
        let mut console_attach = SimDuration::ZERO;
        if config.with_console {
            let console = ConsoleDevice::setup(
                &mut self.xenstore,
                &mut self.grants,
                &mut self.event_channels,
                dom,
            )?;
            console.mark_connected(&mut self.xenstore)?;
            self.consoles.insert(dom, console);
            if !opts.async_console {
                console_attach = ConsoleDevice::attach_time(&self.board);
            }
        }

        // --- vif ----------------------------------------------------------
        let mut vif_backend_create = SimDuration::ZERO;
        let mut vif_hotplug = SimDuration::ZERO;
        let mut vif_blocking_rpc = SimDuration::ZERO;
        if config.with_vif {
            let mut vif = VifDevice::setup(
                &mut self.xenstore,
                &mut self.grants,
                &mut self.event_channels,
                dom,
                0,
            )?;
            vif.backend_connect(
                &mut self.xenstore,
                &mut self.grants,
                &mut self.event_channels,
                &mut self.bridge,
            )?;
            vif_backend_create = VifDevice::backend_create_time(&self.board);
            vif_hotplug = opts.hotplug.sample_duration(&self.board, &mut self.rng);
            if !opts.parallel_device_attach {
                vif_blocking_rpc = VifDevice::blocking_rpc_time(&self.board);
            }
            self.vifs.insert(dom, vif);
        }

        // --- compose the end-to-end construction time ---------------------
        let coordination = self.coordination_time();
        let builder_path = build.total();
        let vif_path = vif_backend_create + vif_hotplug + vif_blocking_rpc;
        let serial_paths = if opts.parallel_device_attach {
            builder_path.max(vif_path)
        } else {
            builder_path + vif_path
        };
        let total = coordination + serial_paths + console_attach;

        domain
            .transition(DomainState::Paused)
            // jitsu-lint: allow(P001, "Built -> Paused is a legal lifecycle transition by construction")
            .expect("Built -> Paused is legal");
        self.domains.insert(dom, domain);
        self.tracer.emit(
            jitsu_sim::SimTime::ZERO,
            "toolstack",
            format!("created {} as dom{} in {}", config.name, dom.0, total),
        );

        Ok(CreateReport {
            dom,
            build,
            xenstore_coordination: coordination,
            console_attach,
            vif_backend_create,
            vif_hotplug,
            vif_blocking_rpc,
            parallelised: opts.parallel_device_attach,
            total,
        })
    }

    /// Unpause a created domain so it starts booting.
    pub fn unpause(&mut self, dom: DomId) -> Result<(), ToolstackError> {
        let d = self
            .domains
            .get_mut(&dom)
            .ok_or(ToolstackError::UnknownDomain(dom))?;
        d.transition(DomainState::Running)
            .map_err(|_| ToolstackError::UnknownDomain(dom))?;
        Ok(())
    }

    /// Time to tear a domain down: deschedule its vcpu, close and unplug
    /// the vif, release grants/event channels and return its pages to the
    /// allocator. §3.3 reaps idle unikernels to reclaim memory; teardown is
    /// much cheaper than construction but not free, so a reaped service
    /// passes through a short `Draining` window before its memory is
    /// reusable.
    pub fn teardown_time(&self) -> SimDuration {
        self.board.scale_cpu(SimDuration::from_micros(5_000))
    }

    /// Destroy a domain, releasing its memory, devices and XenStore state.
    pub fn destroy(&mut self, dom: DomId) -> Result<(), ToolstackError> {
        let mut d = self
            .domains
            .remove(&dom)
            .ok_or(ToolstackError::UnknownDomain(dom))?;
        // jitsu-lint: allow(R001, "destroy forces the terminal state; an invalid-transition error must not abort teardown")
        let _ = d.transition(DomainState::Destroyed);
        if let Some(mut vif) = self.vifs.remove(&dom) {
            let _ = vif.close(&mut self.xenstore, &mut self.bridge);
        }
        self.consoles.remove(&dom);
        self.builder.release(dom);
        self.grants.domain_destroyed(dom);
        self.event_channels.domain_destroyed(dom);
        self.xenstore.domain_destroyed(dom);
        self.tracer.emit(
            jitsu_sim::SimTime::ZERO,
            "toolstack",
            format!("destroyed dom{}", dom.0),
        );
        Ok(())
    }

    /// Convenience for tests and the Figure 4 sweep: create and immediately
    /// destroy a domain, returning only the construction time.
    pub fn measure_create(
        &mut self,
        config: DomainConfig,
        opts: BootOptimisations,
    ) -> Result<SimDuration, ToolstackError> {
        let report = self.create_domain(config, opts)?;
        let total = report.total;
        self.destroy(report.dom)?;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    fn arm_toolstack() -> Toolstack {
        Toolstack::new(BoardKind::Cubieboard2.board(), EngineKind::JitsuMerge, 42)
    }

    #[test]
    fn vanilla_unikernel_creation_takes_around_650ms_on_arm() {
        let mut ts = arm_toolstack();
        let report = ts
            .create_domain(DomainConfig::unikernel("www"), BootOptimisations::vanilla())
            .unwrap();
        let ms = report.total.as_millis();
        assert!((550..750).contains(&ms), "total={ms}ms");
        assert!(!report.parallelised);
        assert!(
            report.vif_hotplug > report.build.total(),
            "bash hotplug dominates"
        );
    }

    #[test]
    fn optimised_unikernel_creation_takes_around_120ms_on_arm() {
        let mut ts = arm_toolstack();
        let report = ts
            .create_domain(DomainConfig::unikernel("www"), BootOptimisations::jitsu())
            .unwrap();
        let ms = report.total.as_millis();
        assert!((90..160).contains(&ms), "total={ms}ms");
        assert_eq!(report.console_attach, SimDuration::ZERO);
        assert_eq!(report.vif_blocking_rpc, SimDuration::ZERO);
        assert!(report.parallelised);
    }

    #[test]
    fn optimised_creation_takes_around_20ms_on_x86() {
        let mut ts = Toolstack::new(BoardKind::X86Server.board(), EngineKind::JitsuMerge, 42);
        let report = ts
            .create_domain(DomainConfig::unikernel("www"), BootOptimisations::jitsu())
            .unwrap();
        let ms = report.total.as_millis();
        assert!((12..35).contains(&ms), "total={ms}ms");
    }

    #[test]
    fn figure4_steps_are_monotonically_faster() {
        let mut ts = arm_toolstack();
        let mut last = SimDuration::MAX;
        for (label, opts) in BootOptimisations::figure4_steps() {
            let t = ts
                .measure_create(DomainConfig::unikernel("sweep"), opts)
                .unwrap();
            assert!(
                t <= last + SimDuration::from_millis(20),
                "{label} ({t}) should not be slower than the previous step ({last})"
            );
            last = t;
        }
        assert_eq!(BootOptimisations::figure4_steps().len(), 5);
    }

    #[test]
    fn larger_memory_domains_build_slower_under_all_configs() {
        let mut ts = arm_toolstack();
        for opts in [BootOptimisations::vanilla(), BootOptimisations::jitsu()] {
            let small = ts
                .measure_create(DomainConfig::unikernel("s"), opts)
                .unwrap();
            let big = ts
                .measure_create(DomainConfig::unikernel("b").with_memory_mib(256), opts)
                .unwrap();
            assert!(big > small, "{opts:?}: big={big} small={small}");
        }
    }

    #[test]
    fn create_populates_xenstore_and_bridge() {
        let mut ts = arm_toolstack();
        let report = ts
            .create_domain(
                DomainConfig::unikernel("http_server"),
                BootOptimisations::jitsu(),
            )
            .unwrap();
        let dom = report.dom;
        assert_eq!(
            ts.xenstore
                .read_string(DomId::DOM0, None, &format!("/local/domain/{}/name", dom.0))
                .unwrap(),
            "http_server"
        );
        assert_eq!(ts.bridge.port_count(), 1);
        assert!(ts.vif(dom).is_some());
        assert_eq!(ts.domain(dom).unwrap().state, DomainState::Paused);
        assert!(ts.find_by_name("http_server").is_some());
        ts.unpause(dom).unwrap();
        assert!(ts.domain(dom).unwrap().is_running());
    }

    #[test]
    fn destroy_releases_everything() {
        let mut ts = arm_toolstack();
        let free_before = ts.free_mib();
        let report = ts
            .create_domain(DomainConfig::unikernel("temp"), BootOptimisations::jitsu())
            .unwrap();
        assert!(ts.free_mib() < free_before);
        ts.destroy(report.dom).unwrap();
        assert_eq!(ts.free_mib(), free_before);
        assert_eq!(ts.bridge.port_count(), 0);
        assert!(ts.domain(report.dom).is_none());
        assert!(!ts
            .xenstore
            .exists(
                DomId::DOM0,
                None,
                &format!("/local/domain/{}", report.dom.0)
            )
            .unwrap());
        assert_eq!(
            ts.destroy(report.dom),
            Err(ToolstackError::UnknownDomain(report.dom))
        );
    }

    #[test]
    fn memory_exhaustion_surfaces_as_build_error() {
        let mut ts = arm_toolstack();
        // Exhaust guest memory with large VMs.
        let mut created = Vec::new();
        loop {
            match ts.create_domain(
                DomainConfig::linux_vm("hog").with_memory_mib(256),
                BootOptimisations::jitsu(),
            ) {
                Ok(r) => created.push(r.dom),
                Err(ToolstackError::Build(BuildError::OutOfMemory { .. })) => break,
                Err(e) => panic!("unexpected error {e:?}"),
            }
            assert!(created.len() < 16, "should run out of memory eventually");
        }
        assert!(!ts.can_allocate(256));
        // Destroying one frees capacity again.
        ts.destroy(created[0]).unwrap();
        assert!(ts.can_allocate(256));
    }

    #[test]
    fn launch_slots_bound_concurrency() {
        let mut slots = LaunchSlots::new(2);
        assert_eq!(slots.capacity(), 2);
        assert_eq!(slots.available(), 2);
        assert!(slots.try_acquire());
        assert!(slots.try_acquire());
        assert!(!slots.try_acquire(), "third acquire must fail");
        assert_eq!(slots.in_use(), 2);
        assert_eq!(slots.available(), 0);
        slots.release();
        assert!(slots.try_acquire());
        slots.release();
        slots.release();
        assert_eq!(slots.in_use(), 0);
        assert_eq!(slots.peak(), 2);
        // Zero capacity is clamped to one so the engine can always progress.
        assert_eq!(LaunchSlots::new(0).capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn launch_slot_release_without_acquire_panics() {
        LaunchSlots::new(1).release();
    }

    #[test]
    fn teardown_is_cheaper_than_construction_and_scales_with_board() {
        let mut arm = arm_toolstack();
        let arm_teardown = arm.teardown_time();
        let create = arm
            .create_domain(DomainConfig::unikernel("www"), BootOptimisations::jitsu())
            .unwrap()
            .total;
        assert!(arm_teardown < create, "teardown {arm_teardown} < {create}");
        let x86 = Toolstack::new(BoardKind::X86Server.board(), EngineKind::JitsuMerge, 42);
        assert!(x86.teardown_time() < arm_teardown);
    }

    #[test]
    fn domain_ids_are_never_reused() {
        let mut ts = arm_toolstack();
        let a = ts
            .create_domain(DomainConfig::unikernel("a"), BootOptimisations::jitsu())
            .unwrap()
            .dom;
        ts.destroy(a).unwrap();
        let b = ts
            .create_domain(DomainConfig::unikernel("b"), BootOptimisations::jitsu())
            .unwrap()
            .dom;
        assert_ne!(a, b);
        assert!(b.0 > a.0);
    }
}
