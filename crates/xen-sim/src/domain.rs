//! Domains and their lifecycle.
//!
//! A Xen *domain* is one virtual machine: dom0 is the privileged control
//! domain that owns the hardware drivers and runs the toolstack; unprivileged
//! guests (domUs) hold the unikernels and legacy VMs that Jitsu manages.

use platform::Arch;
use xenstore::DomId;

/// The lifecycle of a domain as seen by the toolstack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainState {
    /// Descriptor allocated, memory not yet populated.
    Created,
    /// Memory populated and kernel loaded, vCPUs not yet runnable.
    Built,
    /// Runnable but paused (the builder leaves domains paused until the
    /// toolstack unpauses them).
    Paused,
    /// Running.
    Running,
    /// The guest has shut down (cleanly or by crash).
    Shutdown,
    /// Resources released; the id may be reused.
    Destroyed,
}

/// Static configuration for a new domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainConfig {
    /// Human-readable name (also written to XenStore).
    pub name: String,
    /// Memory assigned to the guest, in MiB. Unikernels are happy with 8–16;
    /// Linux guests typically need at least 64.
    pub memory_mib: u32,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Guest architecture.
    pub arch: Arch,
    /// Size of the kernel image to load, in bytes (a MirageOS unikernel is
    /// around 1 MB; a Linux kernel plus initrd an order of magnitude more).
    pub kernel_size_bytes: usize,
    /// Whether to attach a network interface.
    pub with_vif: bool,
    /// Whether to attach a console.
    pub with_console: bool,
}

impl DomainConfig {
    /// A typical MirageOS unikernel configuration (§3.1: "8MB is plenty";
    /// we default to 16 MiB, the smallest point in Figure 4).
    pub fn unikernel(name: impl Into<String>) -> DomainConfig {
        DomainConfig {
            name: name.into(),
            memory_mib: 16,
            vcpus: 1,
            arch: Arch::Arm,
            kernel_size_bytes: 1024 * 1024,
            with_vif: true,
            with_console: true,
        }
    }

    /// A typical small Linux guest (64 MiB minimum, 128 MiB recommended).
    pub fn linux_vm(name: impl Into<String>) -> DomainConfig {
        DomainConfig {
            name: name.into(),
            memory_mib: 128,
            vcpus: 1,
            arch: Arch::Arm,
            kernel_size_bytes: 12 * 1024 * 1024,
            with_vif: true,
            with_console: true,
        }
    }

    /// Builder-style memory override.
    pub fn with_memory_mib(mut self, mib: u32) -> DomainConfig {
        self.memory_mib = mib;
        self
    }

    /// Builder-style architecture override.
    pub fn with_arch(mut self, arch: Arch) -> DomainConfig {
        self.arch = arch;
        self
    }

    /// Builder-style vCPU override.
    pub fn with_vcpus(mut self, vcpus: u32) -> DomainConfig {
        self.vcpus = vcpus.max(1);
        self
    }
}

/// A live domain descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    /// The domain id assigned at creation.
    pub id: DomId,
    /// Static configuration.
    pub config: DomainConfig,
    /// Current lifecycle state.
    pub state: DomainState,
}

impl Domain {
    /// Create a descriptor in the [`DomainState::Created`] state.
    pub fn new(id: DomId, config: DomainConfig) -> Domain {
        Domain {
            id,
            config,
            state: DomainState::Created,
        }
    }

    /// True if the domain can service work.
    pub fn is_running(&self) -> bool {
        self.state == DomainState::Running
    }

    /// Advance the lifecycle. Invalid transitions return `Err` with the
    /// offending `(from, to)` pair, so toolstack bugs surface in tests.
    pub fn transition(&mut self, to: DomainState) -> Result<(), (DomainState, DomainState)> {
        use DomainState::*;
        let ok = matches!(
            (self.state, to),
            (Created, Built)
                | (Built, Paused)
                | (Paused, Running)
                | (Running, Paused)
                | (Running, Shutdown)
                | (Paused, Shutdown)
                | (Shutdown, Destroyed)
                | (Created, Destroyed)
                | (Built, Destroyed)
                | (Paused, Destroyed)
                | (Running, Destroyed)
        );
        if ok {
            self.state = to;
            Ok(())
        } else {
            Err((self.state, to))
        }
    }
}

/// Allocator of domain ids. Ids increase monotonically and are never reused
/// within one host lifetime (matching the behaviour of the real hypervisor,
/// which makes stale XenStore references detectable).
#[derive(Debug, Clone)]
pub struct DomIdAllocator {
    next: u32,
}

impl Default for DomIdAllocator {
    fn default() -> Self {
        DomIdAllocator::new()
    }
}

impl DomIdAllocator {
    /// Start allocating at dom1 (dom0 is the control domain).
    pub fn new() -> DomIdAllocator {
        DomIdAllocator { next: 1 }
    }

    /// Allocate the next id.
    pub fn alloc(&mut self) -> DomId {
        let id = DomId(self.next);
        self.next += 1;
        id
    }

    /// How many ids have been handed out.
    pub fn allocated(&self) -> u32 {
        self.next - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unikernel_config_is_small() {
        let c = DomainConfig::unikernel("www-alice");
        assert_eq!(c.memory_mib, 16);
        assert_eq!(c.vcpus, 1);
        assert_eq!(c.kernel_size_bytes, 1024 * 1024);
        assert!(c.with_vif);
        let l = DomainConfig::linux_vm("ubuntu");
        assert!(l.memory_mib >= 64, "Linux needs at least 64MiB");
        assert!(l.kernel_size_bytes > c.kernel_size_bytes);
    }

    #[test]
    fn builder_overrides() {
        let c = DomainConfig::unikernel("x")
            .with_memory_mib(256)
            .with_arch(Arch::X86)
            .with_vcpus(0);
        assert_eq!(c.memory_mib, 256);
        assert_eq!(c.arch, Arch::X86);
        assert_eq!(c.vcpus, 1, "vcpus clamps to at least one");
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut d = Domain::new(DomId(5), DomainConfig::unikernel("u"));
        assert_eq!(d.state, DomainState::Created);
        assert!(!d.is_running());
        d.transition(DomainState::Built).unwrap();
        d.transition(DomainState::Paused).unwrap();
        d.transition(DomainState::Running).unwrap();
        assert!(d.is_running());
        d.transition(DomainState::Shutdown).unwrap();
        d.transition(DomainState::Destroyed).unwrap();
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut d = Domain::new(DomId(5), DomainConfig::unikernel("u"));
        assert_eq!(
            d.transition(DomainState::Running),
            Err((DomainState::Created, DomainState::Running))
        );
        d.transition(DomainState::Built).unwrap();
        assert!(d.transition(DomainState::Running).is_err());
        d.transition(DomainState::Paused).unwrap();
        d.transition(DomainState::Running).unwrap();
        assert!(d.transition(DomainState::Built).is_err());
        // Destroy is allowed from anywhere.
        d.transition(DomainState::Destroyed).unwrap();
    }

    #[test]
    fn pause_unpause_cycle() {
        let mut d = Domain::new(DomId(2), DomainConfig::unikernel("u"));
        d.transition(DomainState::Built).unwrap();
        d.transition(DomainState::Paused).unwrap();
        d.transition(DomainState::Running).unwrap();
        d.transition(DomainState::Paused).unwrap();
        d.transition(DomainState::Running).unwrap();
        assert!(d.is_running());
    }

    #[test]
    fn domid_allocation_is_monotonic() {
        let mut a = DomIdAllocator::new();
        let d1 = a.alloc();
        let d2 = a.alloc();
        let d3 = a.alloc();
        assert_eq!(d1, DomId(1));
        assert_eq!(d2, DomId(2));
        assert_eq!(d3, DomId(3));
        assert_eq!(a.allocated(), 3);
        assert_ne!(d1, DomId::DOM0);
    }
}
