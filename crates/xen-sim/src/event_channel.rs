//! Event channels: the virtual interrupt mechanism.
//!
//! An event channel is a one-bit notification line between two domains (or a
//! domain and Xen). The split-driver rings and vchan use a grant-shared page
//! for data plus an event channel to signal "I produced/consumed something".
//! The model follows the real API: a domain allocates an *unbound* port for a
//! named remote domain, the remote *binds* to it obtaining its own port, and
//! either side may then `notify`, which sets the peer's pending bit unless
//! masked.

use std::collections::BTreeMap;
use xenstore::DomId;

/// A per-domain event channel port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u32);

/// Errors from event channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventChannelError {
    /// The port does not exist for that domain.
    BadPort(Port),
    /// The port exists but is not in a bindable state for the caller.
    NotBindable,
    /// The port is already bound.
    AlreadyBound,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChannelState {
    /// Allocated by `owner` for `remote`, awaiting the remote's bind.
    Unbound { remote: DomId },
    /// Connected to the peer's port.
    Interdomain { peer: DomId, peer_port: Port },
    /// Torn down.
    Closed,
}

#[derive(Debug, Clone)]
struct Channel {
    state: ChannelState,
    pending: bool,
    masked: bool,
}

/// The host-wide event channel table.
#[derive(Debug, Default)]
pub struct EventChannelTable {
    channels: BTreeMap<(DomId, Port), Channel>,
    next_port: BTreeMap<DomId, u32>,
}

impl EventChannelTable {
    /// Create an empty table.
    pub fn new() -> EventChannelTable {
        EventChannelTable::default()
    }

    fn alloc_port(&mut self, dom: DomId) -> Port {
        let counter = self.next_port.entry(dom).or_insert(1);
        let port = Port(*counter);
        *counter += 1;
        port
    }

    /// Allocate an unbound port on `owner` that only `remote` may bind.
    pub fn alloc_unbound(&mut self, owner: DomId, remote: DomId) -> Port {
        let port = self.alloc_port(owner);
        self.channels.insert(
            (owner, port),
            Channel {
                state: ChannelState::Unbound { remote },
                pending: false,
                masked: false,
            },
        );
        port
    }

    /// Bind to a remote domain's unbound port, returning the local port.
    pub fn bind_interdomain(
        &mut self,
        local: DomId,
        remote: DomId,
        remote_port: Port,
    ) -> Result<Port, EventChannelError> {
        let remote_chan = self
            .channels
            .get(&(remote, remote_port))
            .ok_or(EventChannelError::BadPort(remote_port))?;
        match remote_chan.state {
            ChannelState::Unbound { remote: expected } if expected == local => {}
            ChannelState::Unbound { .. } => return Err(EventChannelError::NotBindable),
            ChannelState::Interdomain { .. } => return Err(EventChannelError::AlreadyBound),
            ChannelState::Closed => return Err(EventChannelError::BadPort(remote_port)),
        }
        let local_port = self.alloc_port(local);
        self.channels.insert(
            (local, local_port),
            Channel {
                state: ChannelState::Interdomain {
                    peer: remote,
                    peer_port: remote_port,
                },
                pending: false,
                masked: false,
            },
        );
        let remote_chan = self
            .channels
            .get_mut(&(remote, remote_port))
            // jitsu-lint: allow(P001, "presence checked by the lookup above")
            .expect("looked up above");
        remote_chan.state = ChannelState::Interdomain {
            peer: local,
            peer_port: local_port,
        };
        Ok(local_port)
    }

    /// Send a notification from `(dom, port)` to its peer. Returns `true` if
    /// the peer's pending bit was newly set (i.e. a wakeup should be
    /// delivered), `false` if it was already pending or is masked.
    pub fn notify(&mut self, dom: DomId, port: Port) -> Result<bool, EventChannelError> {
        let chan = self
            .channels
            .get(&(dom, port))
            .ok_or(EventChannelError::BadPort(port))?;
        let (peer, peer_port) = match chan.state {
            ChannelState::Interdomain { peer, peer_port } => (peer, peer_port),
            _ => return Err(EventChannelError::NotBindable),
        };
        let peer_chan = self
            .channels
            .get_mut(&(peer, peer_port))
            .ok_or(EventChannelError::BadPort(peer_port))?;
        if peer_chan.masked {
            return Ok(false);
        }
        let newly = !peer_chan.pending;
        peer_chan.pending = true;
        Ok(newly)
    }

    /// Read and clear the pending bit (what a guest's interrupt handler does).
    pub fn take_pending(&mut self, dom: DomId, port: Port) -> Result<bool, EventChannelError> {
        let chan = self
            .channels
            .get_mut(&(dom, port))
            .ok_or(EventChannelError::BadPort(port))?;
        let was = chan.pending;
        chan.pending = false;
        Ok(was)
    }

    /// Mask or unmask a port (masked ports do not receive notifications).
    pub fn set_masked(
        &mut self,
        dom: DomId,
        port: Port,
        masked: bool,
    ) -> Result<(), EventChannelError> {
        let chan = self
            .channels
            .get_mut(&(dom, port))
            .ok_or(EventChannelError::BadPort(port))?;
        chan.masked = masked;
        Ok(())
    }

    /// Close a port; the peer's port (if any) is also closed.
    pub fn close(&mut self, dom: DomId, port: Port) -> Result<(), EventChannelError> {
        let chan = self
            .channels
            .get_mut(&(dom, port))
            .ok_or(EventChannelError::BadPort(port))?;
        let peer = match chan.state {
            ChannelState::Interdomain { peer, peer_port } => Some((peer, peer_port)),
            _ => None,
        };
        chan.state = ChannelState::Closed;
        chan.pending = false;
        if let Some((peer, peer_port)) = peer {
            if let Some(pc) = self.channels.get_mut(&(peer, peer_port)) {
                pc.state = ChannelState::Closed;
                pc.pending = false;
            }
        }
        Ok(())
    }

    /// Tear down every port belonging to a destroyed domain.
    pub fn domain_destroyed(&mut self, dom: DomId) {
        let ports: Vec<Port> = self
            .channels
            .keys()
            .filter(|(d, _)| *d == dom)
            .map(|(_, p)| *p)
            .collect();
        for port in ports {
            let _ = self.close(dom, port);
        }
        self.channels.retain(|(d, _), _| *d != dom);
    }

    /// Number of live (non-closed) ports a domain holds.
    pub fn ports_of(&self, dom: DomId) -> usize {
        self.channels
            .iter()
            .filter(|((d, _), c)| *d == dom && c.state != ChannelState::Closed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connected_pair(table: &mut EventChannelTable) -> (Port, Port) {
        let server_port = table.alloc_unbound(DomId(3), DomId(7));
        let client_port = table
            .bind_interdomain(DomId(7), DomId(3), server_port)
            .unwrap();
        (server_port, client_port)
    }

    #[test]
    fn alloc_bind_notify_roundtrip() {
        let mut t = EventChannelTable::new();
        let (sp, cp) = connected_pair(&mut t);
        // Client notifies server.
        assert!(t.notify(DomId(7), cp).unwrap());
        assert!(t.take_pending(DomId(3), sp).unwrap());
        assert!(!t.take_pending(DomId(3), sp).unwrap(), "pending bit clears");
        // Server notifies client.
        assert!(t.notify(DomId(3), sp).unwrap());
        assert!(t.take_pending(DomId(7), cp).unwrap());
    }

    #[test]
    fn duplicate_notify_coalesces() {
        let mut t = EventChannelTable::new();
        let (sp, cp) = connected_pair(&mut t);
        assert!(t.notify(DomId(7), cp).unwrap());
        assert!(!t.notify(DomId(7), cp).unwrap(), "second notify coalesces");
        assert!(t.take_pending(DomId(3), sp).unwrap());
    }

    #[test]
    fn only_named_remote_may_bind() {
        let mut t = EventChannelTable::new();
        let sp = t.alloc_unbound(DomId(3), DomId(7));
        assert_eq!(
            t.bind_interdomain(DomId(9), DomId(3), sp),
            Err(EventChannelError::NotBindable)
        );
        let _ = t.bind_interdomain(DomId(7), DomId(3), sp).unwrap();
        // Re-binding an already-bound port fails.
        assert_eq!(
            t.bind_interdomain(DomId(7), DomId(3), sp),
            Err(EventChannelError::AlreadyBound)
        );
    }

    #[test]
    fn masked_ports_suppress_notifications() {
        let mut t = EventChannelTable::new();
        let (sp, cp) = connected_pair(&mut t);
        t.set_masked(DomId(3), sp, true).unwrap();
        assert!(!t.notify(DomId(7), cp).unwrap());
        assert!(!t.take_pending(DomId(3), sp).unwrap());
        t.set_masked(DomId(3), sp, false).unwrap();
        assert!(t.notify(DomId(7), cp).unwrap());
    }

    #[test]
    fn bad_ports_are_errors() {
        let mut t = EventChannelTable::new();
        assert!(matches!(
            t.notify(DomId(1), Port(9)),
            Err(EventChannelError::BadPort(_))
        ));
        assert!(matches!(
            t.bind_interdomain(DomId(1), DomId(2), Port(9)),
            Err(EventChannelError::BadPort(_))
        ));
        let unbound = t.alloc_unbound(DomId(1), DomId(2));
        // Notifying an unbound port is an error.
        assert!(matches!(
            t.notify(DomId(1), unbound),
            Err(EventChannelError::NotBindable)
        ));
    }

    #[test]
    fn close_tears_down_both_ends() {
        let mut t = EventChannelTable::new();
        let (sp, cp) = connected_pair(&mut t);
        t.close(DomId(3), sp).unwrap();
        assert!(matches!(
            t.notify(DomId(7), cp),
            Err(EventChannelError::NotBindable)
        ));
        assert_eq!(t.ports_of(DomId(3)), 0);
        assert_eq!(t.ports_of(DomId(7)), 0);
    }

    #[test]
    fn domain_destruction_closes_peer_ports() {
        let mut t = EventChannelTable::new();
        let (_sp, cp) = connected_pair(&mut t);
        t.domain_destroyed(DomId(3));
        assert!(matches!(
            t.notify(DomId(7), cp),
            Err(EventChannelError::NotBindable)
        ));
        assert_eq!(t.ports_of(DomId(3)), 0);
    }

    #[test]
    fn ports_are_per_domain() {
        let mut t = EventChannelTable::new();
        let a = t.alloc_unbound(DomId(3), DomId(7));
        let b = t.alloc_unbound(DomId(5), DomId(7));
        assert_eq!(a, Port(1));
        assert_eq!(b, Port(1), "each domain has its own port space");
        assert_eq!(t.ports_of(DomId(3)), 1);
    }
}
