//! Flattened Device Tree construction.
//!
//! Xen/ARM guests boot with register `r2` pointing at a Flattened Device
//! Tree (FDT) describing memory, the hypervisor node, the console and the
//! command line — "a similar key/value store to the one supplied by native
//! ARM bootloaders ... much simpler than x86 booting, where configuration
//! information is spread across virtualized BIOS, memory and Xen-specific
//! interfaces" (§2.3). The domain builder constructs one of these per guest;
//! this module provides a small tree builder plus a binary encoding (a
//! simplified DTB: tagged begin/end node and property records) and a parser,
//! so the builder and the guest boot code exchange real bytes.

use std::collections::BTreeMap;

/// A device-tree node: properties plus named children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FdtNode {
    /// Property name → value bytes.
    pub properties: BTreeMap<String, Vec<u8>>,
    /// Child nodes by name.
    pub children: BTreeMap<String, FdtNode>,
}

impl FdtNode {
    /// Look up a property on this node.
    pub fn property(&self, name: &str) -> Option<&[u8]> {
        self.properties.get(name).map(|v| v.as_slice())
    }

    /// Look up a property and decode it as a big-endian u64 cell pair.
    pub fn property_u64(&self, name: &str) -> Option<u64> {
        let v = self.properties.get(name)?;
        if v.len() != 8 {
            return None;
        }
        Some(u64::from_be_bytes(v.as_slice().try_into().ok()?))
    }

    /// Look up a property and decode it as a NUL-terminated string.
    pub fn property_str(&self, name: &str) -> Option<String> {
        let v = self.properties.get(name)?;
        let end = v.iter().position(|&b| b == 0).unwrap_or(v.len());
        Some(String::from_utf8_lossy(&v[..end]).into_owned())
    }

    /// Find a descendant by `/`-separated path (relative to this node).
    pub fn find(&self, path: &str) -> Option<&FdtNode> {
        let mut node = self;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            node = node.children.get(comp)?;
        }
        Some(node)
    }

    /// Total number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FdtNode::node_count)
            .sum::<usize>()
    }
}

/// Builder for a guest's device tree.
#[derive(Debug, Clone, Default)]
pub struct FdtBuilder {
    root: FdtNode,
}

impl FdtBuilder {
    /// Start an empty tree.
    pub fn new() -> FdtBuilder {
        FdtBuilder::default()
    }

    /// Set a property at a `/`-separated path, creating nodes as needed.
    pub fn set_property(&mut self, path: &str, name: &str, value: &[u8]) -> &mut Self {
        let mut node = &mut self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            node = node.children.entry(comp.to_string()).or_default();
        }
        node.properties.insert(name.to_string(), value.to_vec());
        self
    }

    /// Set a string property (NUL-terminated, per DT convention).
    pub fn set_str(&mut self, path: &str, name: &str, value: &str) -> &mut Self {
        let mut bytes = value.as_bytes().to_vec();
        bytes.push(0);
        self.set_property(path, name, &bytes)
    }

    /// Set a 64-bit big-endian property (address/size cells).
    pub fn set_u64(&mut self, path: &str, name: &str, value: u64) -> &mut Self {
        self.set_property(path, name, &value.to_be_bytes())
    }

    /// Build the standard tree Xen constructs for an ARM guest: the model
    /// string, a `/memory` node with the RAM range, a `/hypervisor` node
    /// with the Xen version and the XenStore/console event channel
    /// references, and a `/chosen` node carrying the kernel command line.
    pub fn standard_guest(
        ram_base: u64,
        ram_bytes: u64,
        cmdline: &str,
        xenstore_port: u32,
        console_port: u32,
    ) -> FdtBuilder {
        let mut b = FdtBuilder::new();
        b.set_str("/", "compatible", "xen,xenvm-4.5");
        b.set_str("/", "model", "XENVM-4.5");
        b.set_u64("/memory", "reg-base", ram_base);
        b.set_u64("/memory", "reg-size", ram_bytes);
        b.set_str("/memory", "device_type", "memory");
        b.set_str("/hypervisor", "compatible", "xen,xen-4.5");
        b.set_u64("/hypervisor", "xenstore-evtchn", xenstore_port as u64);
        b.set_u64("/hypervisor", "console-evtchn", console_port as u64);
        b.set_str("/chosen", "bootargs", cmdline);
        b
    }

    /// Finish building, returning the tree.
    pub fn build(self) -> FdtNode {
        self.root
    }

    /// Encode directly to DTB bytes.
    pub fn encode(&self) -> Vec<u8> {
        encode(&self.root)
    }
}

// --- Binary encoding -----------------------------------------------------

const FDT_MAGIC: u32 = 0xd00dfeed;
const TAG_BEGIN_NODE: u8 = 1;
const TAG_END_NODE: u8 = 2;
const TAG_PROP: u8 = 3;
const TAG_END: u8 = 9;

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    if *pos + 4 > buf.len() {
        return None;
    }
    let v = u32::from_be_bytes(buf[*pos..*pos + 4].try_into().ok()?);
    *pos += 4;
    Some(v)
}

fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Option<&'a [u8]> {
    if *pos + len > buf.len() {
        return None;
    }
    let s = &buf[*pos..*pos + len];
    *pos += len;
    Some(s)
}

fn encode_node(out: &mut Vec<u8>, name: &str, node: &FdtNode) {
    out.push(TAG_BEGIN_NODE);
    push_str(out, name);
    for (pname, value) in &node.properties {
        out.push(TAG_PROP);
        push_str(out, pname);
        out.extend_from_slice(&(value.len() as u32).to_be_bytes());
        out.extend_from_slice(value);
    }
    for (cname, child) in &node.children {
        encode_node(out, cname, child);
    }
    out.push(TAG_END_NODE);
}

/// Encode a tree to DTB bytes.
pub fn encode(root: &FdtNode) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&FDT_MAGIC.to_be_bytes());
    encode_node(&mut out, "", root);
    out.push(TAG_END);
    out
}

fn decode_node(buf: &[u8], pos: &mut usize) -> Option<(String, FdtNode)> {
    if buf.get(*pos) != Some(&TAG_BEGIN_NODE) {
        return None;
    }
    *pos += 1;
    let name_len = read_u32(buf, pos)? as usize;
    let name = String::from_utf8_lossy(read_bytes(buf, pos, name_len)?).into_owned();
    let mut node = FdtNode::default();
    loop {
        match *buf.get(*pos)? {
            TAG_PROP => {
                *pos += 1;
                let pname_len = read_u32(buf, pos)? as usize;
                let pname = String::from_utf8_lossy(read_bytes(buf, pos, pname_len)?).into_owned();
                let vlen = read_u32(buf, pos)? as usize;
                let value = read_bytes(buf, pos, vlen)?.to_vec();
                node.properties.insert(pname, value);
            }
            TAG_BEGIN_NODE => {
                let (cname, child) = decode_node(buf, pos)?;
                node.children.insert(cname, child);
            }
            TAG_END_NODE => {
                *pos += 1;
                return Some((name, node));
            }
            _ => return None,
        }
    }
}

/// Decode DTB bytes back into a tree. Returns `None` on malformed input.
pub fn decode(buf: &[u8]) -> Option<FdtNode> {
    let mut pos = 0;
    let magic = read_u32(buf, &mut pos)?;
    if magic != FDT_MAGIC {
        return None;
    }
    let (_, root) = decode_node(buf, &mut pos)?;
    if buf.get(pos) != Some(&TAG_END) {
        return None;
    }
    Some(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_nested_properties() {
        let mut b = FdtBuilder::new();
        b.set_str("/chosen", "bootargs", "console=hvc0");
        b.set_u64("/memory", "reg-size", 16 * 1024 * 1024);
        let root = b.build();
        assert_eq!(
            root.find("chosen")
                .unwrap()
                .property_str("bootargs")
                .unwrap(),
            "console=hvc0"
        );
        assert_eq!(
            root.find("memory")
                .unwrap()
                .property_u64("reg-size")
                .unwrap(),
            16 * 1024 * 1024
        );
        assert!(root.find("missing").is_none());
        assert_eq!(root.node_count(), 3);
    }

    #[test]
    fn standard_guest_tree_has_required_nodes() {
        let fdt = FdtBuilder::standard_guest(0x4000_0000, 16 << 20, "jitsu=1", 1, 2).build();
        assert_eq!(fdt.property_str("compatible").unwrap(), "xen,xenvm-4.5");
        let mem = fdt.find("memory").unwrap();
        assert_eq!(mem.property_u64("reg-base").unwrap(), 0x4000_0000);
        assert_eq!(mem.property_u64("reg-size").unwrap(), 16 << 20);
        let hyp = fdt.find("hypervisor").unwrap();
        assert_eq!(hyp.property_u64("xenstore-evtchn").unwrap(), 1);
        assert_eq!(hyp.property_u64("console-evtchn").unwrap(), 2);
        assert_eq!(
            fdt.find("chosen")
                .unwrap()
                .property_str("bootargs")
                .unwrap(),
            "jitsu=1"
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let fdt =
            FdtBuilder::standard_guest(0x4000_0000, 256 << 20, "root=/dev/xvda1", 3, 4).build();
        let bytes = encode(&fdt);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, fdt);
    }

    #[test]
    fn decode_rejects_bad_magic_and_truncation() {
        let fdt = FdtBuilder::standard_guest(0, 8 << 20, "", 1, 2).build();
        let mut bytes = encode(&fdt);
        assert!(decode(&bytes[..bytes.len() - 2]).is_none(), "truncated");
        bytes[0] = 0xff;
        assert!(decode(&bytes).is_none(), "bad magic");
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn property_accessors_handle_wrong_types() {
        let mut b = FdtBuilder::new();
        b.set_str("/", "name", "hello");
        let root = b.build();
        assert_eq!(root.property_u64("name"), None, "string is not a u64 cell");
        assert_eq!(root.property("missing"), None);
        assert_eq!(
            root.property("name").unwrap().last(),
            Some(&0u8),
            "NUL terminated"
        );
    }

    #[test]
    fn builder_encode_matches_module_encode() {
        let mut b = FdtBuilder::new();
        b.set_str("/chosen", "bootargs", "x");
        assert_eq!(b.encode(), encode(&b.clone().build()));
    }
}
