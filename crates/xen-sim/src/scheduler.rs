//! A minimal credit scheduler.
//!
//! Xen's credit scheduler shares physical CPUs between domains in proportion
//! to their weights. Jitsu does not modify the scheduler, but the
//! reproduction needs one for two reasons: the power model distinguishes
//! idle from spinning CPUs (Table 1), and multi-tenant examples (several
//! unikernels on one dual-core Cubieboard) need a defensible account of who
//! runs when. The model implements weighted round-robin credit accounting
//! over fixed 30 ms timeslices — enough to answer "what fraction of CPU did
//! each domain get" deterministically.

use jitsu_sim::SimDuration;
use std::collections::BTreeMap;
use xenstore::DomId;

/// Default scheduling weight (Xen's default is 256).
pub const DEFAULT_WEIGHT: u32 = 256;

/// The credit scheduler timeslice.
pub const TIMESLICE: SimDuration = SimDuration::from_millis(30);

/// A runnable vCPU belonging to a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Vcpu {
    dom: DomId,
    weight: u32,
    credit: i64,
    runnable: bool,
    ran: SimDuration,
}

/// Weighted credit scheduler over one or more physical CPUs.
#[derive(Debug, Clone)]
pub struct CreditScheduler {
    pcpus: u32,
    vcpus: Vec<Vcpu>,
}

impl CreditScheduler {
    /// Create a scheduler managing `pcpus` physical CPUs.
    pub fn new(pcpus: u32) -> CreditScheduler {
        CreditScheduler {
            pcpus: pcpus.max(1),
            vcpus: Vec::new(),
        }
    }

    /// Add a domain with one vCPU and the given weight.
    pub fn add_domain(&mut self, dom: DomId, weight: u32) {
        self.vcpus.push(Vcpu {
            dom,
            weight: weight.max(1),
            credit: 0,
            runnable: false,
            ran: SimDuration::ZERO,
        });
    }

    /// Remove a domain's vCPUs.
    pub fn remove_domain(&mut self, dom: DomId) {
        self.vcpus.retain(|v| v.dom != dom);
    }

    /// Mark a domain runnable (it has work) or blocked (idle).
    pub fn set_runnable(&mut self, dom: DomId, runnable: bool) {
        for v in self.vcpus.iter_mut().filter(|v| v.dom == dom) {
            v.runnable = runnable;
        }
    }

    /// Number of domains registered.
    pub fn domains(&self) -> usize {
        self.vcpus.len()
    }

    /// Run the scheduler for `duration`, splitting CPU time between runnable
    /// vCPUs in proportion to weight. Returns per-domain CPU time granted.
    pub fn run_for(&mut self, duration: SimDuration) -> BTreeMap<DomId, SimDuration> {
        let mut granted: BTreeMap<DomId, SimDuration> = BTreeMap::new();
        let runnable: Vec<usize> = self
            .vcpus
            .iter()
            .enumerate()
            .filter(|(_, v)| v.runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return granted;
        }
        let total_weight: u64 = runnable.iter().map(|&i| self.vcpus[i].weight as u64).sum();
        // Total CPU time available across all physical CPUs, but no single
        // vCPU can use more than `duration` of it.
        let capacity = duration * self.pcpus as u64;
        for &i in &runnable {
            let share = capacity.mul_f64(self.vcpus[i].weight as f64 / total_weight as f64);
            let share = share.min(duration);
            self.vcpus[i].ran += share;
            self.vcpus[i].credit += share.as_micros() as i64;
            *granted
                .entry(self.vcpus[i].dom)
                .or_insert(SimDuration::ZERO) += share;
        }
        granted
    }

    /// Total CPU time a domain has received.
    pub fn cpu_time(&self, dom: DomId) -> SimDuration {
        self.vcpus
            .iter()
            .filter(|v| v.dom == dom)
            .map(|v| v.ran)
            .sum()
    }

    /// The fraction of the host that was busy during `run_for(duration)`
    /// calls so far would require tracking wall time; instead expose whether
    /// any vCPU is currently runnable — the input the power model needs.
    pub fn any_runnable(&self) -> bool {
        self.vcpus.iter().any(|v| v.runnable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_share_equally() {
        let mut s = CreditScheduler::new(1);
        s.add_domain(DomId(1), DEFAULT_WEIGHT);
        s.add_domain(DomId(2), DEFAULT_WEIGHT);
        s.set_runnable(DomId(1), true);
        s.set_runnable(DomId(2), true);
        let granted = s.run_for(SimDuration::from_millis(100));
        let a = granted[&DomId(1)].as_millis();
        let b = granted[&DomId(2)].as_millis();
        assert_eq!(a, b);
        assert_eq!(a + b, 100);
    }

    #[test]
    fn weights_bias_the_split() {
        let mut s = CreditScheduler::new(1);
        s.add_domain(DomId(1), 512);
        s.add_domain(DomId(2), 256);
        s.set_runnable(DomId(1), true);
        s.set_runnable(DomId(2), true);
        let granted = s.run_for(SimDuration::from_millis(90));
        assert_eq!(granted[&DomId(1)].as_millis(), 60);
        assert_eq!(granted[&DomId(2)].as_millis(), 30);
    }

    #[test]
    fn blocked_domains_get_nothing() {
        let mut s = CreditScheduler::new(1);
        s.add_domain(DomId(1), DEFAULT_WEIGHT);
        s.add_domain(DomId(2), DEFAULT_WEIGHT);
        s.set_runnable(DomId(1), true);
        let granted = s.run_for(SimDuration::from_millis(50));
        assert_eq!(granted.get(&DomId(2)), None);
        assert_eq!(granted[&DomId(1)].as_millis(), 50);
        assert!(s.any_runnable());
        s.set_runnable(DomId(1), false);
        assert!(!s.any_runnable());
        assert!(s.run_for(SimDuration::from_millis(10)).is_empty());
    }

    #[test]
    fn multiple_pcpus_increase_capacity_but_not_per_vcpu() {
        let mut s = CreditScheduler::new(2);
        s.add_domain(DomId(1), DEFAULT_WEIGHT);
        s.add_domain(DomId(2), DEFAULT_WEIGHT);
        s.set_runnable(DomId(1), true);
        s.set_runnable(DomId(2), true);
        let granted = s.run_for(SimDuration::from_millis(100));
        // With two physical CPUs, both single-vCPU domains run flat out.
        assert_eq!(granted[&DomId(1)].as_millis(), 100);
        assert_eq!(granted[&DomId(2)].as_millis(), 100);
        // A lone runnable vCPU cannot exceed real time.
        let mut s1 = CreditScheduler::new(4);
        s1.add_domain(DomId(1), DEFAULT_WEIGHT);
        s1.set_runnable(DomId(1), true);
        let g = s1.run_for(SimDuration::from_millis(10));
        assert_eq!(g[&DomId(1)].as_millis(), 10);
    }

    #[test]
    fn cpu_time_accumulates_and_removal_works() {
        let mut s = CreditScheduler::new(1);
        s.add_domain(DomId(1), DEFAULT_WEIGHT);
        s.set_runnable(DomId(1), true);
        s.run_for(SimDuration::from_millis(30));
        s.run_for(SimDuration::from_millis(30));
        assert_eq!(s.cpu_time(DomId(1)).as_millis(), 60);
        assert_eq!(s.domains(), 1);
        s.remove_domain(DomId(1));
        assert_eq!(s.domains(), 0);
        assert_eq!(s.cpu_time(DomId(1)), SimDuration::ZERO);
    }
}
