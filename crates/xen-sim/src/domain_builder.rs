//! The domain builder: turning a kernel image and a memory allocation into
//! a bootable domain.
//!
//! "Xen's domain builder creates the initial VM kernel image. Most of its
//! work is to initialise and zero out physical memory pages, thus guests with
//! less memory are naturally built more quickly" (§3.1). The builder here
//! allocates and scrubs pages from the [`PageAllocator`], loads the kernel at
//! the zImage offset 0x8000, constructs the Flattened Device Tree handed to
//! the guest in `r2` (§2.3), and reports the time spent in each stage so the
//! toolstack can compose Figure 4.

use crate::domain::{Domain, DomainConfig, DomainState};
use crate::fdt::FdtBuilder;
use crate::memory::{MemoryLayout, PageAllocator};
use jitsu_sim::SimDuration;
use platform::{Arch, Board};
use xenstore::DomId;

/// Why a build failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The host cannot satisfy the memory request. Jitsu surfaces this to
    /// DNS clients as `SERVFAIL` so they can fail over to another host
    /// (§3.3.2).
    OutOfMemory {
        /// MiB requested.
        requested_mib: u32,
        /// MiB available.
        available_mib: u32,
    },
    /// The domain was not in a buildable state.
    WrongState(DomainState),
}

/// Per-stage timing of one domain build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Creating the empty domain descriptor (hypercall).
    pub descriptor: SimDuration,
    /// Zeroing the assigned memory — the memory-proportional component.
    pub zeroing: SimDuration,
    /// Loading the kernel image at offset 0x8000.
    pub kernel_load: SimDuration,
    /// Building and writing the FDT.
    pub fdt_build: SimDuration,
    /// The encoded device tree handed to the guest.
    pub fdt_bytes: usize,
    /// The guest memory layout configured for the boot code.
    pub layout: MemoryLayout,
}

impl BuildReport {
    /// Total builder-path time (the part §3.1 optimisation (ii) overlaps
    /// with vif setup).
    pub fn total(&self) -> SimDuration {
        self.descriptor + self.zeroing + self.kernel_load + self.fdt_build
    }
}

/// The domain builder, bound to a board and its page allocator.
#[derive(Debug)]
pub struct DomainBuilder {
    board: Board,
    allocator: PageAllocator,
}

impl DomainBuilder {
    /// Create a builder for a board, with a page pool sized for it.
    pub fn new(board: Board) -> DomainBuilder {
        let allocator = PageAllocator::for_board(&board);
        DomainBuilder { board, allocator }
    }

    /// The board this builder targets.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Free guest memory remaining, in MiB.
    pub fn free_mib(&self) -> u32 {
        self.allocator.free_mib()
    }

    /// Whether a request for `mib` MiB can currently be satisfied.
    pub fn can_allocate(&self, mib: u32) -> bool {
        self.allocator.free_mib() >= mib
    }

    fn descriptor_time(&self) -> SimDuration {
        self.board.scale_cpu(SimDuration::from_micros(1_000))
    }

    fn kernel_load_time(&self, kernel_bytes: usize) -> SimDuration {
        // ≈1 ms/MB on the x86 server (reading from page cache and copying
        // into the guest), scaled to the board.
        let per_mb = self.board.scale_cpu(SimDuration::from_micros(1_000));
        per_mb.mul_f64(kernel_bytes as f64 / (1024.0 * 1024.0))
    }

    fn fdt_time(&self) -> SimDuration {
        self.board.scale_cpu(SimDuration::from_micros(200))
    }

    /// Build a domain: assign and zero memory, load the kernel, write the
    /// FDT and advance the domain to [`DomainState::Built`].
    pub fn build(
        &mut self,
        domain: &mut Domain,
        config: &DomainConfig,
    ) -> Result<BuildReport, BuildError> {
        if domain.state != DomainState::Created {
            return Err(BuildError::WrongState(domain.state));
        }
        let zeroing =
            self.allocator
                .assign(domain.id, config.memory_mib)
                .ok_or(BuildError::OutOfMemory {
                    requested_mib: config.memory_mib,
                    available_mib: self.allocator.free_mib(),
                })?;

        let ram_bytes = config.memory_mib as u64 * 1024 * 1024;
        let layout = MemoryLayout::mirage_arm(ram_bytes.min(u32::MAX as u64) as u32);
        let cmdline = match config.arch {
            Arch::Arm => format!("console=hvc0 jitsu.name={}", config.name),
            Arch::X86 => format!("console=hvc0 root=/dev/xvda1 jitsu.name={}", config.name),
        };
        let fdt = FdtBuilder::standard_guest(
            layout.ram_base_ipa as u64,
            ram_bytes,
            &cmdline,
            1, // xenstore event channel (bound later)
            2, // console event channel (bound later)
        )
        .encode();

        let report = BuildReport {
            descriptor: self.descriptor_time(),
            zeroing,
            kernel_load: self.kernel_load_time(config.kernel_size_bytes),
            fdt_build: self.fdt_time(),
            fdt_bytes: fdt.len(),
            layout,
        };
        domain
            .transition(DomainState::Built)
            // jitsu-lint: allow(P001, "Created -> Built is a legal lifecycle transition by construction")
            .expect("Created -> Built is legal");
        Ok(report)
    }

    /// Release a destroyed domain's memory back to the pool.
    pub fn release(&mut self, dom: DomId) -> usize {
        self.allocator.release(dom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    fn builder() -> DomainBuilder {
        DomainBuilder::new(BoardKind::Cubieboard2.board())
    }

    #[test]
    fn building_a_unikernel_is_fast() {
        let mut b = builder();
        let config = DomainConfig::unikernel("www");
        let mut dom = Domain::new(DomId(5), config.clone());
        let report = b.build(&mut dom, &config).unwrap();
        assert_eq!(dom.state, DomainState::Built);
        // 16 MiB of zeroing plus small fixed costs: a few tens of ms on ARM.
        assert!(
            (25..70).contains(&report.total().as_millis()),
            "total={}",
            report.total()
        );
        assert!(report.zeroing > report.kernel_load);
        assert!(report.fdt_bytes > 0);
        assert!(report.layout.region_order_is_valid());
    }

    #[test]
    fn larger_memory_builds_slower() {
        let mut b = builder();
        let small_cfg = DomainConfig::unikernel("small");
        let mut small = Domain::new(DomId(1), small_cfg.clone());
        let small_report = b.build(&mut small, &small_cfg).unwrap();
        let big_cfg = DomainConfig::unikernel("big").with_memory_mib(256);
        let mut big = Domain::new(DomId(2), big_cfg.clone());
        let big_report = b.build(&mut big, &big_cfg).unwrap();
        assert!(big_report.total() > small_report.total() * 4);
        assert!(big_report.zeroing.as_millis() > 300);
    }

    #[test]
    fn x86_builds_about_six_times_faster() {
        let mut arm = DomainBuilder::new(BoardKind::Cubieboard2.board());
        let mut x86 = DomainBuilder::new(BoardKind::X86Server.board());
        let config = DomainConfig::unikernel("u");
        let mut d1 = Domain::new(DomId(1), config.clone());
        let mut d2 = Domain::new(DomId(1), config.clone());
        let ra = arm.build(&mut d1, &config).unwrap();
        let rx = x86.build(&mut d2, &config).unwrap();
        let ratio = ra.total().as_secs_f64() / rx.total().as_secs_f64();
        assert!((4.5..7.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn out_of_memory_is_reported_for_servfail() {
        let mut b = builder(); // Cubieboard2: ~832 MiB of guest RAM
        let big_cfg = DomainConfig::linux_vm("hog").with_memory_mib(700);
        let mut hog = Domain::new(DomId(1), big_cfg.clone());
        b.build(&mut hog, &big_cfg).unwrap();
        let cfg = DomainConfig::linux_vm("second").with_memory_mib(700);
        let mut second = Domain::new(DomId(2), cfg.clone());
        match b.build(&mut second, &cfg) {
            Err(BuildError::OutOfMemory {
                requested_mib,
                available_mib,
            }) => {
                assert_eq!(requested_mib, 700);
                assert!(available_mib < 700);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        assert_eq!(second.state, DomainState::Created);
        // Releasing the hog frees the memory again.
        assert!(b.release(DomId(1)) > 0);
        assert!(b.can_allocate(700));
    }

    #[test]
    fn rebuilding_a_built_domain_is_rejected() {
        let mut b = builder();
        let config = DomainConfig::unikernel("u");
        let mut dom = Domain::new(DomId(5), config.clone());
        b.build(&mut dom, &config).unwrap();
        assert_eq!(
            b.build(&mut dom, &config),
            Err(BuildError::WrongState(DomainState::Built))
        );
    }

    #[test]
    fn linux_kernel_takes_longer_to_load() {
        let mut b = builder();
        let ucfg = DomainConfig::unikernel("u");
        let lcfg = DomainConfig::linux_vm("l").with_memory_mib(16);
        let mut ud = Domain::new(DomId(1), ucfg.clone());
        let mut ld = Domain::new(DomId(2), lcfg.clone());
        let ur = b.build(&mut ud, &ucfg).unwrap();
        let lr = b.build(&mut ld, &lcfg).unwrap();
        assert!(lr.kernel_load > ur.kernel_load * 5);
    }
}
