//! The dom0 hotplug path for virtual network interfaces.
//!
//! Attaching a guest's `vif` requires dom0 to create the backend device and
//! add it to the software bridge. In stock Xen 4.4 this runs a *bash* hotplug
//! script per device — dozens of forks, `xenstore-read`/`xenstore-write`
//! helper invocations and a final `brctl addif`, which on the Cubieboard2
//! dominates domain creation time. §3.1 walks through the Jitsu
//! optimisations: switch the script to the lightweight `dash`, then eliminate
//! the shell entirely by performing the equivalent `ioctl()` calls in-process.
//!
//! The model exposes each variant's structure (fork count, helper
//! invocations) and a calibrated duration so the Figure 4 harness reproduces
//! the 650 ms → 300 ms → 200 ms progression.

use jitsu_sim::{Distribution, SimDuration, SimRng};
use platform::Board;

/// How dom0 attaches a vif backend to the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HotplugStyle {
    /// The stock `/etc/xen/scripts/vif-bridge` bash script.
    BashScript,
    /// The same script rewritten for the minimal `dash` shell.
    DashScript,
    /// No shell at all: the toolstack issues the bridge `ioctl()`s directly.
    InlineIoctl,
}

impl HotplugStyle {
    /// All styles in optimisation order.
    pub const ALL: [HotplugStyle; 3] = [
        HotplugStyle::BashScript,
        HotplugStyle::DashScript,
        HotplugStyle::InlineIoctl,
    ];

    /// Label used in Figure 4's legend.
    pub fn label(self) -> &'static str {
        match self {
            HotplugStyle::BashScript => "Xen 4.4.0 hotplug script (bash)",
            HotplugStyle::DashScript => "Replace hotplug script with minimal version",
            HotplugStyle::InlineIoctl => "Replace hotplug script with inline ioctl()",
        }
    }

    /// Number of processes forked per attachment (interpreter, xenstore
    /// helper binaries, `ip`/`brctl` invocations).
    pub fn fork_count(self) -> u32 {
        match self {
            HotplugStyle::BashScript => 28,
            HotplugStyle::DashScript => 12,
            HotplugStyle::InlineIoctl => 0,
        }
    }

    /// Number of XenStore helper round trips the script performs.
    pub fn xenstore_helper_calls(self) -> u32 {
        match self {
            HotplugStyle::BashScript => 9,
            HotplugStyle::DashScript => 6,
            HotplugStyle::InlineIoctl => 0,
        }
    }

    /// Whether the attachment still executes any shell at all — relevant to
    /// the security discussion (ShellShock, §4): the inline-ioctl path
    /// removes shell scripts from the security-critical toolstack.
    pub fn uses_shell(self) -> bool {
        !matches!(self, HotplugStyle::InlineIoctl)
    }

    /// Mean duration of the attachment on the x86 reference machine.
    /// ARM durations are obtained by scaling with the board's CPU factor,
    /// reproducing §3.1: ≈450 ms for bash, ≈100 ms for dash and effectively
    /// free for inline ioctls on the Cubieboard2.
    fn x86_mean(self) -> SimDuration {
        match self {
            HotplugStyle::BashScript => SimDuration::from_micros(75_000),
            HotplugStyle::DashScript => SimDuration::from_micros(16_700),
            HotplugStyle::InlineIoctl => SimDuration::from_micros(800),
        }
    }

    /// The duration distribution on a given board (mild log-normal jitter:
    /// script execution time varies with SD-card cache state).
    pub fn duration_dist(self, board: &Board) -> Distribution {
        let median = board.scale_cpu(self.x86_mean());
        Distribution::LogNormal {
            median,
            sigma: 0.08,
        }
    }

    /// Draw one attachment duration.
    pub fn sample_duration(self, board: &Board, rng: &mut SimRng) -> SimDuration {
        self.duration_dist(board).sample(rng)
    }

    /// The deterministic mean attachment duration on a board (used by the
    /// analytic parts of the Figure 4 harness).
    pub fn mean_duration(self, board: &Board) -> SimDuration {
        board.scale_cpu(self.x86_mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    #[test]
    fn arm_durations_match_paper_progression() {
        let board = BoardKind::Cubieboard2.board();
        let bash = HotplugStyle::BashScript.mean_duration(&board);
        let dash = HotplugStyle::DashScript.mean_duration(&board);
        let ioctl = HotplugStyle::InlineIoctl.mean_duration(&board);
        // §3.1: bash ≈ 450 ms worth of hotplug work, dash ≈ 100 ms, ioctl ≈ free.
        assert!((400..500).contains(&bash.as_millis()), "bash={bash}");
        assert!((80..130).contains(&dash.as_millis()), "dash={dash}");
        assert!(ioctl.as_millis() < 10, "ioctl={ioctl}");
        assert!(bash > dash && dash > ioctl);
    }

    #[test]
    fn x86_is_roughly_six_times_faster() {
        let arm = BoardKind::Cubieboard2.board();
        let x86 = BoardKind::X86Server.board();
        for style in HotplugStyle::ALL {
            let a = style.mean_duration(&arm).as_secs_f64();
            let x = style.mean_duration(&x86).as_secs_f64();
            assert!((a / x - 6.0).abs() < 0.01, "{style:?}");
        }
    }

    #[test]
    fn fork_counts_decrease_with_optimisation() {
        assert!(HotplugStyle::BashScript.fork_count() > HotplugStyle::DashScript.fork_count());
        assert_eq!(HotplugStyle::InlineIoctl.fork_count(), 0);
        assert_eq!(HotplugStyle::InlineIoctl.xenstore_helper_calls(), 0);
        assert!(HotplugStyle::BashScript.xenstore_helper_calls() > 0);
    }

    #[test]
    fn only_inline_ioctl_removes_the_shell() {
        assert!(HotplugStyle::BashScript.uses_shell());
        assert!(HotplugStyle::DashScript.uses_shell());
        assert!(!HotplugStyle::InlineIoctl.uses_shell());
    }

    #[test]
    fn sampled_durations_are_near_the_mean() {
        let board = BoardKind::Cubieboard2.board();
        let mut rng = SimRng::seed_from_u64(7);
        let mean = HotplugStyle::BashScript
            .mean_duration(&board)
            .as_millis_f64();
        for _ in 0..100 {
            let d = HotplugStyle::BashScript
                .sample_duration(&board, &mut rng)
                .as_millis_f64();
            assert!((d - mean).abs() / mean < 0.5, "d={d} mean={mean}");
        }
    }

    #[test]
    fn labels_are_figure4_legend_entries() {
        assert!(HotplugStyle::DashScript.label().contains("minimal"));
        assert!(HotplugStyle::InlineIoctl.label().contains("ioctl"));
        assert_eq!(HotplugStyle::ALL.len(), 3);
    }
}
