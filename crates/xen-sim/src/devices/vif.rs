//! The PV network interface (netfront / netback).
//!
//! This is the device whose attachment dominates vanilla domain-creation
//! time: the backend must be created in dom0, a hotplug script must add the
//! new `vifN.0` to the bridge, and "a slew of RPCs go back-and-forth" over
//! XenStore while the guest blocks (§3.1). The [`VifDevice`] here performs
//! the real XenStore negotiation against the simulated store; the time cost
//! of the dom0 side is modelled by [`crate::hotplug`] and composed by the
//! toolstack.

use super::{backend_path, frontend_path, read_state, write_state, DeviceKind, XenbusState};
use crate::bridge::{Bridge, PortId};
use crate::event_channel::{EventChannelTable, Port};
use crate::grant_table::{GrantRef, GrantTable};
use jitsu_sim::SimDuration;
use platform::Board;
use xenstore::{DomId, Result as XsResult, XenStore};

/// A guest network interface and its backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VifDevice {
    /// The guest owning the frontend.
    pub dom: DomId,
    /// Device index (always 0 for single-NIC unikernels).
    pub index: u32,
    /// The interface MAC address.
    pub mac: [u8; 6],
    /// Grant references for the transmit and receive rings.
    pub tx_ring: GrantRef,
    /// Receive ring grant.
    pub rx_ring: GrantRef,
    /// Guest-side event channel.
    pub port: Port,
    /// The bridge port of the backend, once the hotplug step has run.
    pub bridge_port: Option<PortId>,
}

impl VifDevice {
    /// Deterministically derive a locally-administered MAC address for a
    /// domain's interface (matching the `00:16:3e` Xen OUI convention,
    /// flagged locally administered).
    pub fn mac_for(dom: DomId, index: u32) -> [u8; 6] {
        [
            0x06,
            0x16,
            0x3e,
            ((dom.0 >> 8) & 0xff) as u8,
            (dom.0 & 0xff) as u8,
            (index & 0xff) as u8,
        ]
    }

    /// Create the frontend and backend XenStore entries, allocate rings and
    /// an event channel. The device is left in the `Initialised`/`InitWait`
    /// state pair, ready for the hotplug step and connection.
    pub fn setup(
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        dom: DomId,
        index: u32,
    ) -> XsResult<VifDevice> {
        let mac = Self::mac_for(dom, index);
        let tx_ring = grants
            .grant(dom, DomId::DOM0, false)
            // jitsu-lint: allow(P001, "a freshly built domain starts under its grant quota")
            .expect("grant capacity");
        let rx_ring = grants
            .grant(dom, DomId::DOM0, false)
            // jitsu-lint: allow(P001, "a freshly built domain starts under its grant quota")
            .expect("grant capacity");
        let port = evtchn.alloc_unbound(dom, DomId::DOM0);

        let fe = frontend_path(dom, DeviceKind::Vif, index);
        let be = backend_path(DomId::DOM0, dom, DeviceKind::Vif, index);
        let mac_str = format!(
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]
        );

        xs.write(DomId::DOM0, None, &format!("{fe}/mac"), mac_str.as_bytes())?;
        xs.write(DomId::DOM0, None, &format!("{fe}/backend"), be.as_bytes())?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{fe}/tx-ring-ref"),
            tx_ring.0.to_string().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{fe}/rx-ring-ref"),
            rx_ring.0.to_string().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{fe}/event-channel"),
            port.0.to_string().as_bytes(),
        )?;
        write_state(xs, DomId::DOM0, &fe, XenbusState::Initialised)?;

        xs.write(DomId::DOM0, None, &format!("{be}/frontend"), fe.as_bytes())?;
        xs.write(DomId::DOM0, None, &format!("{be}/mac"), mac_str.as_bytes())?;
        xs.write(DomId::DOM0, None, &format!("{be}/bridge"), b"xenbr0")?;
        write_state(xs, DomId::DOM0, &be, XenbusState::InitWait)?;

        Ok(VifDevice {
            dom,
            index,
            mac,
            tx_ring,
            rx_ring,
            port,
            bridge_port: None,
        })
    }

    /// Run the backend side: map the rings, bind the event channel, attach
    /// the `vifN.M` backend to the bridge, and mark both ends connected.
    /// (The *time* this takes is charged separately via
    /// [`crate::hotplug::HotplugStyle`]; here we perform the state changes.)
    pub fn backend_connect(
        &mut self,
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        bridge: &mut Bridge,
    ) -> XsResult<()> {
        grants
            .map(self.dom, self.tx_ring, DomId::DOM0)
            // jitsu-lint: allow(P001, "the frontend granted these pages to the backend at setup")
            .expect("backend may map frontend ring");
        grants
            .map(self.dom, self.rx_ring, DomId::DOM0)
            // jitsu-lint: allow(P001, "the frontend granted these pages to the backend at setup")
            .expect("backend may map frontend ring");
        let _backend_port = evtchn
            .bind_interdomain(DomId::DOM0, self.dom, self.port)
            // jitsu-lint: allow(P001, "the port was allocated unbound on the previous lines")
            .expect("unbound port is bindable");
        let port = bridge.attach(format!("vif{}.{}", self.dom.0, self.index));
        self.bridge_port = Some(port);

        let fe = frontend_path(self.dom, DeviceKind::Vif, self.index);
        let be = backend_path(DomId::DOM0, self.dom, DeviceKind::Vif, self.index);
        write_state(xs, DomId::DOM0, &be, XenbusState::Connected)?;
        write_state(xs, DomId::DOM0, &fe, XenbusState::Connected)?;
        Ok(())
    }

    /// True once both ends report `Connected`.
    pub fn is_connected(&self, xs: &mut XenStore) -> bool {
        let fe = frontend_path(self.dom, DeviceKind::Vif, self.index);
        let be = backend_path(DomId::DOM0, self.dom, DeviceKind::Vif, self.index);
        read_state(xs, DomId::DOM0, &fe) == XenbusState::Connected
            && read_state(xs, DomId::DOM0, &be) == XenbusState::Connected
    }

    /// The blocking XenStore RPC overhead the frontend experiences while the
    /// backend/hotplug machinery completes, when it is *not* overlapped with
    /// the domain build (§3.1 optimisation (ii) removes this from the
    /// critical path).
    pub fn blocking_rpc_time(board: &Board) -> SimDuration {
        // ≈3.3 ms on x86 → ≈20 ms on the Cubieboard2.
        board.scale_cpu(SimDuration::from_micros(3_300))
    }

    /// The in-dom0 work of creating the vif backend device itself (netback
    /// allocation), excluding the hotplug script.
    pub fn backend_create_time(board: &Board) -> SimDuration {
        // ≈0.8 ms on x86 → ≈5 ms on ARM.
        board.scale_cpu(SimDuration::from_micros(830))
    }

    /// Tear the device down (guest shutdown): detach from the bridge and
    /// mark both ends closed.
    pub fn close(&mut self, xs: &mut XenStore, bridge: &mut Bridge) -> XsResult<()> {
        if let Some(port) = self.bridge_port.take() {
            // jitsu-lint: allow(R001, "shutdown is best-effort: the bridge may have dropped the port already")
            let _ = bridge.detach(port);
        }
        let fe = frontend_path(self.dom, DeviceKind::Vif, self.index);
        let be = backend_path(DomId::DOM0, self.dom, DeviceKind::Vif, self.index);
        write_state(xs, DomId::DOM0, &fe, XenbusState::Closed)?;
        write_state(xs, DomId::DOM0, &be, XenbusState::Closed)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;
    use xenstore::EngineKind;

    fn env() -> (XenStore, GrantTable, EventChannelTable, Bridge) {
        (
            XenStore::new(EngineKind::JitsuMerge),
            GrantTable::new(),
            EventChannelTable::new(),
            Bridge::new(),
        )
    }

    #[test]
    fn mac_addresses_are_deterministic_and_unicast() {
        let a = VifDevice::mac_for(DomId(5), 0);
        let b = VifDevice::mac_for(DomId(5), 0);
        let c = VifDevice::mac_for(DomId(6), 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[0] & 0x01, 0, "must be unicast");
        assert_eq!(a[0] & 0x02, 0x02, "locally administered");
    }

    #[test]
    fn setup_writes_frontend_and_backend_keys() {
        let (mut xs, mut gt, mut ec, _br) = env();
        let vif = VifDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5), 0).unwrap();
        let fe = frontend_path(DomId(5), DeviceKind::Vif, 0);
        let be = backend_path(DomId::DOM0, DomId(5), DeviceKind::Vif, 0);
        assert!(xs
            .read_string(DomId::DOM0, None, &format!("{fe}/mac"))
            .unwrap()
            .contains(':'));
        assert_eq!(
            xs.read_string(DomId::DOM0, None, &format!("{fe}/backend"))
                .unwrap(),
            be
        );
        assert_eq!(
            xs.read_string(DomId::DOM0, None, &format!("{be}/bridge"))
                .unwrap(),
            "xenbr0"
        );
        assert_eq!(
            read_state(&mut xs, DomId::DOM0, &fe),
            XenbusState::Initialised
        );
        assert_eq!(read_state(&mut xs, DomId::DOM0, &be), XenbusState::InitWait);
        assert!(!vif.is_connected(&mut xs));
        assert_ne!(vif.tx_ring, vif.rx_ring);
    }

    #[test]
    fn backend_connect_attaches_to_bridge_and_connects_both_ends() {
        let (mut xs, mut gt, mut ec, mut br) = env();
        let mut vif = VifDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5), 0).unwrap();
        vif.backend_connect(&mut xs, &mut gt, &mut ec, &mut br)
            .unwrap();
        assert!(vif.is_connected(&mut xs));
        assert_eq!(br.port_count(), 1);
        assert_eq!(br.port_name(vif.bridge_port.unwrap()), Some("vif5.0"));
        // The guest can now signal the backend over the event channel.
        assert!(ec.notify(DomId(5), vif.port).unwrap());
    }

    #[test]
    fn close_detaches_from_bridge() {
        let (mut xs, mut gt, mut ec, mut br) = env();
        let mut vif = VifDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5), 0).unwrap();
        vif.backend_connect(&mut xs, &mut gt, &mut ec, &mut br)
            .unwrap();
        vif.close(&mut xs, &mut br).unwrap();
        assert_eq!(br.port_count(), 0);
        assert!(vif.bridge_port.is_none());
        let fe = frontend_path(DomId(5), DeviceKind::Vif, 0);
        assert_eq!(read_state(&mut xs, DomId::DOM0, &fe), XenbusState::Closed);
    }

    #[test]
    fn timing_constants_scale_with_board() {
        let arm = BoardKind::Cubieboard2.board();
        let x86 = BoardKind::X86Server.board();
        assert!((15..30).contains(&VifDevice::blocking_rpc_time(&arm).as_millis()));
        assert!((3..9).contains(&VifDevice::backend_create_time(&arm).as_millis()));
        assert!(VifDevice::blocking_rpc_time(&x86) < VifDevice::blocking_rpc_time(&arm));
    }

    #[test]
    fn multiple_vifs_per_guest_get_distinct_indices() {
        let (mut xs, mut gt, mut ec, _br) = env();
        let v0 = VifDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5), 0).unwrap();
        let v1 = VifDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5), 1).unwrap();
        assert_ne!(v0.mac, v1.mac);
        assert!(xs
            .directory(DomId::DOM0, None, "/local/domain/5/device/vif")
            .unwrap()
            .contains(&"1".to_string()));
    }
}
