//! The PV console device.
//!
//! Every guest gets a console ring drained by the `xenconsoled` daemon in
//! dom0. Attaching it is cheap but *synchronous* in the stock toolstack: the
//! builder blocks while `xenconsoled` picks up the new ring and registers the
//! log file. Jitsu's final optimisation in Figure 4 ("Remove primary
//! console") makes this attachment asynchronous so it no longer sits on the
//! critical path of domain creation.

use super::{frontend_path, write_state, DeviceKind, XenbusState};
use crate::event_channel::{EventChannelTable, Port};
use crate::grant_table::{GrantRef, GrantTable};
use jitsu_sim::SimDuration;
use platform::Board;
use xenstore::{DomId, Result as XsResult, XenStore};

/// A guest console: one shared ring page plus an event channel, drained by
/// dom0's `xenconsoled`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsoleDevice {
    /// The guest the console belongs to.
    pub dom: DomId,
    /// Grant reference of the console ring page.
    pub ring_ref: GrantRef,
    /// The guest-side event channel port.
    pub port: Port,
    /// Buffered output not yet drained by `xenconsoled`.
    buffer: Vec<u8>,
}

impl ConsoleDevice {
    /// Allocate the console resources for a guest and publish them in
    /// XenStore (the `console/` keys the real toolstack writes).
    pub fn setup(
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        dom: DomId,
    ) -> XsResult<ConsoleDevice> {
        let ring_ref = grants
            .grant(dom, DomId::DOM0, false)
            // jitsu-lint: allow(P001, "a freshly built domain starts under its grant quota")
            .expect("fresh domain has grant capacity");
        let port = evtchn.alloc_unbound(dom, DomId::DOM0);
        let dir = frontend_path(dom, DeviceKind::Console, 0);
        xs.write(
            DomId::DOM0,
            None,
            &format!("{dir}/ring-ref"),
            ring_ref.0.to_string().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{dir}/port"),
            port.0.to_string().as_bytes(),
        )?;
        xs.write(DomId::DOM0, None, &format!("{dir}/type"), b"xenconsoled")?;
        write_state(xs, DomId::DOM0, &dir, XenbusState::Initialised)?;
        Ok(ConsoleDevice {
            dom,
            ring_ref,
            port,
            buffer: Vec::new(),
        })
    }

    /// The time `xenconsoled` takes to notice and attach the new console on
    /// a given board. This is the cost the "Remove primary console"
    /// optimisation takes off the critical path.
    pub fn attach_time(board: &Board) -> SimDuration {
        // ≈8.3 ms on the x86 server → ≈50 ms on the Cubieboard2.
        board.scale_cpu(SimDuration::from_micros(8_300))
    }

    /// Mark the console connected (what `xenconsoled` does once attached).
    pub fn mark_connected(&self, xs: &mut XenStore) -> XsResult<()> {
        let dir = frontend_path(self.dom, DeviceKind::Console, 0);
        write_state(xs, DomId::DOM0, &dir, XenbusState::Connected)
    }

    /// Guest writes bytes to its console.
    pub fn guest_write(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// `xenconsoled` drains buffered output for logging.
    pub fn drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buffer)
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::read_state;
    use platform::BoardKind;
    use xenstore::EngineKind;

    fn setup_env() -> (XenStore, GrantTable, EventChannelTable) {
        (
            XenStore::new(EngineKind::JitsuMerge),
            GrantTable::new(),
            EventChannelTable::new(),
        )
    }

    #[test]
    fn setup_publishes_keys() {
        let (mut xs, mut gt, mut ec) = setup_env();
        let console = ConsoleDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5)).unwrap();
        let dir = frontend_path(DomId(5), DeviceKind::Console, 0);
        assert_eq!(
            xs.read_string(DomId::DOM0, None, &format!("{dir}/ring-ref"))
                .unwrap(),
            console.ring_ref.0.to_string()
        );
        assert_eq!(
            xs.read_string(DomId::DOM0, None, &format!("{dir}/port"))
                .unwrap(),
            console.port.0.to_string()
        );
        assert_eq!(
            read_state(&mut xs, DomId::DOM0, &dir),
            XenbusState::Initialised
        );
        console.mark_connected(&mut xs).unwrap();
        assert_eq!(
            read_state(&mut xs, DomId::DOM0, &dir),
            XenbusState::Connected
        );
    }

    #[test]
    fn attach_time_scales_with_board() {
        let arm = ConsoleDevice::attach_time(&BoardKind::Cubieboard2.board());
        let x86 = ConsoleDevice::attach_time(&BoardKind::X86Server.board());
        assert!((45..60).contains(&arm.as_millis()), "arm={arm}");
        assert!(x86 < arm / 5);
    }

    #[test]
    fn guest_output_buffers_until_drained() {
        let (mut xs, mut gt, mut ec) = setup_env();
        let mut console = ConsoleDevice::setup(&mut xs, &mut gt, &mut ec, DomId(5)).unwrap();
        console.guest_write(b"MirageOS booting...\n");
        console.guest_write(b"TCP/IP ready\n");
        assert_eq!(
            console.buffered(),
            "MirageOS booting...\nTCP/IP ready\n".len()
        );
        let out = console.drain();
        assert!(out.starts_with(b"MirageOS"));
        assert_eq!(console.buffered(), 0);
        assert!(console.drain().is_empty());
    }
}
