//! Split (paravirtualised) devices.
//!
//! Xen/ARM has no emulated hardware at all: every virtual device uses the PV
//! split-driver model (§2.3). A *frontend* in the guest and a *backend* in
//! dom0 discover each other through XenStore, negotiate a shared ring (a
//! grant reference) and an event channel, and advance through the XenBus
//! state machine until both are `Connected`. This module implements the
//! state machine and the key layout; [`console`] and [`vif`] provide the two
//! devices every Jitsu unikernel attaches, and [`vbd`] the block device used
//! by the storage-backed appliances.

pub mod console;
pub mod vbd;
pub mod vif;

pub use console::ConsoleDevice;
pub use vbd::VbdDevice;
pub use vif::VifDevice;

use xenstore::{DomId, Result as XsResult, XenStore};

/// The kinds of split device the toolstack attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The PV console (`hvc0`), drained by `xenconsoled` in dom0.
    Console,
    /// A PV network interface (netfront/netback).
    Vif,
    /// A PV block device (blkfront/blkback).
    Vbd,
}

impl DeviceKind {
    /// The directory name used under `device/` and `backend/`.
    pub fn dir_name(self) -> &'static str {
        match self {
            DeviceKind::Console => "console",
            DeviceKind::Vif => "vif",
            DeviceKind::Vbd => "vbd",
        }
    }
}

/// XenBus connection states, as written to the `state` key of each end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum XenbusState {
    /// State unknown / key missing.
    Unknown = 0,
    /// The end is initialising.
    Initialising = 1,
    /// Backend waiting for frontend details.
    InitWait = 2,
    /// Frontend has published ring and event channel.
    Initialised = 3,
    /// Both ends connected; the device is live.
    Connected = 4,
    /// Shutting down.
    Closing = 5,
    /// Fully closed.
    Closed = 6,
}

impl XenbusState {
    /// Decode the numeric wire value.
    pub fn from_u8(v: u8) -> XenbusState {
        match v {
            1 => XenbusState::Initialising,
            2 => XenbusState::InitWait,
            3 => XenbusState::Initialised,
            4 => XenbusState::Connected,
            5 => XenbusState::Closing,
            6 => XenbusState::Closed,
            _ => XenbusState::Unknown,
        }
    }

    /// Encode for the `state` key.
    pub fn as_str(self) -> &'static str {
        match self {
            XenbusState::Unknown => "0",
            XenbusState::Initialising => "1",
            XenbusState::InitWait => "2",
            XenbusState::Initialised => "3",
            XenbusState::Connected => "4",
            XenbusState::Closing => "5",
            XenbusState::Closed => "6",
        }
    }
}

/// The XenStore path of a device frontend directory:
/// `/local/domain/<domid>/device/<kind>/<index>`.
pub fn frontend_path(dom: DomId, kind: DeviceKind, index: u32) -> String {
    format!(
        "/local/domain/{}/device/{}/{}",
        dom.0,
        kind.dir_name(),
        index
    )
}

/// The XenStore path of a device backend directory:
/// `/local/domain/<backend>/backend/<kind>/<frontend-domid>/<index>`.
pub fn backend_path(backend: DomId, frontend: DomId, kind: DeviceKind, index: u32) -> String {
    format!(
        "/local/domain/{}/backend/{}/{}/{}",
        backend.0,
        kind.dir_name(),
        frontend.0,
        index
    )
}

/// Read an end's XenBus state key (missing keys read as `Unknown`).
pub fn read_state(xs: &mut XenStore, reader: DomId, dir: &str) -> XenbusState {
    match xs.read_string(reader, None, &format!("{dir}/state")) {
        Ok(s) => XenbusState::from_u8(s.trim().parse::<u8>().unwrap_or(0)),
        Err(_) => XenbusState::Unknown,
    }
}

/// Write an end's XenBus state key.
pub fn write_state(
    xs: &mut XenStore,
    writer: DomId,
    dir: &str,
    state: XenbusState,
) -> XsResult<()> {
    xs.write(
        writer,
        None,
        &format!("{dir}/state"),
        state.as_str().as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xenstore::EngineKind;

    #[test]
    fn state_round_trip() {
        for v in 0..=6u8 {
            let s = XenbusState::from_u8(v);
            assert_eq!(s.as_str().parse::<u8>().unwrap(), v);
        }
        assert_eq!(XenbusState::from_u8(42), XenbusState::Unknown);
        assert!(XenbusState::Connected > XenbusState::Initialised);
    }

    #[test]
    fn path_layout_matches_xen_convention() {
        assert_eq!(
            frontend_path(DomId(5), DeviceKind::Vif, 0),
            "/local/domain/5/device/vif/0"
        );
        assert_eq!(
            backend_path(DomId::DOM0, DomId(5), DeviceKind::Vif, 0),
            "/local/domain/0/backend/vif/5/0"
        );
        assert_eq!(
            frontend_path(DomId(7), DeviceKind::Console, 1),
            "/local/domain/7/device/console/1"
        );
        assert_eq!(DeviceKind::Vbd.dir_name(), "vbd");
    }

    #[test]
    fn state_keys_read_and_write_through_xenstore() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let dir = frontend_path(DomId(5), DeviceKind::Vif, 0);
        assert_eq!(read_state(&mut xs, DomId::DOM0, &dir), XenbusState::Unknown);
        write_state(&mut xs, DomId::DOM0, &dir, XenbusState::Initialised).unwrap();
        assert_eq!(
            read_state(&mut xs, DomId::DOM0, &dir),
            XenbusState::Initialised
        );
        write_state(&mut xs, DomId::DOM0, &dir, XenbusState::Connected).unwrap();
        assert_eq!(
            read_state(&mut xs, DomId::DOM0, &dir),
            XenbusState::Connected
        );
    }
}
