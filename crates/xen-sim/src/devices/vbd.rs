//! The PV block device (blkfront / blkback).
//!
//! Unikernel appliances that persist data — such as the HTTP persistent
//! queue service whose throughput §4 measures — attach a virtual block
//! device backed by one of dom0's storage devices. The cost model simply
//! composes the backend storage device's timing with a fixed ring-protocol
//! overhead per request.

use super::{backend_path, frontend_path, write_state, DeviceKind, XenbusState};
use crate::event_channel::{EventChannelTable, Port};
use crate::grant_table::{GrantRef, GrantTable};
use jitsu_sim::{SimDuration, SimRng};
use platform::StorageDevice;
use xenstore::{DomId, Result as XsResult, XenStore};

/// A guest block device backed by a dom0 storage device.
#[derive(Debug, Clone)]
pub struct VbdDevice {
    /// Owning guest.
    pub dom: DomId,
    /// Device index (xvda = 0, xvdb = 1, …).
    pub index: u32,
    /// Ring grant reference.
    pub ring: GrantRef,
    /// Event channel port.
    pub port: Port,
    /// The backing store in dom0.
    pub backing: StorageDevice,
    /// Per-request ring/interrupt overhead.
    pub ring_overhead: SimDuration,
    bytes_read: u64,
    bytes_written: u64,
}

impl VbdDevice {
    /// Create the device and publish its XenStore entries.
    pub fn setup(
        xs: &mut XenStore,
        grants: &mut GrantTable,
        evtchn: &mut EventChannelTable,
        dom: DomId,
        index: u32,
        backing: StorageDevice,
    ) -> XsResult<VbdDevice> {
        let ring = grants
            .grant(dom, DomId::DOM0, false)
            // jitsu-lint: allow(P001, "a freshly built domain starts under its grant quota")
            .expect("grant capacity");
        let port = evtchn.alloc_unbound(dom, DomId::DOM0);
        let fe = frontend_path(dom, DeviceKind::Vbd, index);
        let be = backend_path(DomId::DOM0, dom, DeviceKind::Vbd, index);
        xs.write(
            DomId::DOM0,
            None,
            &format!("{fe}/ring-ref"),
            ring.0.to_string().as_bytes(),
        )?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{fe}/event-channel"),
            port.0.to_string().as_bytes(),
        )?;
        xs.write(DomId::DOM0, None, &format!("{fe}/backend"), be.as_bytes())?;
        write_state(xs, DomId::DOM0, &fe, XenbusState::Initialised)?;
        xs.write(
            DomId::DOM0,
            None,
            &format!("{be}/params"),
            backing.kind.label().as_bytes(),
        )?;
        write_state(xs, DomId::DOM0, &be, XenbusState::Connected)?;
        write_state(xs, DomId::DOM0, &fe, XenbusState::Connected)?;
        Ok(VbdDevice {
            dom,
            index,
            ring,
            port,
            backing,
            ring_overhead: SimDuration::from_micros(120),
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// Time to read `bytes` through the ring from the backing store.
    pub fn read(&mut self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        self.bytes_read += bytes as u64;
        self.ring_overhead + self.backing.read_time(bytes, rng)
    }

    /// Time to write `bytes` through the ring to the backing store.
    pub fn write(&mut self, bytes: usize, rng: &mut SimRng) -> SimDuration {
        self.bytes_written += bytes as u64;
        self.ring_overhead + self.backing.write_time(bytes, rng)
    }

    /// Total `(read, written)` byte counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::StorageKind;
    use xenstore::EngineKind;

    #[test]
    fn setup_and_io_accounting() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut gt = GrantTable::new();
        let mut ec = EventChannelTable::new();
        let mut rng = SimRng::seed_from_u64(3);
        let mut vbd = VbdDevice::setup(
            &mut xs,
            &mut gt,
            &mut ec,
            DomId(5),
            0,
            StorageKind::SdCard.device(),
        )
        .unwrap();
        let fe = frontend_path(DomId(5), DeviceKind::Vbd, 0);
        assert!(xs
            .exists(DomId::DOM0, None, &format!("{fe}/ring-ref"))
            .unwrap());

        let t_read = vbd.read(1024 * 1024, &mut rng);
        let t_write = vbd.write(512 * 1024, &mut rng);
        assert!(t_read > vbd.ring_overhead);
        assert!(t_write > vbd.ring_overhead);
        assert_eq!(vbd.counters(), (1024 * 1024, 512 * 1024));
    }

    #[test]
    fn sd_card_backed_reads_are_slower_than_ssd() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        let mut gt = GrantTable::new();
        let mut ec = EventChannelTable::new();
        let mut rng = SimRng::seed_from_u64(4);
        let mut sd = VbdDevice::setup(
            &mut xs,
            &mut gt,
            &mut ec,
            DomId(5),
            0,
            StorageKind::SdCard.device(),
        )
        .unwrap();
        let mut ssd = VbdDevice::setup(
            &mut xs,
            &mut gt,
            &mut ec,
            DomId(6),
            0,
            StorageKind::Ssd.device(),
        )
        .unwrap();
        let t_sd = sd.read(4 * 1024 * 1024, &mut rng);
        let t_ssd = ssd.read(4 * 1024 * 1024, &mut rng);
        assert!(t_sd > t_ssd);
    }
}
