//! # xen-sim — a Xen hypervisor substrate, simulated
//!
//! The paper's contribution is a toolstack, not a hypervisor: Jitsu drives
//! the ordinary Xen 4.4/4.5 control interfaces (domain construction,
//! XenStore coordination, grant tables, event channels, the split driver
//! model, dom0 hotplug scripts) and optimises how they are exercised. To
//! reproduce the toolstack's behaviour without ARM hardware this crate
//! implements those interfaces as an in-process model:
//!
//! * [`domain`] — domain descriptors and the lifecycle state machine;
//! * [`memory`] — physical page accounting, the memory zeroing cost that
//!   dominates domain-build time (Figure 4), and the two-stage ARM address
//!   translation layout of §2.3;
//! * [`grant_table`] / [`event_channel`] — the shared-memory grant and
//!   notification primitives that vchan (and hence Conduit) builds on;
//! * [`fdt`] — the Flattened Device Tree handed to ARM guests at boot;
//! * [`domain_builder`] — loads a kernel image, assigns and zeroes RAM,
//!   writes the FDT and produces per-stage timings;
//! * [`devices`] — the split-driver (XenBus) state machine for console,
//!   network and block devices;
//! * [`hotplug`] — the dom0 vif hotplug path in its three variants
//!   (bash script, dash script, inline ioctl) from §3.1;
//! * [`bridge`] — the dom0 software bridge frames traverse;
//! * [`scheduler`] — a minimal credit scheduler, used by the power model;
//! * [`toolstack`] — the `xl`-equivalent orchestration layer with the
//!   vanilla (serialised) and Jitsu (parallelised) build paths that
//!   Figure 4 sweeps.
//!
//! All timing is virtual ([`jitsu_sim`]); all coordination state lives in a
//! real [`xenstore::XenStore`] so the toolstack code paths are genuinely
//! exercised rather than stubbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod devices;
pub mod domain;
pub mod domain_builder;
pub mod event_channel;
pub mod fdt;
pub mod grant_table;
pub mod hotplug;
pub mod memory;
pub mod scheduler;
pub mod toolstack;

pub use bridge::Bridge;
pub use devices::{DeviceKind, XenbusState};
pub use domain::{Domain, DomainConfig, DomainState};
pub use domain_builder::{BuildReport, DomainBuilder};
pub use event_channel::{EventChannelTable, Port};
pub use fdt::FdtBuilder;
pub use grant_table::{GrantRef, GrantTable};
pub use hotplug::HotplugStyle;
pub use memory::{MemoryLayout, PageAllocator, PAGE_SIZE};
pub use scheduler::CreditScheduler;
pub use toolstack::{BootOptimisations, LaunchSlots, Toolstack};
pub use xenstore::DomId;
