//! Guest memory: page accounting, zeroing cost and the ARM unikernel
//! memory layout of §2.3.
//!
//! Most of the domain builder's work is "to initialise and zero out physical
//! memory pages, thus guests with less memory are naturally built more
//! quickly" (§3.1) — this is why Figure 4's build time grows with VM memory
//! and why 8–16 MiB unikernels have a structural advantage over 64–256 MiB
//! Linux guests. [`PageAllocator`] models the host's page pool and the cost
//! of scrubbing; [`MemoryLayout`] reproduces the fixed virtual→IPA mapping
//! MirageOS/ARM uses (stack at the bottom of RAM, 16 KB first-level
//! translation table of 1 MiB sections, kernel at offset 0x8000).

use jitsu_sim::SimDuration;
use platform::Board;
use xenstore::DomId;

/// Page size used throughout (4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Pages per MiB.
pub const PAGES_PER_MIB: usize = 1024 * 1024 / PAGE_SIZE;

/// Host physical page pool and per-domain accounting.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    total_pages: usize,
    free_pages: usize,
    /// (domain, pages) assignments.
    assignments: Vec<(DomId, usize)>,
    /// Rate at which dom0 can zero pages, in pages per millisecond,
    /// calibrated against Figure 4 on the Cubieboard2: the gap between
    /// building a 16 MiB and a 256 MiB guest is roughly 350 ms of extra
    /// scrubbing (650 ms vs "a full second" on the vanilla toolstack).
    zero_pages_per_ms: f64,
}

impl PageAllocator {
    /// Create a pool covering `total_mib` of guest-allocatable RAM with the
    /// given zeroing rate.
    pub fn new(total_mib: u32, zero_pages_per_ms: f64) -> PageAllocator {
        let total_pages = total_mib as usize * PAGES_PER_MIB;
        PageAllocator {
            total_pages,
            free_pages: total_pages,
            assignments: Vec::new(),
            zero_pages_per_ms: zero_pages_per_ms.max(1.0),
        }
    }

    /// A pool sized for a board, reserving 192 MiB for Xen and dom0, with a
    /// zeroing rate scaled by the board's CPU speed.
    pub fn for_board(board: &Board) -> PageAllocator {
        let reserved = 192u32;
        let guest_mib = board.ram_mib.saturating_sub(reserved).max(64);
        // Calibration: the x86 server scrubs ~1050 pages/ms; the ARM boards
        // are ~6x slower, giving ~175 pages/ms — so zeroing costs ≈23 ms for
        // a 16 MiB unikernel and ≈375 ms for a 256 MiB guest on ARM, the
        // memory-dependent component of Figure 4.
        let x86_rate = 1050.0;
        PageAllocator::new(guest_mib, x86_rate / board.cpu_scale)
    }

    /// Total pages in the pool.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages not currently assigned to any domain.
    pub fn free_pages(&self) -> usize {
        self.free_pages
    }

    /// Free memory in MiB.
    pub fn free_mib(&self) -> u32 {
        (self.free_pages / PAGES_PER_MIB) as u32
    }

    /// Pages assigned to a domain, if any.
    pub fn assigned_to(&self, dom: DomId) -> usize {
        self.assignments
            .iter()
            .find(|(d, _)| *d == dom)
            .map(|(_, p)| *p)
            .unwrap_or(0)
    }

    /// Assign `mib` of fresh (zeroed) memory to a domain. Returns the time
    /// spent zeroing, or `None` if the pool cannot satisfy the request.
    pub fn assign(&mut self, dom: DomId, mib: u32) -> Option<SimDuration> {
        let pages = mib as usize * PAGES_PER_MIB;
        if pages > self.free_pages {
            return None;
        }
        self.free_pages -= pages;
        self.assignments.push((dom, pages));
        Some(self.zeroing_time(pages))
    }

    /// Release a domain's memory back to the pool.
    pub fn release(&mut self, dom: DomId) -> usize {
        let mut released = 0;
        self.assignments.retain(|(d, p)| {
            if *d == dom {
                released += *p;
                false
            } else {
                true
            }
        });
        self.free_pages += released;
        released
    }

    /// Time to zero `pages` pages at the calibrated rate.
    pub fn zeroing_time(&self, pages: usize) -> SimDuration {
        SimDuration::from_millis_f64(pages as f64 / self.zero_pages_per_ms)
    }

    /// Time to zero a whole `mib` MiB assignment.
    pub fn zeroing_time_mib(&self, mib: u32) -> SimDuration {
        self.zeroing_time(mib as usize * PAGES_PER_MIB)
    }
}

/// One entry of the unikernel's first-level translation table: a 1 MiB
/// section mapping (MirageOS deliberately avoids second-level tables to
/// reduce TLB pressure, §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionMapping {
    /// Virtual address of the 1 MiB section (1 MiB aligned).
    pub virt: u32,
    /// Intermediate physical address it maps to.
    pub ipa: u32,
}

/// The fixed MirageOS/ARM memory layout from §2.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Base intermediate physical address of guest RAM (Xen 4.5 places guest
    /// RAM at 0x40000000).
    pub ram_base_ipa: u32,
    /// Guest RAM size in bytes.
    pub ram_bytes: u32,
    /// Virtual address of the stack (bottom of RAM so overflow faults).
    pub stack_virt: u32,
    /// Stack size in bytes.
    pub stack_bytes: u32,
    /// Virtual address of the first-level translation table.
    pub translation_table_virt: u32,
    /// Translation table size in bytes (16 KiB maps the whole 4 GiB space).
    pub translation_table_bytes: u32,
    /// Virtual address the kernel image is linked at (offset 0x8000, the
    /// zImage convention).
    pub kernel_virt: u32,
    /// Fixed offset added to a virtual address to obtain the IPA.
    pub virt_to_ipa_offset: u32,
}

impl MemoryLayout {
    /// The layout used by MirageOS on Xen 4.5/ARM (§2.3's table):
    ///
    /// | Virtual    | Physical    | Purpose                    |
    /// |------------|-------------|----------------------------|
    /// | 0x400000   | 0x40000000  | Stack (16 KB)              |
    /// | 0x404000   | 0x40004000  | Translation tables (16 KB) |
    /// | 0x408000   | 0x40008000  | Kernel image               |
    pub fn mirage_arm(ram_bytes: u32) -> MemoryLayout {
        MemoryLayout {
            ram_base_ipa: 0x4000_0000,
            ram_bytes,
            stack_virt: 0x0040_0000,
            stack_bytes: 16 * 1024,
            translation_table_virt: 0x0040_4000,
            translation_table_bytes: 16 * 1024,
            kernel_virt: 0x0040_8000,
            virt_to_ipa_offset: 0x4000_0000u32.wrapping_sub(0x0040_0000),
        }
    }

    /// Translate a guest virtual address to its IPA using the fixed offset
    /// (addresses wrap around the 32-bit space, so virtual 0xC0400000 maps
    /// back to IPA 0, as the paper notes).
    pub fn virt_to_ipa(&self, virt: u32) -> u32 {
        virt.wrapping_add(self.virt_to_ipa_offset)
    }

    /// Number of 4-byte first-level entries in the translation table.
    pub fn translation_entries(&self) -> u32 {
        self.translation_table_bytes / 4
    }

    /// Amount of address space each first-level entry maps (1 MiB sections).
    pub fn bytes_per_entry(&self) -> u64 {
        // 16 KiB of 4-byte entries covering the full 4 GiB space.
        (1u64 << 32) / self.translation_entries() as u64
    }

    /// Build the section mappings covering guest RAM.
    pub fn ram_sections(&self) -> Vec<SectionMapping> {
        let section = self.bytes_per_entry() as u32;
        let count = self.ram_bytes.div_ceil(section);
        (0..count)
            .map(|i| SectionMapping {
                virt: self.stack_virt.wrapping_add(i * section) & !(section - 1),
                ipa: self.ram_base_ipa + i * section,
            })
            .collect()
    }

    /// The order of regions from the bottom of RAM: stack, translation
    /// tables, kernel image (then data/bss and the allocator-managed heap).
    pub fn region_order_is_valid(&self) -> bool {
        self.stack_virt < self.translation_table_virt
            && self.translation_table_virt < self.kernel_virt
            && self.stack_virt + self.stack_bytes <= self.translation_table_virt
            && self.translation_table_virt + self.translation_table_bytes <= self.kernel_virt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::BoardKind;

    #[test]
    fn assign_and_release_pages() {
        let mut pa = PageAllocator::new(512, 100.0);
        assert_eq!(pa.free_mib(), 512);
        let t = pa.assign(DomId(1), 16).unwrap();
        assert!(t > SimDuration::ZERO);
        assert_eq!(pa.assigned_to(DomId(1)), 16 * PAGES_PER_MIB);
        assert_eq!(pa.free_mib(), 496);
        let released = pa.release(DomId(1));
        assert_eq!(released, 16 * PAGES_PER_MIB);
        assert_eq!(pa.free_mib(), 512);
        assert_eq!(pa.assigned_to(DomId(1)), 0);
        assert_eq!(pa.release(DomId(9)), 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pa = PageAllocator::new(64, 100.0);
        assert!(pa.assign(DomId(1), 48).is_some());
        assert!(pa.assign(DomId(2), 32).is_none());
        assert_eq!(pa.assigned_to(DomId(2)), 0);
        assert!(pa.assign(DomId(2), 16).is_some());
        assert_eq!(pa.free_pages(), 0);
    }

    #[test]
    fn zeroing_scales_with_memory() {
        let pa = PageAllocator::new(1024, 70.0);
        let t16 = pa.zeroing_time_mib(16);
        let t256 = pa.zeroing_time_mib(256);
        assert!(
            t256 > t16 * 15 && t256 < t16 * 17,
            "zeroing is linear in pages"
        );
    }

    #[test]
    fn arm_board_zeroing_matches_figure4_scale() {
        // Figure 4: on the Cubieboard2 the extra memory of a 256 MiB guest
        // adds roughly 350 ms of scrubbing over a 16 MiB unikernel.
        let board = BoardKind::Cubieboard2.board();
        let pa = PageAllocator::for_board(&board);
        let t256 = pa.zeroing_time_mib(256);
        assert!((300..450).contains(&t256.as_millis()), "t256={t256}");
        let t16 = pa.zeroing_time_mib(16);
        assert!((15..35).contains(&t16.as_millis()), "t16={t16}");
        // x86 is roughly 6x faster.
        let x86 = BoardKind::X86Server.board();
        let pax = PageAllocator::for_board(&x86);
        assert!(pax.zeroing_time_mib(256) < t256 / 5);
    }

    #[test]
    fn board_pool_reserves_dom0_memory() {
        let board = BoardKind::Cubieboard2.board(); // 1 GiB
        let pa = PageAllocator::for_board(&board);
        assert!(pa.free_mib() < 1024);
        assert!(pa.free_mib() >= 512);
    }

    #[test]
    fn mirage_layout_matches_paper_table() {
        let l = MemoryLayout::mirage_arm(16 * 1024 * 1024);
        assert_eq!(l.stack_virt, 0x400000);
        assert_eq!(l.translation_table_virt, 0x404000);
        assert_eq!(l.kernel_virt, 0x408000);
        assert_eq!(l.virt_to_ipa(0x400000), 0x4000_0000);
        assert_eq!(l.virt_to_ipa(0x404000), 0x4000_4000);
        assert_eq!(l.virt_to_ipa(0x408000), 0x4000_8000);
        // Addresses wrap: virtual 0xC0400000 maps back to physical 0.
        assert_eq!(l.virt_to_ipa(0xC040_0000), 0);
        assert!(l.region_order_is_valid());
    }

    #[test]
    fn translation_table_maps_whole_address_space_with_1mib_sections() {
        let l = MemoryLayout::mirage_arm(16 * 1024 * 1024);
        assert_eq!(l.translation_entries(), 4096, "16KB of 4-byte entries");
        assert_eq!(l.bytes_per_entry(), 1024 * 1024, "each entry maps 1MiB");
        let sections = l.ram_sections();
        assert_eq!(sections.len(), 16, "16MiB of RAM needs 16 sections");
        assert_eq!(sections[0].ipa, 0x4000_0000);
        assert_eq!(sections[1].ipa, 0x4010_0000);
    }

    #[test]
    fn stack_is_at_bottom_of_ram_for_overflow_detection() {
        // §2.3: the stack is placed at the start of RAM so an overflow
        // triggers a page fault rather than silently corrupting data.
        let l = MemoryLayout::mirage_arm(8 * 1024 * 1024);
        assert!(l.stack_virt < l.translation_table_virt);
        assert!(l.stack_virt < l.kernel_virt);
        assert_eq!(l.virt_to_ipa(l.stack_virt), l.ram_base_ipa);
    }
}
