//! The XenStore wire protocol.
//!
//! Guests talk to the store daemon over a shared-memory ring carrying
//! `xsd_sockmsg`-framed packets: a 16-byte little-endian header
//! (`type`, `req_id`, `tx_id`, `len`) followed by a NUL-separated payload.
//! This module implements the framing and the request/response encoding for
//! the operations the Jitsu toolstack uses. The `conduit` and `xen-sim`
//! crates exchange these packets over simulated rings, so the control path
//! exercised by the reproduction is byte-compatible in structure with the
//! real protocol.

use crate::error::{Error, Result};

/// Message type numbers, following `xen/include/public/io/xs_wire.h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum MsgType {
    Debug = 0,
    Directory = 1,
    Read = 2,
    GetPerms = 3,
    Watch = 4,
    Unwatch = 5,
    TransactionStart = 6,
    TransactionEnd = 7,
    Introduce = 8,
    Release = 9,
    GetDomainPath = 10,
    Write = 11,
    Mkdir = 12,
    Rm = 13,
    SetPerms = 14,
    WatchEvent = 15,
    Error = 16,
    IsDomainIntroduced = 17,
}

impl MsgType {
    /// Decode a wire type number.
    pub fn from_u32(v: u32) -> Option<MsgType> {
        use MsgType::*;
        Some(match v {
            0 => Debug,
            1 => Directory,
            2 => Read,
            3 => GetPerms,
            4 => Watch,
            5 => Unwatch,
            6 => TransactionStart,
            7 => TransactionEnd,
            8 => Introduce,
            9 => Release,
            10 => GetDomainPath,
            11 => Write,
            12 => Mkdir,
            13 => Rm,
            14 => SetPerms,
            15 => WatchEvent,
            16 => Error,
            17 => IsDomainIntroduced,
            _ => return None,
        })
    }
}

/// Maximum payload accepted on the wire (matching `XENSTORE_PAYLOAD_MAX`).
pub const PAYLOAD_MAX: usize = 4096;

/// One framed message (request or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Operation or response type.
    pub kind: MsgType,
    /// Request id echoed in the response, so clients can pipeline.
    pub req_id: u32,
    /// Transaction id, 0 when outside a transaction.
    pub tx_id: u32,
    /// Raw payload (NUL-separated strings).
    pub payload: Vec<u8>,
}

impl Message {
    /// Build a message from string segments joined by NUL bytes.
    pub fn from_segments(kind: MsgType, req_id: u32, tx_id: u32, segments: &[&str]) -> Message {
        Message {
            kind,
            req_id,
            tx_id,
            payload: segments.join("\0").into_bytes(),
        }
    }

    /// Split the payload on NUL bytes into string segments. A trailing NUL
    /// produces no empty trailing segment.
    pub fn segments(&self) -> Vec<String> {
        let mut parts: Vec<String> = self
            .payload
            .split(|&b| b == 0)
            .map(|s| String::from_utf8_lossy(s).into_owned())
            .collect();
        if parts.last().map(|s| s.is_empty()).unwrap_or(false) {
            parts.pop();
        }
        parts
    }

    /// Encode as header + payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.payload.len());
        out.extend_from_slice(&(self.kind as u32).to_le_bytes());
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&self.tx_id.to_le_bytes());
        // jitsu-lint: allow(N001, "decode rejects payloads above PAYLOAD_MAX (4096); the store never builds larger ones")
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decode one message from the front of `buf`. Returns the message and
    /// the number of bytes consumed, or `Ok(None)` if more bytes are needed.
    pub fn decode(buf: &[u8]) -> Result<Option<(Message, usize)>> {
        if buf.len() < 16 {
            return Ok(None);
        }
        // jitsu-lint: allow(P001, "the length guard above ensures a full 16-byte header")
        let kind_raw = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        // jitsu-lint: allow(P001, "the length guard above ensures a full 16-byte header")
        let req_id = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        // jitsu-lint: allow(P001, "the length guard above ensures a full 16-byte header")
        let tx_id = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        // jitsu-lint: allow(P001, "the length guard above ensures a full 16-byte header")
        let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
        if len > PAYLOAD_MAX {
            return Err(Error::Protocol(format!(
                "payload length {len} exceeds maximum {PAYLOAD_MAX}"
            )));
        }
        let kind = MsgType::from_u32(kind_raw)
            .ok_or_else(|| Error::Protocol(format!("unknown message type {kind_raw}")))?;
        if buf.len() < 16 + len {
            return Ok(None);
        }
        Ok(Some((
            Message {
                kind,
                req_id,
                tx_id,
                payload: buf[16..16 + len].to_vec(),
            },
            16 + len,
        )))
    }

    /// Build an error response carrying the errno name of `err`.
    pub fn error_response(req_id: u32, tx_id: u32, err: &Error) -> Message {
        Message::from_segments(MsgType::Error, req_id, tx_id, &[err.errno_name()])
    }

    /// True if this is an error response.
    pub fn is_error(&self) -> bool {
        self.kind == MsgType::Error
    }
}

/// A streaming decoder that accumulates bytes (as delivered by a shared
/// memory ring in arbitrary chunks) and yields complete messages.
#[derive(Debug, Default, Clone)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// Create an empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Feed bytes into the decoder.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete message, if any.
    pub fn next_message(&mut self) -> Result<Option<Message>> {
        match Message::decode(&self.buf)? {
            None => Ok(None),
            Some((msg, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
        }
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let m = Message::from_segments(MsgType::Write, 7, 3, &["/local/domain/5/name", "web"]);
        let bytes = m.encode();
        let (decoded, consumed) = Message::decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, m);
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded.segments(), vec!["/local/domain/5/name", "web"]);
    }

    #[test]
    fn decode_needs_full_header_and_payload() {
        let m = Message::from_segments(MsgType::Read, 1, 0, &["/a"]);
        let bytes = m.encode();
        assert!(Message::decode(&bytes[..10]).unwrap().is_none());
        assert!(Message::decode(&bytes[..bytes.len() - 1])
            .unwrap()
            .is_none());
    }

    #[test]
    fn decode_rejects_unknown_type_and_oversized_payload() {
        let mut bytes = Message::from_segments(MsgType::Read, 1, 0, &["/a"]).encode();
        bytes[0] = 200; // unknown type
        assert!(matches!(Message::decode(&bytes), Err(Error::Protocol(_))));

        let mut huge = Message::from_segments(MsgType::Read, 1, 0, &["/a"]).encode();
        huge[12..16].copy_from_slice(&(PAYLOAD_MAX as u32 + 1).to_le_bytes());
        assert!(matches!(Message::decode(&huge), Err(Error::Protocol(_))));
    }

    #[test]
    fn msg_type_round_trip() {
        for v in 0..=17u32 {
            let t = MsgType::from_u32(v).unwrap();
            assert_eq!(t as u32, v);
        }
        assert!(MsgType::from_u32(99).is_none());
    }

    #[test]
    fn segments_handles_trailing_nul_and_empty() {
        let m = Message {
            kind: MsgType::Watch,
            req_id: 0,
            tx_id: 0,
            payload: b"/path\0token\0".to_vec(),
        };
        assert_eq!(m.segments(), vec!["/path", "token"]);
        let empty = Message {
            kind: MsgType::Debug,
            req_id: 0,
            tx_id: 0,
            payload: Vec::new(),
        };
        assert_eq!(empty.segments(), Vec::<String>::new());
    }

    #[test]
    fn error_response_carries_errno() {
        let e = Message::error_response(9, 0, &Error::NoEntry("/x".into()));
        assert!(e.is_error());
        assert_eq!(e.segments(), vec!["ENOENT"]);
        assert_eq!(e.req_id, 9);
    }

    #[test]
    fn streaming_decoder_reassembles_chunks() {
        let m1 = Message::from_segments(MsgType::Watch, 1, 0, &["/conduit", "tok"]);
        let m2 = Message::from_segments(MsgType::Read, 2, 5, &["/local"]);
        let mut stream = m1.encode();
        stream.extend_from_slice(&m2.encode());

        let mut dec = Decoder::new();
        // Feed in awkward chunk sizes.
        for chunk in stream.chunks(7) {
            dec.push(chunk);
        }
        let got1 = dec.next_message().unwrap().unwrap();
        let got2 = dec.next_message().unwrap().unwrap();
        assert_eq!(got1, m1);
        assert_eq!(got2, m2);
        assert!(dec.next_message().unwrap().is_none());
        assert_eq!(dec.buffered(), 0);
    }
}
