//! Error types for XenStore operations.
//!
//! The variants mirror the errno values the real XenStore protocol returns
//! (`ENOENT`, `EACCES`, `EAGAIN`, …), so toolstack code built on this crate
//! handles the same failure modes as code written against the C daemon.

use std::fmt;

/// Result alias for XenStore operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors returned by XenStore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The path does not exist (`ENOENT`).
    NoEntry(String),
    /// The caller lacks permission for the requested access (`EACCES`).
    PermissionDenied(String),
    /// A transaction failed to commit due to a conflicting concurrent
    /// update and should be retried (`EAGAIN`).
    Again,
    /// The path or value is malformed (`EINVAL`).
    Invalid(String),
    /// The node already exists (`EEXIST`).
    Exists(String),
    /// The referenced transaction id is unknown.
    UnknownTransaction(u32),
    /// A per-domain quota was exceeded.
    QuotaExceeded(&'static str),
    /// The watch token is already registered for this path.
    DuplicateWatch,
    /// The watch to remove was not found.
    WatchNotFound,
    /// A wire-protocol message could not be decoded.
    Protocol(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoEntry(p) => write!(f, "ENOENT: no such node: {p}"),
            Error::PermissionDenied(p) => write!(f, "EACCES: permission denied: {p}"),
            Error::Again => write!(f, "EAGAIN: transaction conflict, retry"),
            Error::Invalid(m) => write!(f, "EINVAL: {m}"),
            Error::Exists(p) => write!(f, "EEXIST: node already exists: {p}"),
            Error::UnknownTransaction(id) => write!(f, "unknown transaction id {id}"),
            Error::QuotaExceeded(what) => write!(f, "quota exceeded: {what}"),
            Error::DuplicateWatch => write!(f, "watch already registered"),
            Error::WatchNotFound => write!(f, "watch not found"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// The errno-style short name used on the wire (e.g. `"ENOENT"`).
    pub fn errno_name(&self) -> &'static str {
        match self {
            Error::NoEntry(_) => "ENOENT",
            Error::PermissionDenied(_) => "EACCES",
            Error::Again => "EAGAIN",
            Error::Invalid(_) => "EINVAL",
            Error::Exists(_) => "EEXIST",
            Error::UnknownTransaction(_) => "EINVAL",
            Error::QuotaExceeded(_) => "E2BIG",
            Error::DuplicateWatch => "EEXIST",
            Error::WatchNotFound => "ENOENT",
            Error::Protocol(_) => "EIO",
        }
    }

    /// True if the operation should be retried (transaction conflicts).
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Again)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_errno() {
        assert!(Error::NoEntry("/a".into()).to_string().contains("ENOENT"));
        assert!(Error::PermissionDenied("/a".into())
            .to_string()
            .contains("EACCES"));
        assert!(Error::Again.to_string().contains("EAGAIN"));
        assert!(Error::Invalid("bad".into()).to_string().contains("bad"));
        assert!(Error::Exists("/a".into()).to_string().contains("EEXIST"));
        assert!(Error::UnknownTransaction(9).to_string().contains('9'));
        assert!(Error::QuotaExceeded("nodes").to_string().contains("nodes"));
        assert!(Error::Protocol("trunc".into())
            .to_string()
            .contains("trunc"));
    }

    #[test]
    fn errno_names() {
        assert_eq!(Error::NoEntry(String::new()).errno_name(), "ENOENT");
        assert_eq!(Error::Again.errno_name(), "EAGAIN");
        assert_eq!(Error::QuotaExceeded("watches").errno_name(), "E2BIG");
        assert_eq!(Error::DuplicateWatch.errno_name(), "EEXIST");
        assert_eq!(Error::WatchNotFound.errno_name(), "ENOENT");
    }

    #[test]
    fn retryability() {
        assert!(Error::Again.is_retryable());
        assert!(!Error::NoEntry(String::new()).is_retryable());
        assert!(!Error::PermissionDenied(String::new()).is_retryable());
    }
}
