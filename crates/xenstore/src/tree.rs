//! The store tree: a permission-checked hierarchical value store with
//! generation tracking.
//!
//! `Tree` implements the data model shared by the live store and by
//! transaction snapshots. Every mutation advances a monotonically increasing
//! *generation*; each node remembers the generation of its last value change
//! (`modified_gen`) and of its last child-list change (`children_gen`). The
//! transaction reconciliation engines in [`crate::engine`] compare these
//! against a transaction's start generation to decide whether concurrent
//! updates conflict.

use crate::error::{Error, Result};
use crate::node::{Node, MAX_VALUE_LEN};
use crate::path::Path;
use crate::perms::{Access, DomId, Permissions};

/// A permission-checked hierarchical store with generation tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    root: Node,
    generation: u64,
}

impl Default for Tree {
    fn default() -> Self {
        Tree::new()
    }
}

impl Tree {
    /// Create a tree containing only a dom0-owned, world-readable root.
    pub fn new() -> Tree {
        let perms = Permissions::with_default(DomId::DOM0, crate::perms::PermLevel::Read);
        Tree {
            root: Node::new(perms, 0),
            generation: 0,
        }
    }

    /// The current generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.root.subtree_size()
    }

    fn bump(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Immutable lookup.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        let mut node = &self.root;
        for comp in path.components() {
            node = node.children.get(comp)?;
        }
        Some(node)
    }

    fn get_mut(&mut self, path: &Path) -> Option<&mut Node> {
        let mut node = &mut self.root;
        for comp in path.components() {
            node = node.children.get_mut(comp)?;
        }
        Some(node)
    }

    /// True if the path names an existing node.
    pub fn exists(&self, path: &Path) -> bool {
        self.get(path).is_some()
    }

    fn check(&self, dom: DomId, path: &Path, access: Access) -> Result<()> {
        match self.get(path) {
            None => Err(Error::NoEntry(path.to_string())),
            Some(node) => {
                if node.perms.check(dom, access) {
                    Ok(())
                } else {
                    Err(Error::PermissionDenied(path.to_string()))
                }
            }
        }
    }

    /// Read a node's value.
    pub fn read(&self, dom: DomId, path: &Path) -> Result<Vec<u8>> {
        self.check(dom, path, Access::Read)?;
        Ok(self.get(path).expect("checked above").value.clone())
    }

    /// List a node's children (sorted).
    pub fn directory(&self, dom: DomId, path: &Path) -> Result<Vec<String>> {
        self.check(dom, path, Access::Read)?;
        Ok(self.get(path).expect("checked above").child_names())
    }

    /// Read a node's permissions.
    pub fn get_perms(&self, dom: DomId, path: &Path) -> Result<Permissions> {
        self.check(dom, path, Access::Read)?;
        Ok(self.get(path).expect("checked above").perms.clone())
    }

    /// Replace a node's permissions. Only the node owner (or dom0) may do so.
    pub fn set_perms(&mut self, dom: DomId, path: &Path, perms: Permissions) -> Result<()> {
        let node = self
            .get(path)
            .ok_or_else(|| Error::NoEntry(path.to_string()))?;
        if !dom.is_privileged() && node.perms.owner() != dom {
            return Err(Error::PermissionDenied(path.to_string()));
        }
        let gen = self.bump();
        let node = self.get_mut(path).expect("checked above");
        node.perms = perms;
        node.modified_gen = gen;
        Ok(())
    }

    /// Determine the permissions a new node at `path` created by `dom`
    /// should carry, honouring the create-restricted extension of its
    /// parent. Returns an error if the creation is not permitted.
    fn new_child_perms(&self, dom: DomId, parent: &Path) -> Result<Permissions> {
        let parent_node = self
            .get(parent)
            .ok_or_else(|| Error::NoEntry(parent.to_string()))?;
        if parent_node.perms.check(dom, Access::Write) {
            // Normal case: the creator owns what it creates; non-privileged
            // creations are owned by the creating domain.
            Ok(Permissions::owned_by(if dom.is_privileged() {
                parent_node.perms.owner()
            } else {
                dom
            }))
        } else if parent_node.perms.is_create_restricted() {
            // Jitsu extension (§3.2.3): anyone may create, but the new key is
            // visible only to the directory owner and the creator.
            Ok(parent_node.perms.restricted_child_perms(dom))
        } else {
            Err(Error::PermissionDenied(parent.to_string()))
        }
    }

    /// Create any missing ancestors of `path` (excluding `path` itself),
    /// returning an error if an ancestor cannot be created.
    fn ensure_parents(&mut self, dom: DomId, path: &Path) -> Result<()> {
        let ancestors = path.ancestry();
        // Skip the root (always exists) and the final element (the target).
        for p in &ancestors[..ancestors.len().saturating_sub(1)] {
            if !self.exists(p) {
                let parent = p.parent().expect("non-root ancestor has a parent");
                let perms = self.new_child_perms(dom, &parent)?;
                let gen = self.bump();
                let parent_node = self.get_mut(&parent).expect("parent exists");
                parent_node.children.insert(
                    p.basename().expect("non-root").to_string(),
                    Node::new(perms, gen),
                );
                parent_node.children_gen = gen;
            }
        }
        Ok(())
    }

    /// Write a value, creating the node (and any missing ancestors) if
    /// necessary, as the real store does.
    pub fn write(&mut self, dom: DomId, path: &Path, value: &[u8]) -> Result<()> {
        if path.is_root() {
            return Err(Error::Invalid("cannot write to the root node".into()));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(Error::Invalid(format!(
                "value larger than {MAX_VALUE_LEN} bytes"
            )));
        }
        if self.exists(path) {
            self.check(dom, path, Access::Write)?;
            let gen = self.bump();
            let node = self.get_mut(path).expect("checked above");
            node.value = value.to_vec();
            node.modified_gen = gen;
            return Ok(());
        }
        self.ensure_parents(dom, path)?;
        let parent = path.parent().expect("non-root");
        let perms = self.new_child_perms(dom, &parent)?;
        let gen = self.bump();
        let parent_node = self.get_mut(&parent).expect("parents ensured");
        let mut node = Node::new(perms, gen);
        node.value = value.to_vec();
        parent_node
            .children
            .insert(path.basename().expect("non-root").to_string(), node);
        parent_node.children_gen = gen;
        Ok(())
    }

    /// Create an empty node (no-op if it already exists, as in the real
    /// protocol).
    pub fn mkdir(&mut self, dom: DomId, path: &Path) -> Result<()> {
        if path.is_root() {
            return Ok(());
        }
        if self.exists(path) {
            return Ok(());
        }
        self.write(dom, path, b"")
    }

    /// Remove a node and its entire subtree. Removing a missing node returns
    /// `ENOENT`; removing the root is invalid.
    pub fn rm(&mut self, dom: DomId, path: &Path) -> Result<()> {
        if path.is_root() {
            return Err(Error::Invalid("cannot remove the root node".into()));
        }
        if !self.exists(path) {
            return Err(Error::NoEntry(path.to_string()));
        }
        self.check(dom, path, Access::Write)?;
        let parent = path.parent().expect("non-root");
        let gen = self.bump();
        let parent_node = self.get_mut(&parent).expect("child exists so parent does");
        parent_node
            .children
            .remove(path.basename().expect("non-root"));
        parent_node.children_gen = gen;
        Ok(())
    }

    /// Count the nodes owned by each domain — used for quota accounting.
    pub fn owned_count(&self, dom: DomId) -> usize {
        fn walk(node: &Node, dom: DomId) -> usize {
            let own = usize::from(node.perms.owner() == dom);
            own + node.children.values().map(|c| walk(c, dom)).sum::<usize>()
        }
        walk(&self.root, dom)
    }

    /// Collect every path in the tree (depth-first, sorted by component) —
    /// used by tests and the structural diff in the Jitsu merge engine.
    pub fn all_paths(&self) -> Vec<Path> {
        fn walk(node: &Node, prefix: &Path, out: &mut Vec<Path>) {
            out.push(prefix.clone());
            for (name, child) in &node.children {
                let p = prefix.child(name).expect("stored names are valid");
                walk(child, &p, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &Path::root(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::PermLevel;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn write_creates_missing_parents() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/local/domain/3/name"), b"http")
            .unwrap();
        assert!(t.exists(&p("/local")));
        assert!(t.exists(&p("/local/domain")));
        assert!(t.exists(&p("/local/domain/3")));
        assert_eq!(
            t.read(DomId::DOM0, &p("/local/domain/3/name")).unwrap(),
            b"http"
        );
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn read_missing_is_noent() {
        let t = Tree::new();
        assert_eq!(
            t.read(DomId::DOM0, &p("/nope")),
            Err(Error::NoEntry("/nope".into()))
        );
    }

    #[test]
    fn directory_lists_children_sorted() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/local/domain/3"), b"").unwrap();
        t.write(DomId::DOM0, &p("/local/domain/1"), b"").unwrap();
        t.write(DomId::DOM0, &p("/local/domain/2"), b"").unwrap();
        assert_eq!(
            t.directory(DomId::DOM0, &p("/local/domain")).unwrap(),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn mkdir_is_idempotent() {
        let mut t = Tree::new();
        t.mkdir(DomId::DOM0, &p("/conduit")).unwrap();
        t.mkdir(DomId::DOM0, &p("/conduit")).unwrap();
        t.mkdir(DomId::DOM0, &p("/")).unwrap();
        assert!(t.exists(&p("/conduit")));
    }

    #[test]
    fn rm_removes_subtree() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/b/c"), b"1").unwrap();
        t.write(DomId::DOM0, &p("/a/b/d"), b"2").unwrap();
        t.rm(DomId::DOM0, &p("/a/b")).unwrap();
        assert!(!t.exists(&p("/a/b")));
        assert!(!t.exists(&p("/a/b/c")));
        assert!(t.exists(&p("/a")));
        assert_eq!(
            t.rm(DomId::DOM0, &p("/a/b")),
            Err(Error::NoEntry("/a/b".into()))
        );
        assert!(t.rm(DomId::DOM0, &Path::root()).is_err());
    }

    #[test]
    fn root_write_rejected_and_value_size_limited() {
        let mut t = Tree::new();
        assert!(t.write(DomId::DOM0, &Path::root(), b"x").is_err());
        let big = vec![0u8; MAX_VALUE_LEN + 1];
        assert!(t.write(DomId::DOM0, &p("/big"), &big).is_err());
        let ok = vec![0u8; MAX_VALUE_LEN];
        assert!(t.write(DomId::DOM0, &p("/big"), &ok).is_ok());
    }

    #[test]
    fn generations_track_modifications() {
        let mut t = Tree::new();
        let g0 = t.generation();
        t.write(DomId::DOM0, &p("/a"), b"1").unwrap();
        let g1 = t.generation();
        assert!(g1 > g0);
        t.write(DomId::DOM0, &p("/a"), b"2").unwrap();
        let node = t.get(&p("/a")).unwrap();
        assert_eq!(node.modified_gen, t.generation());
        // Creating a child bumps the parent's children_gen but not its
        // modified_gen.
        let parent_modified_before = t.get(&p("/a")).unwrap().modified_gen;
        t.write(DomId::DOM0, &p("/a/b"), b"3").unwrap();
        let parent = t.get(&p("/a")).unwrap();
        assert_eq!(parent.modified_gen, parent_modified_before);
        assert_eq!(parent.children_gen, t.generation());
    }

    #[test]
    fn unprivileged_domains_cannot_touch_others_nodes() {
        let mut t = Tree::new();
        // dom0 creates a private area for dom3.
        t.write(DomId::DOM0, &p("/local/domain/3/name"), b"x")
            .unwrap();
        // A guest cannot read or write dom0-owned nodes...
        assert!(matches!(
            t.read(DomId(7), &p("/local/domain/3/name")),
            Err(Error::PermissionDenied(_))
        ));
        assert!(matches!(
            t.write(DomId(7), &p("/local/domain/3/name"), b"y"),
            Err(Error::PermissionDenied(_))
        ));
        // ...until granted access.
        let perms = Permissions::owned_by(DomId::DOM0).granting(DomId(7), PermLevel::Read);
        t.set_perms(DomId::DOM0, &p("/local/domain/3/name"), perms)
            .unwrap();
        assert!(t.read(DomId(7), &p("/local/domain/3/name")).is_ok());
        assert!(t.write(DomId(7), &p("/local/domain/3/name"), b"y").is_err());
    }

    #[test]
    fn unprivileged_creation_is_owned_by_creator() {
        let mut t = Tree::new();
        // dom0 gives dom7 a writable home directory.
        t.mkdir(DomId::DOM0, &p("/local/domain/7")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/7"),
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        t.write(DomId(7), &p("/local/domain/7/data/feature"), b"1")
            .unwrap();
        let node = t.get(&p("/local/domain/7/data/feature")).unwrap();
        assert_eq!(node.perms.owner(), DomId(7));
        // Another guest cannot see it.
        assert!(t
            .read(DomId(9), &p("/local/domain/7/data/feature"))
            .is_err());
    }

    #[test]
    fn create_restricted_directory_allows_foreign_creation() {
        let mut t = Tree::new();
        // The server (dom3) owns its listen queue and marks it
        // create-restricted so clients can enqueue connection requests.
        t.mkdir(DomId::DOM0, &p("/conduit/http_server/listen"))
            .unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/conduit/http_server/listen"),
            Permissions::owned_by(DomId(3)).create_restricted(),
        )
        .unwrap();
        // A client (dom7) may create its connection key...
        t.write(DomId(7), &p("/conduit/http_server/listen/conn1"), b"7")
            .unwrap();
        // ...which the server and the client can read, but others cannot.
        assert!(t
            .read(DomId(3), &p("/conduit/http_server/listen/conn1"))
            .is_ok());
        assert!(t
            .read(DomId(7), &p("/conduit/http_server/listen/conn1"))
            .is_ok());
        assert!(t
            .read(DomId(9), &p("/conduit/http_server/listen/conn1"))
            .is_err());
        // Without the flag, foreign creation is denied.
        t.mkdir(DomId::DOM0, &p("/conduit/other/listen")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/conduit/other/listen"),
            Permissions::owned_by(DomId(3)),
        )
        .unwrap();
        assert!(t
            .write(DomId(7), &p("/conduit/other/listen/conn1"), b"7")
            .is_err());
    }

    #[test]
    fn set_perms_requires_ownership() {
        let mut t = Tree::new();
        t.mkdir(DomId::DOM0, &p("/local/domain/3")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/3"),
            Permissions::owned_by(DomId(3)),
        )
        .unwrap();
        // dom7 does not own the node, so cannot change its perms.
        assert!(t
            .set_perms(
                DomId(7),
                &p("/local/domain/3"),
                Permissions::owned_by(DomId(7))
            )
            .is_err());
        // dom3 owns it and may.
        assert!(t
            .set_perms(
                DomId(3),
                &p("/local/domain/3"),
                Permissions::with_default(DomId(3), PermLevel::Read)
            )
            .is_ok());
        assert!(t
            .set_perms(DomId::DOM0, &p("/missing"), Permissions::owned_by(DomId(0)))
            .is_err());
    }

    #[test]
    fn owned_count_and_all_paths() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/b"), b"").unwrap();
        t.mkdir(DomId::DOM0, &p("/local/domain/7")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/7"),
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        t.write(DomId(7), &p("/local/domain/7/x"), b"1").unwrap();
        assert_eq!(t.owned_count(DomId(7)), 2);
        let paths = t.all_paths();
        assert!(paths.contains(&Path::root()));
        assert!(paths.contains(&p("/local/domain/7/x")));
        assert_eq!(paths.len(), t.node_count());
    }
}
