//! The store tree: a permission-checked hierarchical value store with
//! generation tracking, built on persistent (structurally shared) nodes.
//!
//! `Tree` implements the data model shared by the live store and by
//! transaction snapshots. The root is held behind an [`Arc`], so cloning a
//! tree — which is how transaction snapshots are taken — is an O(1) pointer
//! copy regardless of store size. Mutations use *path copying*: only the
//! nodes from the root down to the mutated node are copied (and only when
//! they are still shared with a snapshot); every sibling subtree stays
//! shared. This is what makes transactions cheap enough to open per
//! toolstack RPC under boot-storm load.
//!
//! Every mutation advances a monotonically increasing *generation*; each
//! node remembers the generation of its last value change (`modified_gen`)
//! and of its last child-list change (`children_gen`). The transaction
//! reconciliation engines in [`crate::engine`] compare node generations
//! between a transaction's base snapshot and the live tree to decide, at
//! node granularity, whether concurrent commits conflict.
//!
//! [`Tree::diff`] computes the structural difference between two trees,
//! skipping shared subtrees in O(1) via pointer equality — the store uses it
//! to fire watches from the committed merged tree and to keep per-domain
//! quota accounting incremental.

use crate::error::{Error, Result};
use crate::node::{Node, MAX_VALUE_LEN};
use crate::path::Path;
use crate::perms::{Access, DomId, Permissions};
use std::sync::Arc;

/// A permission-checked hierarchical store with generation tracking.
///
/// Cloning a `Tree` is O(1): the clone shares every node with the original
/// until one of the two is mutated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    root: Arc<Node>,
    generation: u64,
}

/// The structural difference between two trees, as computed by
/// [`Tree::diff`]. Every list is in depth-first (sorted-by-component)
/// order, which for [`Path`]'s component-wise ordering means each list is
/// sorted (binary-searchable) and parents always precede their descendants
/// in `added` and `removed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeDiff {
    /// Nodes present in `new` but not in `old`, with their owning domain in
    /// `new`.
    pub added: Vec<(Path, DomId)>,
    /// Nodes present in `old` but not in `new`, with their owning domain in
    /// `old`. A removed subtree contributes every removed descendant.
    pub removed: Vec<(Path, DomId)>,
    /// Nodes present in both whose value differs.
    pub value_changed: Vec<Path>,
    /// Nodes present in both whose permissions differ.
    pub perms_changed: Vec<Path>,
}

impl TreeDiff {
    /// True if the two trees were semantically identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.value_changed.is_empty()
            && self.perms_changed.is_empty()
    }

    /// Total number of recorded changes (a node changing both value and
    /// permissions counts twice).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len() + self.value_changed.len() + self.perms_changed.len()
    }

    /// Every path that changed in any way, sorted and deduplicated — the
    /// set of paths the store fires watches for after a commit.
    pub fn changed_paths(&self) -> Vec<Path> {
        let mut paths: Vec<Path> = self
            .added
            .iter()
            .map(|(p, _)| p.clone())
            .chain(self.removed.iter().map(|(p, _)| p.clone()))
            .chain(self.value_changed.iter().cloned())
            .chain(self.perms_changed.iter().cloned())
            .collect();
        paths.sort();
        paths.dedup();
        paths
    }

    /// The topmost removed paths: removed nodes whose ancestors all still
    /// exist. Removing exactly these (as subtrees) reproduces every entry
    /// of `removed`. Linear: `removed` is emitted depth-first with each
    /// subtree contiguous and root-first, so a path belongs to the current
    /// root's subtree iff that root is a prefix of it.
    pub fn removed_roots(&self) -> Vec<&Path> {
        let mut roots: Vec<&Path> = Vec::new();
        for (path, _) in &self.removed {
            if !roots.last().is_some_and(|root| root.is_prefix_of(path)) {
                roots.push(path);
            }
        }
        roots
    }
}

impl Default for Tree {
    fn default() -> Self {
        Tree::new()
    }
}

impl Tree {
    /// Create a tree containing only a dom0-owned, world-readable root.
    pub fn new() -> Tree {
        let perms = Permissions::with_default(DomId::DOM0, crate::perms::PermLevel::Read);
        Tree {
            root: Arc::new(Node::new(perms, 0)),
            generation: 0,
        }
    }

    /// The current generation counter.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.root.subtree_size()
    }

    /// True if `self` and `other` share their root node allocation — the
    /// case immediately after a snapshot, before either side has mutated.
    /// A shared root means the snapshot copied *zero* nodes.
    pub fn shares_root_with(&self, other: &Tree) -> bool {
        Arc::ptr_eq(&self.root, &other.root)
    }

    /// Number of nodes of `self` that are structurally shared (same
    /// allocation) with `other`. Together with [`Tree::node_count`] this
    /// measures how many nodes a sequence of mutations actually copied:
    /// `copied = node_count() - shared_node_count(snapshot)`.
    pub fn shared_node_count(&self, other: &Tree) -> usize {
        fn walk(a: &Arc<Node>, b: &Arc<Node>) -> usize {
            if Arc::ptr_eq(a, b) {
                return a.subtree_size();
            }
            let mut shared = 0;
            for (name, ca) in &a.children {
                if let Some(cb) = b.children.get(name) {
                    shared += walk(ca, cb);
                }
            }
            shared
        }
        walk(&self.root, &other.root)
    }

    fn bump(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Immutable lookup.
    pub fn get(&self, path: &Path) -> Option<&Node> {
        let mut node = &*self.root;
        for comp in path.components() {
            node = node.children.get(comp)?;
        }
        Some(node)
    }

    /// Mutable lookup via path copying: every node from the root to `path`
    /// that is still shared with a snapshot is copied (shallowly — its child
    /// *pointers* are cloned, not the subtrees), so the mutation never
    /// disturbs other trees holding the old nodes.
    fn get_mut(&mut self, path: &Path) -> Option<&mut Node> {
        let mut node = Arc::make_mut(&mut self.root);
        for comp in path.components() {
            let child = node.children.get_mut(comp)?;
            node = Arc::make_mut(child);
        }
        Some(node)
    }

    /// True if the path names an existing node.
    pub fn exists(&self, path: &Path) -> bool {
        self.get(path).is_some()
    }

    fn check(&self, dom: DomId, path: &Path, access: Access) -> Result<()> {
        match self.get(path) {
            None => Err(Error::NoEntry(path.to_string())),
            Some(node) => {
                if node.perms.check(dom, access) {
                    Ok(())
                } else {
                    Err(Error::PermissionDenied(path.to_string()))
                }
            }
        }
    }

    /// Read a node's value.
    pub fn read(&self, dom: DomId, path: &Path) -> Result<Vec<u8>> {
        self.check(dom, path, Access::Read)?;
        // jitsu-lint: allow(P001, "presence checked by the exists guard above")
        Ok(self.get(path).expect("checked above").value.clone())
    }

    /// List a node's children (sorted).
    pub fn directory(&self, dom: DomId, path: &Path) -> Result<Vec<String>> {
        self.check(dom, path, Access::Read)?;
        // jitsu-lint: allow(P001, "presence checked by the exists guard above")
        Ok(self.get(path).expect("checked above").child_names())
    }

    /// Read a node's permissions.
    pub fn get_perms(&self, dom: DomId, path: &Path) -> Result<Permissions> {
        self.check(dom, path, Access::Read)?;
        // jitsu-lint: allow(P001, "presence checked by the exists guard above")
        Ok(self.get(path).expect("checked above").perms.clone())
    }

    /// Replace a node's permissions. Only the node owner (or dom0) may do so.
    pub fn set_perms(&mut self, dom: DomId, path: &Path, perms: Permissions) -> Result<()> {
        let node = self
            .get(path)
            .ok_or_else(|| Error::NoEntry(path.to_string()))?;
        if !dom.is_privileged() && node.perms.owner() != dom {
            return Err(Error::PermissionDenied(path.to_string()));
        }
        let gen = self.bump();
        // jitsu-lint: allow(P001, "presence checked by the exists guard above")
        let node = self.get_mut(path).expect("checked above");
        node.perms = perms;
        node.modified_gen = gen;
        Ok(())
    }

    /// Determine the permissions a new node at `path` created by `dom`
    /// should carry, honouring the create-restricted extension of its
    /// parent. Returns an error if the creation is not permitted.
    fn new_child_perms(&self, dom: DomId, parent: &Path) -> Result<Permissions> {
        let parent_node = self
            .get(parent)
            .ok_or_else(|| Error::NoEntry(parent.to_string()))?;
        if parent_node.perms.check(dom, Access::Write) {
            // Normal case: the creator owns what it creates; non-privileged
            // creations are owned by the creating domain.
            Ok(Permissions::owned_by(if dom.is_privileged() {
                parent_node.perms.owner()
            } else {
                dom
            }))
        } else if parent_node.perms.is_create_restricted() {
            // Jitsu extension (§3.2.3): anyone may create, but the new key is
            // visible only to the directory owner and the creator.
            Ok(parent_node.perms.restricted_child_perms(dom))
        } else {
            Err(Error::PermissionDenied(parent.to_string()))
        }
    }

    /// Create any missing ancestors of `path` (excluding `path` itself),
    /// returning an error if an ancestor cannot be created.
    fn ensure_parents(&mut self, dom: DomId, path: &Path) -> Result<()> {
        let ancestors = path.ancestry();
        // Skip the root (always exists) and the final element (the target).
        for p in &ancestors[..ancestors.len().saturating_sub(1)] {
            if !self.exists(p) {
                // jitsu-lint: allow(P001, "the loop skips the root, so every ancestor has a parent")
                let parent = p.parent().expect("non-root ancestor has a parent");
                let perms = self.new_child_perms(dom, &parent)?;
                let gen = self.bump();
                // jitsu-lint: allow(P001, "ensure_parents created this ancestor just above")
                let parent_node = self.get_mut(&parent).expect("parent exists");
                parent_node.children.insert(
                    // jitsu-lint: allow(P001, "non-root paths always have a basename")
                    p.basename().expect("non-root").to_string(),
                    Arc::new(Node::new(perms, gen)),
                );
                parent_node.children_gen = gen;
            }
        }
        Ok(())
    }

    /// Write a value, creating the node (and any missing ancestors) if
    /// necessary, as the real store does.
    pub fn write(&mut self, dom: DomId, path: &Path, value: &[u8]) -> Result<()> {
        if path.is_root() {
            return Err(Error::Invalid("cannot write to the root node".into()));
        }
        if value.len() > MAX_VALUE_LEN {
            return Err(Error::Invalid(format!(
                "value larger than {MAX_VALUE_LEN} bytes"
            )));
        }
        if self.exists(path) {
            self.check(dom, path, Access::Write)?;
            let gen = self.bump();
            // jitsu-lint: allow(P001, "presence checked by the exists guard above")
            let node = self.get_mut(path).expect("checked above");
            node.value = value.to_vec();
            node.modified_gen = gen;
            return Ok(());
        }
        self.ensure_parents(dom, path)?;
        // jitsu-lint: allow(P001, "write rejects the root path before this point")
        let parent = path.parent().expect("non-root");
        let perms = self.new_child_perms(dom, &parent)?;
        let gen = self.bump();
        // jitsu-lint: allow(P001, "ensure_parents created the parent spine")
        let parent_node = self.get_mut(&parent).expect("parents ensured");
        let mut node = Node::new(perms, gen);
        node.value = value.to_vec();
        parent_node.children.insert(
            // jitsu-lint: allow(P001, "non-root paths always have a basename")
            path.basename().expect("non-root").to_string(),
            Arc::new(node),
        );
        parent_node.children_gen = gen;
        Ok(())
    }

    /// Create an empty node (no-op if it already exists, as in the real
    /// protocol).
    pub fn mkdir(&mut self, dom: DomId, path: &Path) -> Result<()> {
        if path.is_root() {
            return Ok(());
        }
        if self.exists(path) {
            return Ok(());
        }
        self.write(dom, path, b"")
    }

    /// Remove a node and its entire subtree. Removing a missing node returns
    /// `ENOENT`; removing the root is invalid.
    pub fn rm(&mut self, dom: DomId, path: &Path) -> Result<()> {
        if path.is_root() {
            return Err(Error::Invalid("cannot remove the root node".into()));
        }
        if !self.exists(path) {
            return Err(Error::NoEntry(path.to_string()));
        }
        self.check(dom, path, Access::Write)?;
        // jitsu-lint: allow(P001, "rm rejects the root path before this point")
        let parent = path.parent().expect("non-root");
        let gen = self.bump();
        // jitsu-lint: allow(P001, "the child was found, so its parent is present")
        let parent_node = self.get_mut(&parent).expect("child exists so parent does");
        parent_node
            .children
            // jitsu-lint: allow(P001, "non-root paths always have a basename")
            .remove(path.basename().expect("non-root"));
        parent_node.children_gen = gen;
        Ok(())
    }

    /// Count the nodes owned by each domain by walking the whole tree.
    ///
    /// This is the O(store) reference implementation; the store keeps an
    /// incremental count maintained from [`Tree::diff`]s on its hot path and
    /// uses this walk only in tests to cross-check it.
    pub fn owned_count(&self, dom: DomId) -> usize {
        fn walk(node: &Node, dom: DomId) -> usize {
            let own = usize::from(node.perms.owner() == dom);
            own + node.children.values().map(|c| walk(c, dom)).sum::<usize>()
        }
        walk(&self.root, dom)
    }

    /// Collect every path in the tree (depth-first, sorted by component) —
    /// used by tests and the structural diff in the Jitsu merge engine.
    pub fn all_paths(&self) -> Vec<Path> {
        fn walk(node: &Node, prefix: &Path, out: &mut Vec<Path>) {
            out.push(prefix.clone());
            for (name, child) in &node.children {
                // jitsu-lint: allow(P001, "child names were validated when inserted into the tree")
                let p = prefix.child(name).expect("stored names are valid");
                walk(child, &p, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &Path::root(), &mut out);
        out
    }

    /// Compute the structural difference from `old` to `new`.
    ///
    /// Subtrees shared between the two trees (same `Arc` allocation) are
    /// skipped without descending, so diffing a tree against a snapshot it
    /// was mutated from costs O(changed paths), not O(store size). On
    /// unrelated trees the diff degrades gracefully to a full semantic
    /// comparison (generation counters are ignored — only value, permission
    /// and existence changes are reported).
    pub fn diff(old: &Tree, new: &Tree) -> TreeDiff {
        let mut diff = TreeDiff::default();
        fn record_subtree(node: &Node, path: &Path, out: &mut Vec<(Path, DomId)>) {
            out.push((path.clone(), node.perms.owner()));
            for (name, child) in &node.children {
                // jitsu-lint: allow(P001, "child names were validated when inserted into the tree")
                let p = path.child(name).expect("stored names are valid");
                record_subtree(child, &p, out);
            }
        }
        fn walk(old: &Arc<Node>, new: &Arc<Node>, path: &Path, diff: &mut TreeDiff) {
            if Arc::ptr_eq(old, new) {
                return;
            }
            if old.value != new.value {
                diff.value_changed.push(path.clone());
            }
            if old.perms != new.perms {
                diff.perms_changed.push(path.clone());
            }
            // Children: a single merge-iteration over both sorted maps, so
            // every diff list comes out in globally sorted DFS order (the
            // invariant `removed_roots` and the merge's binary searches
            // rely on).
            let mut old_children = old.children.iter().peekable();
            let mut new_children = new.children.iter().peekable();
            loop {
                let order = match (old_children.peek(), new_children.peek()) {
                    (None, None) => break,
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (Some((old_name, _)), Some((new_name, _))) => old_name.cmp(new_name),
                };
                match order {
                    std::cmp::Ordering::Less => {
                        // jitsu-lint: allow(P001, "peek returned Some on this branch")
                        let (name, old_child) = old_children.next().expect("peeked");
                        // jitsu-lint: allow(P001, "child names were validated when inserted into the tree")
                        let p = path.child(name).expect("stored names are valid");
                        record_subtree(old_child, &p, &mut diff.removed);
                    }
                    std::cmp::Ordering::Greater => {
                        // jitsu-lint: allow(P001, "peek returned Some on this branch")
                        let (name, new_child) = new_children.next().expect("peeked");
                        // jitsu-lint: allow(P001, "child names were validated when inserted into the tree")
                        let p = path.child(name).expect("stored names are valid");
                        record_subtree(new_child, &p, &mut diff.added);
                    }
                    std::cmp::Ordering::Equal => {
                        // jitsu-lint: allow(P001, "peek returned Some on this branch")
                        let (name, old_child) = old_children.next().expect("peeked");
                        // jitsu-lint: allow(P001, "peek returned Some on this branch")
                        let (_, new_child) = new_children.next().expect("peeked");
                        // jitsu-lint: allow(P001, "child names were validated when inserted into the tree")
                        let p = path.child(name).expect("stored names are valid");
                        walk(old_child, new_child, &p, diff);
                    }
                }
            }
        }
        walk(&old.root, &new.root, &Path::root(), &mut diff);
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::PermLevel;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn write_creates_missing_parents() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/local/domain/3/name"), b"http")
            .unwrap();
        assert!(t.exists(&p("/local")));
        assert!(t.exists(&p("/local/domain")));
        assert!(t.exists(&p("/local/domain/3")));
        assert_eq!(
            t.read(DomId::DOM0, &p("/local/domain/3/name")).unwrap(),
            b"http"
        );
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn read_missing_is_noent() {
        let t = Tree::new();
        assert_eq!(
            t.read(DomId::DOM0, &p("/nope")),
            Err(Error::NoEntry("/nope".into()))
        );
    }

    #[test]
    fn directory_lists_children_sorted() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/local/domain/3"), b"").unwrap();
        t.write(DomId::DOM0, &p("/local/domain/1"), b"").unwrap();
        t.write(DomId::DOM0, &p("/local/domain/2"), b"").unwrap();
        assert_eq!(
            t.directory(DomId::DOM0, &p("/local/domain")).unwrap(),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn mkdir_is_idempotent() {
        let mut t = Tree::new();
        t.mkdir(DomId::DOM0, &p("/conduit")).unwrap();
        t.mkdir(DomId::DOM0, &p("/conduit")).unwrap();
        t.mkdir(DomId::DOM0, &p("/")).unwrap();
        assert!(t.exists(&p("/conduit")));
    }

    #[test]
    fn rm_removes_subtree() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/b/c"), b"1").unwrap();
        t.write(DomId::DOM0, &p("/a/b/d"), b"2").unwrap();
        t.rm(DomId::DOM0, &p("/a/b")).unwrap();
        assert!(!t.exists(&p("/a/b")));
        assert!(!t.exists(&p("/a/b/c")));
        assert!(t.exists(&p("/a")));
        assert_eq!(
            t.rm(DomId::DOM0, &p("/a/b")),
            Err(Error::NoEntry("/a/b".into()))
        );
        assert!(t.rm(DomId::DOM0, &Path::root()).is_err());
    }

    #[test]
    fn root_write_rejected_and_value_size_limited() {
        let mut t = Tree::new();
        assert!(t.write(DomId::DOM0, &Path::root(), b"x").is_err());
        let big = vec![0u8; MAX_VALUE_LEN + 1];
        assert!(t.write(DomId::DOM0, &p("/big"), &big).is_err());
        let ok = vec![0u8; MAX_VALUE_LEN];
        assert!(t.write(DomId::DOM0, &p("/big"), &ok).is_ok());
    }

    #[test]
    fn generations_track_modifications() {
        let mut t = Tree::new();
        let g0 = t.generation();
        t.write(DomId::DOM0, &p("/a"), b"1").unwrap();
        let g1 = t.generation();
        assert!(g1 > g0);
        t.write(DomId::DOM0, &p("/a"), b"2").unwrap();
        let node = t.get(&p("/a")).unwrap();
        assert_eq!(node.modified_gen, t.generation());
        // Creating a child bumps the parent's children_gen but not its
        // modified_gen.
        let parent_modified_before = t.get(&p("/a")).unwrap().modified_gen;
        t.write(DomId::DOM0, &p("/a/b"), b"3").unwrap();
        let parent = t.get(&p("/a")).unwrap();
        assert_eq!(parent.modified_gen, parent_modified_before);
        assert_eq!(parent.children_gen, t.generation());
    }

    #[test]
    fn unprivileged_domains_cannot_touch_others_nodes() {
        let mut t = Tree::new();
        // dom0 creates a private area for dom3.
        t.write(DomId::DOM0, &p("/local/domain/3/name"), b"x")
            .unwrap();
        // A guest cannot read or write dom0-owned nodes...
        assert!(matches!(
            t.read(DomId(7), &p("/local/domain/3/name")),
            Err(Error::PermissionDenied(_))
        ));
        assert!(matches!(
            t.write(DomId(7), &p("/local/domain/3/name"), b"y"),
            Err(Error::PermissionDenied(_))
        ));
        // ...until granted access.
        let perms = Permissions::owned_by(DomId::DOM0).granting(DomId(7), PermLevel::Read);
        t.set_perms(DomId::DOM0, &p("/local/domain/3/name"), perms)
            .unwrap();
        assert!(t.read(DomId(7), &p("/local/domain/3/name")).is_ok());
        assert!(t.write(DomId(7), &p("/local/domain/3/name"), b"y").is_err());
    }

    #[test]
    fn unprivileged_creation_is_owned_by_creator() {
        let mut t = Tree::new();
        // dom0 gives dom7 a writable home directory.
        t.mkdir(DomId::DOM0, &p("/local/domain/7")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/7"),
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        t.write(DomId(7), &p("/local/domain/7/data/feature"), b"1")
            .unwrap();
        let node = t.get(&p("/local/domain/7/data/feature")).unwrap();
        assert_eq!(node.perms.owner(), DomId(7));
        // Another guest cannot see it.
        assert!(t
            .read(DomId(9), &p("/local/domain/7/data/feature"))
            .is_err());
    }

    #[test]
    fn create_restricted_directory_allows_foreign_creation() {
        let mut t = Tree::new();
        // The server (dom3) owns its listen queue and marks it
        // create-restricted so clients can enqueue connection requests.
        t.mkdir(DomId::DOM0, &p("/conduit/http_server/listen"))
            .unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/conduit/http_server/listen"),
            Permissions::owned_by(DomId(3)).create_restricted(),
        )
        .unwrap();
        // A client (dom7) may create its connection key...
        t.write(DomId(7), &p("/conduit/http_server/listen/conn1"), b"7")
            .unwrap();
        // ...which the server and the client can read, but others cannot.
        assert!(t
            .read(DomId(3), &p("/conduit/http_server/listen/conn1"))
            .is_ok());
        assert!(t
            .read(DomId(7), &p("/conduit/http_server/listen/conn1"))
            .is_ok());
        assert!(t
            .read(DomId(9), &p("/conduit/http_server/listen/conn1"))
            .is_err());
        // Without the flag, foreign creation is denied.
        t.mkdir(DomId::DOM0, &p("/conduit/other/listen")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/conduit/other/listen"),
            Permissions::owned_by(DomId(3)),
        )
        .unwrap();
        assert!(t
            .write(DomId(7), &p("/conduit/other/listen/conn1"), b"7")
            .is_err());
    }

    #[test]
    fn set_perms_requires_ownership() {
        let mut t = Tree::new();
        t.mkdir(DomId::DOM0, &p("/local/domain/3")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/3"),
            Permissions::owned_by(DomId(3)),
        )
        .unwrap();
        // dom7 does not own the node, so cannot change its perms.
        assert!(t
            .set_perms(
                DomId(7),
                &p("/local/domain/3"),
                Permissions::owned_by(DomId(7))
            )
            .is_err());
        // dom3 owns it and may.
        assert!(t
            .set_perms(
                DomId(3),
                &p("/local/domain/3"),
                Permissions::with_default(DomId(3), PermLevel::Read)
            )
            .is_ok());
        assert!(t
            .set_perms(DomId::DOM0, &p("/missing"), Permissions::owned_by(DomId(0)))
            .is_err());
    }

    #[test]
    fn owned_count_and_all_paths() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/b"), b"").unwrap();
        t.mkdir(DomId::DOM0, &p("/local/domain/7")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/7"),
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        t.write(DomId(7), &p("/local/domain/7/x"), b"1").unwrap();
        assert_eq!(t.owned_count(DomId(7)), 2);
        let paths = t.all_paths();
        assert!(paths.contains(&Path::root()));
        assert!(paths.contains(&p("/local/domain/7/x")));
        assert_eq!(paths.len(), t.node_count());
    }

    // ---------------- persistence / structural sharing -------------------

    #[test]
    fn snapshot_is_a_pointer_copy() {
        let mut t = Tree::new();
        for i in 0..200 {
            t.write(DomId::DOM0, &p(&format!("/warm/k{i}")), b"v")
                .unwrap();
        }
        let snap = t.clone();
        assert!(t.shares_root_with(&snap), "clone must not copy any node");
        assert_eq!(t.shared_node_count(&snap), t.node_count());
    }

    #[test]
    fn mutation_copies_only_the_root_to_leaf_path() {
        let mut t = Tree::new();
        for i in 0..100 {
            t.write(DomId::DOM0, &p(&format!("/data/bucket{}/k", i % 10)), b"v")
                .unwrap();
        }
        let snap = t.clone();
        let total = t.node_count();
        t.write(DomId::DOM0, &p("/data/bucket3/k"), b"w").unwrap();
        // Only /, /data, /data/bucket3 and /data/bucket3/k were copied.
        let copied = total - t.shared_node_count(&snap);
        assert_eq!(copied, 4, "path copying must touch exactly the spine");
        // The snapshot still reads the old value.
        assert_eq!(snap.read(DomId::DOM0, &p("/data/bucket3/k")).unwrap(), b"v");
        assert_eq!(t.read(DomId::DOM0, &p("/data/bucket3/k")).unwrap(), b"w");
    }

    #[test]
    fn snapshots_are_immune_to_later_mutations() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/b"), b"1").unwrap();
        t.write(DomId::DOM0, &p("/c"), b"2").unwrap();
        let snap = t.clone();
        let paths_before = snap.all_paths();
        t.rm(DomId::DOM0, &p("/a")).unwrap();
        t.write(DomId::DOM0, &p("/c"), b"3").unwrap();
        t.write(DomId::DOM0, &p("/d/e"), b"4").unwrap();
        assert_eq!(snap.all_paths(), paths_before);
        assert_eq!(snap.read(DomId::DOM0, &p("/a/b")).unwrap(), b"1");
        assert_eq!(snap.read(DomId::DOM0, &p("/c")).unwrap(), b"2");
        assert!(!snap.exists(&p("/d/e")));
    }

    // ---------------- structural diff -------------------------------------

    #[test]
    fn diff_of_identical_trees_is_empty() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/b"), b"1").unwrap();
        let snap = t.clone();
        let d = Tree::diff(&snap, &t);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn diff_reports_adds_removes_and_changes() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/keep"), b"same").unwrap();
        t.write(DomId::DOM0, &p("/gone/x"), b"1").unwrap();
        t.write(DomId::DOM0, &p("/edit"), b"old").unwrap();
        let old = t.clone();
        t.rm(DomId::DOM0, &p("/gone")).unwrap();
        t.write(DomId::DOM0, &p("/edit"), b"new").unwrap();
        t.write(DomId::DOM0, &p("/fresh/y"), b"2").unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/keep"),
            Permissions::with_default(DomId::DOM0, PermLevel::Write),
        )
        .unwrap();

        let d = Tree::diff(&old, &t);
        let added: Vec<String> = d.added.iter().map(|(p, _)| p.to_string()).collect();
        let removed: Vec<String> = d.removed.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(added, vec!["/fresh", "/fresh/y"]);
        assert_eq!(removed, vec!["/gone", "/gone/x"]);
        assert_eq!(d.value_changed, vec![p("/edit")]);
        assert_eq!(d.perms_changed, vec![p("/keep")]);
        // Removed roots collapse the subtree to its topmost node.
        assert_eq!(d.removed_roots(), vec![&p("/gone")]);
        // changed_paths is the sorted union.
        assert_eq!(
            d.changed_paths(),
            vec![
                p("/edit"),
                p("/fresh"),
                p("/fresh/y"),
                p("/gone"),
                p("/gone/x"),
                p("/keep")
            ]
        );
    }

    #[test]
    fn diff_lists_are_globally_sorted() {
        // The tricky interleaving: a deep addition under an early-sorting
        // common subtree plus a shallow addition under a late-sorting name.
        // A naive two-loop walk would emit /a/deep/x before /m even though
        // /m sorts later than neither — the merge-iteration keeps every
        // list globally sorted.
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/keep"), b"1").unwrap();
        t.write(DomId::DOM0, &p("/z/keep"), b"1").unwrap();
        let old = t.clone();
        t.write(DomId::DOM0, &p("/z/added"), b"2").unwrap();
        t.write(DomId::DOM0, &p("/m"), b"3").unwrap();
        t.write(DomId::DOM0, &p("/a/keep"), b"changed").unwrap();
        t.rm(DomId::DOM0, &p("/z/keep")).unwrap();
        let d = Tree::diff(&old, &t);
        let added: Vec<String> = d.added.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(added, vec!["/m", "/z/added"]);
        let mut sorted = d.added.clone();
        sorted.sort();
        assert_eq!(d.added, sorted);
        for list in [&d.value_changed, &d.perms_changed] {
            let mut sorted = list.clone();
            sorted.sort();
            assert_eq!(list, &sorted);
        }
        let mut sorted = d.removed.clone();
        sorted.sort();
        assert_eq!(d.removed, sorted);
    }

    #[test]
    fn removed_roots_collapses_each_subtree_independently() {
        let mut t = Tree::new();
        t.write(DomId::DOM0, &p("/a/x/deep"), b"1").unwrap();
        t.write(DomId::DOM0, &p("/a/y"), b"2").unwrap();
        t.write(DomId::DOM0, &p("/b/z"), b"3").unwrap();
        t.write(DomId::DOM0, &p("/keep"), b"4").unwrap();
        let old = t.clone();
        t.rm(DomId::DOM0, &p("/a/x")).unwrap();
        t.rm(DomId::DOM0, &p("/b")).unwrap();
        let d = Tree::diff(&old, &t);
        // /a/x (+deep) and /b (+z) removed; /a/y and /keep untouched.
        assert_eq!(d.removed.len(), 4);
        assert_eq!(d.removed_roots(), vec![&p("/a/x"), &p("/b")]);
    }

    #[test]
    fn diff_carries_owners_for_quota_accounting() {
        let mut t = Tree::new();
        t.mkdir(DomId::DOM0, &p("/local/domain/7")).unwrap();
        t.set_perms(
            DomId::DOM0,
            &p("/local/domain/7"),
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        let old = t.clone();
        t.write(DomId(7), &p("/local/domain/7/k"), b"v").unwrap();
        let d = Tree::diff(&old, &t);
        assert_eq!(d.added, vec![(p("/local/domain/7/k"), DomId(7))]);
        let back = Tree::diff(&t, &old);
        assert_eq!(back.removed, vec![(p("/local/domain/7/k"), DomId(7))]);
    }

    #[test]
    fn diff_ignores_generation_only_differences() {
        // Rebuilding the same content through a different op sequence yields
        // different generation stamps but an empty semantic diff.
        let mut a = Tree::new();
        a.write(DomId::DOM0, &p("/x"), b"1").unwrap();
        let mut b = Tree::new();
        b.mkdir(DomId::DOM0, &p("/x")).unwrap();
        b.write(DomId::DOM0, &p("/x"), b"1").unwrap();
        assert!(Tree::diff(&a, &b).is_empty());
    }
}
