//! Per-node access control.
//!
//! Each node carries an ordered permission list. The first entry names the
//! node's *owner* and the default access for everyone else; subsequent
//! entries grant specific domains read and/or write access, mirroring the
//! real XenStore `perms` model. Dom0 is always privileged.
//!
//! Jitsu extends this model for Conduit rendezvous (§3.2.3): a directory may
//! be marked **create-restricted**, meaning any domain may *create* new keys
//! inside it (so clients can enqueue connection requests), but each created
//! key is readable only by the directory owner and the creating domain —
//! analogous to setting the POSIX setgid and sticky bits on a shared spool
//! directory.

use std::fmt;

/// A Xen domain identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomId(pub u32);

impl DomId {
    /// The privileged control domain.
    pub const DOM0: DomId = DomId(0);

    /// True for dom0, which bypasses all permission checks.
    pub fn is_privileged(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

impl From<u32> for DomId {
    fn from(v: u32) -> DomId {
        DomId(v)
    }
}

/// The access level granted by one permission entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermLevel {
    /// No access.
    None,
    /// Read-only access.
    Read,
    /// Write-only access.
    Write,
    /// Read and write access.
    ReadWrite,
}

impl PermLevel {
    /// True if this level allows reading.
    pub fn allows_read(self) -> bool {
        matches!(self, PermLevel::Read | PermLevel::ReadWrite)
    }

    /// True if this level allows writing.
    pub fn allows_write(self) -> bool {
        matches!(self, PermLevel::Write | PermLevel::ReadWrite)
    }

    /// The single-letter code used by the wire protocol (`n`, `r`, `w`, `b`).
    pub fn code(self) -> char {
        match self {
            PermLevel::None => 'n',
            PermLevel::Read => 'r',
            PermLevel::Write => 'w',
            PermLevel::ReadWrite => 'b',
        }
    }

    /// Parse a single-letter code.
    pub fn from_code(c: char) -> Option<PermLevel> {
        match c {
            'n' => Some(PermLevel::None),
            'r' => Some(PermLevel::Read),
            'w' => Some(PermLevel::Write),
            'b' => Some(PermLevel::ReadWrite),
            _ => None,
        }
    }
}

/// One permission entry: a domain and its granted level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permission {
    /// The domain this entry applies to.
    pub dom: DomId,
    /// The granted level. For the first (owner) entry this is the *default*
    /// level for domains not otherwise listed.
    pub level: PermLevel,
}

/// The requested kind of access, used when checking permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read the value or list children.
    Read,
    /// Write the value, create children or delete.
    Write,
}

/// A node's full permission specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permissions {
    entries: Vec<Permission>,
    /// Jitsu extension: any domain may create direct children, but created
    /// keys default to being private to the creator and the owner.
    create_restricted: bool,
}

impl Permissions {
    /// Permissions owned by `owner`, default-deny for other domains.
    pub fn owned_by(owner: DomId) -> Permissions {
        Permissions {
            entries: vec![Permission {
                dom: owner,
                level: PermLevel::None,
            }],
            create_restricted: false,
        }
    }

    /// Permissions owned by `owner` with a given default level for others.
    pub fn with_default(owner: DomId, default: PermLevel) -> Permissions {
        Permissions {
            entries: vec![Permission {
                dom: owner,
                level: default,
            }],
            create_restricted: false,
        }
    }

    /// The owner of the node.
    pub fn owner(&self) -> DomId {
        self.entries[0].dom
    }

    /// The default level applied to unlisted domains.
    pub fn default_level(&self) -> PermLevel {
        self.entries[0].level
    }

    /// All entries, owner first.
    pub fn entries(&self) -> &[Permission] {
        &self.entries
    }

    /// Grant `dom` the given level (replacing any previous grant).
    pub fn grant(&mut self, dom: DomId, level: PermLevel) {
        if dom == self.owner() {
            return; // the owner always has full access
        }
        if let Some(e) = self.entries[1..].iter_mut().find(|e| e.dom == dom) {
            e.level = level;
        } else {
            self.entries.push(Permission { dom, level });
        }
    }

    /// Builder-style [`Permissions::grant`].
    pub fn granting(mut self, dom: DomId, level: PermLevel) -> Permissions {
        self.grant(dom, level);
        self
    }

    /// Mark this node as a create-restricted directory (Jitsu's Conduit
    /// `listen` directory extension).
    pub fn set_create_restricted(&mut self, restricted: bool) {
        self.create_restricted = restricted;
    }

    /// Builder-style [`Permissions::set_create_restricted`].
    pub fn create_restricted(mut self) -> Permissions {
        self.create_restricted = true;
        self
    }

    /// True if this directory allows any domain to create children, with
    /// created children private to the creator and owner.
    pub fn is_create_restricted(&self) -> bool {
        self.create_restricted
    }

    /// The effective level for a domain.
    pub fn level_for(&self, dom: DomId) -> PermLevel {
        if dom == self.owner() {
            return PermLevel::ReadWrite;
        }
        self.entries[1..]
            .iter()
            .find(|e| e.dom == dom)
            .map(|e| e.level)
            .unwrap_or_else(|| self.default_level())
    }

    /// Check whether `dom` may perform `access`. Dom0 is always allowed.
    pub fn check(&self, dom: DomId, access: Access) -> bool {
        if dom.is_privileged() {
            return true;
        }
        let level = self.level_for(dom);
        match access {
            Access::Read => level.allows_read(),
            Access::Write => level.allows_write(),
        }
    }

    /// The permissions a newly created child of a create-restricted
    /// directory should carry: owned by the directory owner, readable and
    /// writable by the creator, invisible to everyone else.
    pub fn restricted_child_perms(&self, creator: DomId) -> Permissions {
        Permissions::owned_by(self.owner()).granting(creator, PermLevel::ReadWrite)
    }

    /// Encode as the wire format used by `GET_PERMS`/`SET_PERMS`:
    /// `<code><domid>` entries joined by NULs, e.g. `n0\0r7`.
    pub fn to_wire(&self) -> String {
        self.entries
            .iter()
            .map(|e| format!("{}{}", e.level.code(), e.dom.0))
            .collect::<Vec<_>>()
            .join("\0")
    }

    /// Decode the wire format.
    pub fn from_wire(s: &str) -> Option<Permissions> {
        let mut entries = Vec::new();
        for part in s.split('\0') {
            if part.is_empty() {
                continue;
            }
            let mut chars = part.chars();
            let level = PermLevel::from_code(chars.next()?)?;
            let dom: u32 = chars.as_str().parse().ok()?;
            entries.push(Permission {
                dom: DomId(dom),
                level,
            });
        }
        if entries.is_empty() {
            return None;
        }
        Some(Permissions {
            entries,
            create_restricted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_is_privileged() {
        assert!(DomId::DOM0.is_privileged());
        assert!(!DomId(3).is_privileged());
        assert_eq!(DomId(3).to_string(), "dom3");
        assert_eq!(DomId::from(7u32), DomId(7));
    }

    #[test]
    fn perm_level_codes() {
        for l in [
            PermLevel::None,
            PermLevel::Read,
            PermLevel::Write,
            PermLevel::ReadWrite,
        ] {
            assert_eq!(PermLevel::from_code(l.code()), Some(l));
        }
        assert_eq!(PermLevel::from_code('x'), None);
        assert!(PermLevel::ReadWrite.allows_read());
        assert!(PermLevel::ReadWrite.allows_write());
        assert!(PermLevel::Read.allows_read());
        assert!(!PermLevel::Read.allows_write());
        assert!(!PermLevel::Write.allows_read());
        assert!(PermLevel::Write.allows_write());
        assert!(!PermLevel::None.allows_read());
    }

    #[test]
    fn owner_has_full_access() {
        let p = Permissions::owned_by(DomId(3));
        assert_eq!(p.owner(), DomId(3));
        assert!(p.check(DomId(3), Access::Read));
        assert!(p.check(DomId(3), Access::Write));
        assert_eq!(p.level_for(DomId(3)), PermLevel::ReadWrite);
    }

    #[test]
    fn others_get_default_level() {
        let p = Permissions::owned_by(DomId(3));
        assert!(!p.check(DomId(7), Access::Read));
        let open = Permissions::with_default(DomId(3), PermLevel::Read);
        assert!(open.check(DomId(7), Access::Read));
        assert!(!open.check(DomId(7), Access::Write));
        assert_eq!(open.default_level(), PermLevel::Read);
    }

    #[test]
    fn dom0_bypasses_checks() {
        let p = Permissions::owned_by(DomId(3));
        assert!(p.check(DomId::DOM0, Access::Read));
        assert!(p.check(DomId::DOM0, Access::Write));
    }

    #[test]
    fn grants_override_default() {
        let mut p = Permissions::owned_by(DomId(3));
        p.grant(DomId(7), PermLevel::Read);
        assert!(p.check(DomId(7), Access::Read));
        assert!(!p.check(DomId(7), Access::Write));
        p.grant(DomId(7), PermLevel::ReadWrite);
        assert!(p.check(DomId(7), Access::Write));
        assert_eq!(p.entries().len(), 2);
        // Granting to the owner is a no-op.
        p.grant(DomId(3), PermLevel::None);
        assert!(p.check(DomId(3), Access::Write));
    }

    #[test]
    fn create_restricted_children_are_private() {
        // The /conduit/http_server/listen directory: owned by the server
        // (dom 3), open for creation by anyone, created keys visible only to
        // the creator and the owner (§3.2.3).
        let listen = Permissions::owned_by(DomId(3)).create_restricted();
        assert!(listen.is_create_restricted());
        let child = listen.restricted_child_perms(DomId(7));
        assert_eq!(child.owner(), DomId(3));
        assert!(child.check(DomId(7), Access::Read));
        assert!(child.check(DomId(7), Access::Write));
        assert!(child.check(DomId(3), Access::Read));
        assert!(
            !child.check(DomId(9), Access::Read),
            "third parties must not observe the connection"
        );
    }

    #[test]
    fn wire_round_trip() {
        let p = Permissions::with_default(DomId(0), PermLevel::None)
            .granting(DomId(7), PermLevel::Read)
            .granting(DomId(3), PermLevel::ReadWrite);
        let wire = p.to_wire();
        assert_eq!(wire, "n0\0r7\0b3");
        let decoded = Permissions::from_wire(&wire).unwrap();
        assert_eq!(decoded.owner(), DomId(0));
        assert_eq!(decoded.level_for(DomId(7)), PermLevel::Read);
        assert_eq!(decoded.level_for(DomId(3)), PermLevel::ReadWrite);
        assert!(Permissions::from_wire("").is_none());
        assert!(Permissions::from_wire("z9").is_none());
        assert!(Permissions::from_wire("rabc").is_none());
    }
}
