//! Per-domain quotas.
//!
//! The real XenStore enforces per-domain limits so a misbehaving guest cannot
//! exhaust the store: a cap on the number of nodes a domain may own, on the
//! number of registered watches, and on concurrently open transactions. The
//! Jitsu toolstack relies on these defaults being generous enough for the
//! small per-unikernel footprint (a handful of device and conduit keys).

/// Per-domain resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quota {
    /// Maximum number of nodes a single unprivileged domain may own.
    pub max_nodes: usize,
    /// Maximum number of watches a single unprivileged domain may register.
    pub max_watches: usize,
    /// Maximum number of concurrently open transactions per domain.
    pub max_transactions: usize,
}

impl Default for Quota {
    fn default() -> Self {
        // Defaults mirror the xenstored defaults (1000 nodes, 128 watches,
        // 10 transactions).
        Quota {
            max_nodes: 1000,
            max_watches: 128,
            max_transactions: 10,
        }
    }
}

impl Quota {
    /// A quota that permits effectively unlimited usage (used for dom0 and
    /// for stress tests).
    pub fn unlimited() -> Quota {
        Quota {
            max_nodes: usize::MAX,
            max_watches: usize::MAX,
            max_transactions: usize::MAX,
        }
    }

    /// A deliberately tiny quota used in tests.
    pub fn tiny() -> Quota {
        Quota {
            max_nodes: 8,
            max_watches: 2,
            max_transactions: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_xenstored() {
        let q = Quota::default();
        assert_eq!(q.max_nodes, 1000);
        assert_eq!(q.max_watches, 128);
        assert_eq!(q.max_transactions, 10);
    }

    #[test]
    fn unlimited_is_effectively_infinite() {
        let q = Quota::unlimited();
        assert_eq!(q.max_nodes, usize::MAX);
    }

    #[test]
    fn tiny_is_small() {
        let q = Quota::tiny();
        assert!(q.max_nodes < Quota::default().max_nodes);
        assert_eq!(q.max_transactions, 1);
    }
}
