//! # xenstore — a hierarchical, transactional key-value store
//!
//! XenStore is the shared configuration database of a Xen host: a tree of
//! small values, one subtree per domain, used by the toolstack and by guests
//! to coordinate domain construction, device attachment and (in Jitsu)
//! conduit rendezvous and Synjitsu's TCP state handoff.
//!
//! This crate reimplements the store from scratch:
//!
//! * a **persistent, structurally shared** path/tree model with per-node
//!   permissions ([`path`], [`node`], [`tree`], [`perms`]) — snapshots are
//!   O(1) pointer copies, mutations copy only the root-to-leaf path, and
//!   [`tree::TreeDiff`] computes structural diffs that skip shared subtrees
//!   in O(1) — including Jitsu's *create-restricted* directory extension
//!   (§3.2.3 of the paper, analogous to POSIX setgid+sticky),
//! * watches ([`watch`]) — notification callbacks on subtree modification,
//! * per-domain quotas ([`quota`]),
//! * a binary wire protocol ([`wire`]) mirroring `xsd_sockmsg`,
//! * transactions with **three-way commit-time merging** and **three
//!   pluggable reconciliation engines** ([`engine`]): the serialising
//!   abort-and-retry behaviour of the C `xenstored`, the in-memory merge of
//!   the OCaml `oxenstored`, and the Jitsu fork's merge function that treats
//!   creations under a common directory root as non-conflicting. Each
//!   transaction keeps the pristine base tree it started from (an O(1)
//!   snapshot), and at commit time its *net effect* is grafted onto the
//!   concurrently-advanced live tree instead of aborting with `EAGAIN`,
//!   unless the engine detects a node-granularity conflict. Figure 3 of the
//!   paper compares the three engines under parallel VM start/stop load;
//!   `bench/src/bin/fig3.rs` regenerates it and `bench/src/bin/
//!   xenstore_storm.rs` measures abort/merge rates under storm load.
//!
//! ## Example
//!
//! ```
//! use xenstore::{XenStore, EngineKind, DomId};
//!
//! let mut xs = XenStore::new(EngineKind::JitsuMerge);
//! let dom0 = DomId::DOM0;
//! xs.write(dom0, None, "/local/domain/3/name", b"http_server").unwrap();
//! assert_eq!(xs.read(dom0, None, "/local/domain/3/name").unwrap(), b"http_server");
//!
//! // Transactions batch updates atomically.
//! let t = xs.transaction_start(dom0).unwrap();
//! xs.write(dom0, Some(t), "/conduit/http_server", b"3").unwrap();
//! xs.write(dom0, Some(t), "/conduit/http_server/listen", b"").unwrap();
//! xs.transaction_end(dom0, t, true).unwrap();
//! assert_eq!(xs.read(dom0, None, "/conduit/http_server").unwrap(), b"3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod node;
pub mod path;
pub mod perms;
pub mod quota;
pub mod store;
pub mod transaction;
pub mod tree;
pub mod watch;
pub mod wire;

pub use engine::{CostModel, EngineKind, TxnEngine};
pub use error::{Error, Result};
pub use node::Node;
pub use path::Path;
pub use perms::{DomId, PermLevel, Permission, Permissions};
pub use quota::Quota;
pub use store::{StoreStats, TxId, XenStore};
pub use transaction::Transaction;
pub use tree::{Tree, TreeDiff};
pub use watch::{Watch, WatchEvent, WatchManager};
