//! The top-level store: tree + watches + quotas + transactions.
//!
//! `XenStore` is the object the rest of the reproduction talks to. It accepts
//! requests on behalf of a domain (`DomId`), optionally inside a transaction
//! (`TxId`), enforces permissions and quotas, fires watches on mutation, and
//! delegates commit-time conflict decisions to the configured reconciliation
//! engine.

use crate::engine::{EngineKind, Reconcile, TxnEngine};
use crate::error::{Error, Result};
use crate::path::Path;
use crate::perms::{DomId, Permissions};
use crate::quota::Quota;
use crate::transaction::{Transaction, TxnOp};
use crate::tree::Tree;
use crate::watch::{WatchEvent, WatchManager};
use std::collections::HashMap;

/// A transaction identifier handed out by [`XenStore::transaction_start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(pub u32);

/// Counters describing the store's activity, used by Figure 3 and by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful commits.
    pub commits: u64,
    /// Commits rejected with `EAGAIN`.
    pub conflicts: u64,
    /// Transactions aborted by the client.
    pub aborts: u64,
    /// Individual operations processed (reads, writes, directory listings…).
    pub ops: u64,
    /// Watch events fired.
    pub watch_events: u64,
}

/// The shared store.
pub struct XenStore {
    tree: Tree,
    watches: WatchManager,
    engine: Box<dyn TxnEngine>,
    quota: Quota,
    transactions: HashMap<u32, Transaction>,
    next_tx_id: u32,
    stats: StoreStats,
}

impl std::fmt::Debug for XenStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XenStore")
            .field("engine", &self.engine.kind())
            .field("nodes", &self.tree.node_count())
            .field("open_transactions", &self.transactions.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl XenStore {
    /// Create a store with the given reconciliation engine and default
    /// quotas.
    pub fn new(engine: EngineKind) -> XenStore {
        XenStore::with_quota(engine, Quota::default())
    }

    /// Create a store with explicit quotas.
    pub fn with_quota(engine: EngineKind, quota: Quota) -> XenStore {
        XenStore {
            tree: Tree::new(),
            watches: WatchManager::new(),
            engine: engine.build(),
            quota,
            transactions: HashMap::new(),
            next_tx_id: 1,
            stats: StoreStats::default(),
        }
    }

    /// The engine this store reconciles transactions with.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// Activity counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The per-domain quota in force.
    pub fn quota(&self) -> Quota {
        self.quota
    }

    /// Number of nodes currently in the live tree.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Direct access to the live tree (read-only), for diagnostics.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    fn parse(path: &str) -> Result<Path> {
        Path::parse(path)
    }

    fn txn_mut(&mut self, id: TxId) -> Result<&mut Transaction> {
        self.transactions
            .get_mut(&id.0)
            .ok_or(Error::UnknownTransaction(id.0))
    }

    fn check_node_quota(&self, dom: DomId) -> Result<()> {
        if dom.is_privileged() {
            return Ok(());
        }
        if self.tree.owned_count(dom) >= self.quota.max_nodes {
            return Err(Error::QuotaExceeded("nodes"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Read a value.
    pub fn read(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<Vec<u8>> {
        self.stats.ops += 1;
        let path = Self::parse(path)?;
        match tx {
            None => self.tree.read(dom, &path),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                if txn.dom != dom {
                    return Err(Error::PermissionDenied(path.to_string()));
                }
                txn.note_read(&path);
                txn.snapshot.read(dom, &path)
            }
        }
    }

    /// Read a value as a UTF-8 string (lossy).
    pub fn read_string(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<String> {
        Ok(String::from_utf8_lossy(&self.read(dom, tx, path)?).into_owned())
    }

    /// True if the path exists (without error on absence).
    pub fn exists(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<bool> {
        match self.read(dom, tx, path) {
            Ok(_) => Ok(true),
            Err(Error::NoEntry(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// List a node's children.
    pub fn directory(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<Vec<String>> {
        self.stats.ops += 1;
        let path = Self::parse(path)?;
        match tx {
            None => self.tree.directory(dom, &path),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                if txn.dom != dom {
                    return Err(Error::PermissionDenied(path.to_string()));
                }
                txn.note_dir_read(&path);
                txn.snapshot.directory(dom, &path)
            }
        }
    }

    /// Read a node's permissions.
    pub fn get_perms(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<Permissions> {
        self.stats.ops += 1;
        let path = Self::parse(path)?;
        match tx {
            None => self.tree.get_perms(dom, &path),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                txn.note_read(&path);
                txn.snapshot.get_perms(dom, &path)
            }
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    fn apply_live(&mut self, dom: DomId, op: TxnOp) -> Result<()> {
        let changed_path = op.path().clone();
        match &op {
            TxnOp::Write { path, value } => self.tree.write(dom, path, value)?,
            TxnOp::Mkdir { path } => self.tree.mkdir(dom, path)?,
            TxnOp::Rm { path } => self.tree.rm(dom, path)?,
            TxnOp::SetPerms { path, perms } => self.tree.set_perms(dom, path, perms.clone())?,
        }
        self.stats.watch_events += self.watches.fire(&changed_path) as u64;
        Ok(())
    }

    fn apply(&mut self, dom: DomId, tx: Option<TxId>, op: TxnOp) -> Result<()> {
        self.stats.ops += 1;
        match tx {
            None => self.apply_live(dom, op),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                if txn.dom != dom {
                    return Err(Error::PermissionDenied(op.path().to_string()));
                }
                txn.apply(op)
            }
        }
    }

    /// Write a value (creating the node and missing ancestors if needed).
    pub fn write(&mut self, dom: DomId, tx: Option<TxId>, path: &str, value: &[u8]) -> Result<()> {
        let path = Self::parse(path)?;
        if !self.tree.exists(&path) {
            self.check_node_quota(dom)?;
        }
        self.apply(
            dom,
            tx,
            TxnOp::Write {
                path,
                value: value.to_vec(),
            },
        )
    }

    /// Create an empty node.
    pub fn mkdir(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<()> {
        let path = Self::parse(path)?;
        if !self.tree.exists(&path) {
            self.check_node_quota(dom)?;
        }
        self.apply(dom, tx, TxnOp::Mkdir { path })
    }

    /// Remove a subtree.
    pub fn rm(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<()> {
        let path = Self::parse(path)?;
        self.apply(dom, tx, TxnOp::Rm { path })
    }

    /// Replace a node's permissions.
    pub fn set_perms(
        &mut self,
        dom: DomId,
        tx: Option<TxId>,
        path: &str,
        perms: Permissions,
    ) -> Result<()> {
        let path = Self::parse(path)?;
        self.apply(dom, tx, TxnOp::SetPerms { path, perms })
    }

    // ------------------------------------------------------------------
    // Watches
    // ------------------------------------------------------------------

    /// Register a watch on a subtree.
    pub fn watch(&mut self, dom: DomId, path: &str, token: &str) -> Result<()> {
        if !dom.is_privileged() && self.watches.count_for(dom) >= self.quota.max_watches {
            return Err(Error::QuotaExceeded("watches"));
        }
        let path = Self::parse(path)?;
        self.watches.watch(dom, path, token)
    }

    /// Remove a previously registered watch.
    pub fn unwatch(&mut self, dom: DomId, path: &str, token: &str) -> Result<()> {
        let path = Self::parse(path)?;
        self.watches.unwatch(dom, &path, token)
    }

    /// Drain pending watch events for a domain.
    pub fn take_watch_events(&mut self, dom: DomId) -> Vec<WatchEvent> {
        self.watches.take_events(dom)
    }

    /// Number of watch events queued for a domain.
    pub fn pending_watch_events(&self, dom: DomId) -> usize {
        self.watches.pending(dom)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Open a transaction.
    pub fn transaction_start(&mut self, dom: DomId) -> Result<TxId> {
        let open_for_dom = self.transactions.values().filter(|t| t.dom == dom).count();
        if !dom.is_privileged() && open_for_dom >= self.quota.max_transactions {
            return Err(Error::QuotaExceeded("transactions"));
        }
        let id = self.next_tx_id;
        self.next_tx_id = self.next_tx_id.wrapping_add(1).max(1);
        self.transactions
            .insert(id, Transaction::begin(id, dom, &self.tree));
        Ok(TxId(id))
    }

    /// End a transaction. With `commit == false` the transaction is simply
    /// discarded. With `commit == true` the configured engine decides whether
    /// the batch applies; a conflicting commit returns [`Error::Again`] and
    /// the caller is expected to retry the whole transaction.
    pub fn transaction_end(&mut self, dom: DomId, tx: TxId, commit: bool) -> Result<()> {
        let txn = self
            .transactions
            .remove(&tx.0)
            .ok_or(Error::UnknownTransaction(tx.0))?;
        if txn.dom != dom {
            // Put it back: a foreign domain must not be able to close it.
            self.transactions.insert(tx.0, txn);
            return Err(Error::PermissionDenied(format!("transaction {}", tx.0)));
        }
        if !commit {
            self.stats.aborts += 1;
            return Ok(());
        }
        if txn.is_read_only() {
            self.stats.commits += 1;
            return Ok(());
        }
        match self.engine.reconcile(&self.tree, &txn) {
            Reconcile::Conflict { .. } => {
                self.stats.conflicts += 1;
                Err(Error::Again)
            }
            Reconcile::Commit => {
                txn.replay_onto(&mut self.tree)?;
                for path in txn.written_paths() {
                    self.stats.watch_events += self.watches.fire(path) as u64;
                }
                self.stats.commits += 1;
                Ok(())
            }
        }
    }

    /// Number of transactions currently open.
    pub fn open_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Convenience: run `body` inside a transaction, retrying on `EAGAIN`
    /// up to `max_retries` times. Returns the number of attempts made.
    pub fn with_transaction<F>(&mut self, dom: DomId, max_retries: u32, mut body: F) -> Result<u32>
    where
        F: FnMut(&mut XenStore, TxId) -> Result<()>,
    {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let tx = self.transaction_start(dom)?;
            if let Err(e) = body(self, tx) {
                let _ = self.transaction_end(dom, tx, false);
                return Err(e);
            }
            match self.transaction_end(dom, tx, true) {
                Ok(()) => return Ok(attempts),
                Err(Error::Again) if attempts <= max_retries => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Remove everything a domain owns and its watches — called when a
    /// domain is destroyed.
    pub fn domain_destroyed(&mut self, dom: DomId) {
        self.watches.remove_domain(dom);
        self.transactions.retain(|_, t| t.dom != dom);
        // Remove the conventional per-domain directory if present.
        let home = Path::domain_home(dom.0);
        if self.tree.exists(&home) {
            let _ = self.tree.rm(DomId::DOM0, &home);
            self.stats.watch_events += self.watches.fire(&home) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::PermLevel;

    fn store() -> XenStore {
        XenStore::new(EngineKind::JitsuMerge)
    }

    #[test]
    fn basic_read_write() {
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/local/domain/3/name", b"http")
            .unwrap();
        assert_eq!(
            xs.read(DomId::DOM0, None, "/local/domain/3/name").unwrap(),
            b"http"
        );
        assert_eq!(
            xs.read_string(DomId::DOM0, None, "/local/domain/3/name")
                .unwrap(),
            "http"
        );
        assert!(xs
            .exists(DomId::DOM0, None, "/local/domain/3/name")
            .unwrap());
        assert!(!xs.exists(DomId::DOM0, None, "/local/domain/9").unwrap());
        assert_eq!(
            xs.directory(DomId::DOM0, None, "/local/domain").unwrap(),
            vec!["3"]
        );
        assert!(xs.stats().ops >= 5);
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let mut xs = store();
        assert!(matches!(
            xs.write(DomId::DOM0, None, "not-absolute", b"x"),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            xs.read(DomId::DOM0, None, "/bad path"),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn transaction_commit_applies_batch_atomically() {
        let mut xs = store();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/conduit/http_server", b"3")
            .unwrap();
        xs.write(DomId::DOM0, Some(t), "/conduit/flows/1", b"(connecting)")
            .unwrap();
        // Not visible outside the transaction yet.
        assert!(!xs
            .exists(DomId::DOM0, None, "/conduit/http_server")
            .unwrap());
        // Visible inside.
        assert!(xs
            .exists(DomId::DOM0, Some(t), "/conduit/http_server")
            .unwrap());
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert!(xs
            .exists(DomId::DOM0, None, "/conduit/http_server")
            .unwrap());
        assert_eq!(xs.stats().commits, 1);
        assert_eq!(xs.open_transactions(), 0);
    }

    #[test]
    fn transaction_abort_discards_batch() {
        let mut xs = store();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/a", b"1").unwrap();
        xs.transaction_end(DomId::DOM0, t, false).unwrap();
        assert!(!xs.exists(DomId::DOM0, None, "/a").unwrap());
        assert_eq!(xs.stats().aborts, 1);
    }

    #[test]
    fn unknown_transaction_is_an_error() {
        let mut xs = store();
        assert!(matches!(
            xs.read(DomId::DOM0, Some(TxId(99)), "/a"),
            Err(Error::UnknownTransaction(99))
        ));
        assert!(matches!(
            xs.transaction_end(DomId::DOM0, TxId(99), true),
            Err(Error::UnknownTransaction(99))
        ));
    }

    #[test]
    fn foreign_domain_cannot_use_anothers_transaction() {
        let mut xs = store();
        let t = xs.transaction_start(DomId(3)).unwrap();
        assert!(matches!(
            xs.write(DomId(7), Some(t), "/x", b"1"),
            Err(Error::PermissionDenied(_))
        ));
        assert!(matches!(
            xs.transaction_end(DomId(7), t, true),
            Err(Error::PermissionDenied(_))
        ));
        // The rightful owner can still close it.
        assert!(xs.transaction_end(DomId(3), t, false).is_ok());
    }

    #[test]
    fn conflicting_commit_returns_eagain() {
        let mut xs = XenStore::new(EngineKind::Serial);
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/a", b"in-txn").unwrap();
        // A concurrent direct write advances the store.
        xs.write(DomId::DOM0, None, "/other", b"x").unwrap();
        assert_eq!(xs.transaction_end(DomId::DOM0, t, true), Err(Error::Again));
        assert_eq!(xs.stats().conflicts, 1);
        // The live tree did not take the transaction's write.
        assert!(!xs.exists(DomId::DOM0, None, "/a").unwrap());
    }

    #[test]
    fn jitsu_engine_allows_parallel_domain_creation_through_store() {
        let mut xs = store();
        // Two "toolstack threads" each build a domain in a transaction.
        let t1 = xs.transaction_start(DomId::DOM0).unwrap();
        let t2 = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t1), "/local/domain/5/name", b"u5")
            .unwrap();
        xs.write(DomId::DOM0, Some(t2), "/local/domain/6/name", b"u6")
            .unwrap();
        xs.transaction_end(DomId::DOM0, t1, true).unwrap();
        // With the Jitsu merge the second commit also succeeds.
        xs.transaction_end(DomId::DOM0, t2, true).unwrap();
        assert!(xs
            .exists(DomId::DOM0, None, "/local/domain/5/name")
            .unwrap());
        assert!(xs
            .exists(DomId::DOM0, None, "/local/domain/6/name")
            .unwrap());
        assert_eq!(xs.stats().conflicts, 0);
    }

    #[test]
    fn merge_engine_conflicts_on_parallel_domain_creation() {
        let mut xs = XenStore::new(EngineKind::Merge);
        let t1 = xs.transaction_start(DomId::DOM0).unwrap();
        let t2 = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t1), "/local/domain/5/name", b"u5")
            .unwrap();
        xs.write(DomId::DOM0, Some(t2), "/local/domain/6/name", b"u6")
            .unwrap();
        xs.transaction_end(DomId::DOM0, t1, true).unwrap();
        assert_eq!(xs.transaction_end(DomId::DOM0, t2, true), Err(Error::Again));
    }

    #[test]
    fn read_only_transactions_always_commit() {
        let mut xs = XenStore::new(EngineKind::Serial);
        xs.write(DomId::DOM0, None, "/a", b"1").unwrap();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        let _ = xs.read(DomId::DOM0, Some(t), "/a").unwrap();
        // Concurrent write would normally trip the serial engine.
        xs.write(DomId::DOM0, None, "/b", b"2").unwrap();
        assert!(xs.transaction_end(DomId::DOM0, t, true).is_ok());
    }

    #[test]
    fn with_transaction_retries_until_success() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        xs.write(DomId::DOM0, None, "/counter", b"0").unwrap();
        let attempts = xs
            .with_transaction(DomId::DOM0, 5, |xs, t| {
                let v = xs.read_string(DomId::DOM0, Some(t), "/counter")?;
                let n: u64 = v.parse().unwrap_or(0);
                xs.write(
                    DomId::DOM0,
                    Some(t),
                    "/counter",
                    (n + 1).to_string().as_bytes(),
                )
            })
            .unwrap();
        assert_eq!(attempts, 1);
        assert_eq!(xs.read_string(DomId::DOM0, None, "/counter").unwrap(), "1");
    }

    #[test]
    fn watches_fire_on_direct_and_transactional_writes() {
        let mut xs = store();
        xs.mkdir(DomId::DOM0, None, "/conduit/http_server/listen")
            .unwrap();
        xs.watch(DomId(3), "/conduit/http_server/listen", "listen-token")
            .unwrap();
        // Drain the initial synthetic event.
        assert_eq!(xs.take_watch_events(DomId(3)).len(), 1);

        xs.write(DomId::DOM0, None, "/conduit/http_server/listen/conn1", b"7")
            .unwrap();
        let evs = xs.take_watch_events(DomId(3));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path.to_string(), "/conduit/http_server/listen/conn1");
        assert_eq!(evs[0].token, "listen-token");

        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(
            DomId::DOM0,
            Some(t),
            "/conduit/http_server/listen/conn2",
            b"9",
        )
        .unwrap();
        assert_eq!(
            xs.pending_watch_events(DomId(3)),
            0,
            "no events until commit"
        );
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert_eq!(xs.take_watch_events(DomId(3)).len(), 1);
    }

    #[test]
    fn quotas_are_enforced_for_guests() {
        let mut xs = XenStore::with_quota(EngineKind::JitsuMerge, Quota::tiny());
        // Give dom7 a writable home.
        xs.mkdir(DomId::DOM0, None, "/local/domain/7").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/local/domain/7",
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        // Node quota.
        let mut hit_quota = false;
        for i in 0..20 {
            match xs.write(DomId(7), None, &format!("/local/domain/7/k{i}"), b"v") {
                Ok(()) => {}
                Err(Error::QuotaExceeded("nodes")) => {
                    hit_quota = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(hit_quota, "node quota must eventually trip");
        // Watch quota.
        xs.watch(DomId(7), "/local/domain/7", "w1").unwrap();
        xs.watch(DomId(7), "/local/domain/7/a", "w2").unwrap();
        assert_eq!(
            xs.watch(DomId(7), "/local/domain/7/b", "w3"),
            Err(Error::QuotaExceeded("watches"))
        );
        // Transaction quota.
        let _t1 = xs.transaction_start(DomId(7)).unwrap();
        assert_eq!(
            xs.transaction_start(DomId(7)).unwrap_err(),
            Error::QuotaExceeded("transactions")
        );
        // dom0 is exempt.
        for _ in 0..5 {
            xs.transaction_start(DomId::DOM0).unwrap();
        }
    }

    #[test]
    fn guest_perms_enforced_through_store() {
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/secret", b"s").unwrap();
        assert!(matches!(
            xs.read(DomId(5), None, "/secret"),
            Err(Error::PermissionDenied(_))
        ));
        xs.set_perms(
            DomId::DOM0,
            None,
            "/secret",
            Permissions::with_default(DomId::DOM0, PermLevel::Read),
        )
        .unwrap();
        assert!(xs.read(DomId(5), None, "/secret").is_ok());
    }

    #[test]
    fn domain_destroyed_cleans_up() {
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/local/domain/9/name", b"gone")
            .unwrap();
        xs.watch(DomId(9), "/local/domain/9", "t").unwrap();
        let _t = xs.transaction_start(DomId(9)).unwrap();
        xs.domain_destroyed(DomId(9));
        assert!(!xs.exists(DomId::DOM0, None, "/local/domain/9").unwrap());
        assert_eq!(xs.open_transactions(), 0);
        assert_eq!(xs.pending_watch_events(DomId(9)), 0);
    }

    #[test]
    fn debug_format_mentions_engine() {
        let xs = store();
        let s = format!("{xs:?}");
        assert!(s.contains("JitsuMerge"));
    }
}
