//! The top-level store: tree + watches + quotas + transactions.
//!
//! `XenStore` is the object the rest of the reproduction talks to. It accepts
//! requests on behalf of a domain (`DomId`), optionally inside a transaction
//! (`TxId`), enforces permissions and quotas, fires watches on mutation, and
//! delegates commit-time conflict decisions to the configured reconciliation
//! engine.
//!
//! The store leans on the persistent tree throughout: every mutation first
//! takes an O(1) snapshot of the live tree, applies the change, and then
//! computes the structural diff between the two — watches fire from the
//! *committed merged tree* (one event per path that actually changed, not
//! one per write-log entry), and per-domain quota accounting is maintained
//! incrementally from the same diffs instead of re-walking the whole store
//! on every write.
//!
//! The two watch models are deliberately asymmetric. *Direct* ops keep the
//! classic protocol semantics: the op's own path always fires (even for a
//! same-value touch), plus any other paths the op structurally changed
//! (implicitly created ancestors, removed descendants). *Transactional*
//! commits fire exactly the net diff of the merged result — a batch that
//! rewrites a key to its old value or creates-then-removes a scratch node
//! notifies nobody, because from any observer's point of view nothing
//! happened atomically. Use a direct write for touch-to-notify.

use crate::engine::{EngineKind, Reconcile, TxnEngine};
use crate::error::{Error, Result};
use crate::path::Path;
use crate::perms::{DomId, Permissions};
use crate::quota::Quota;
use crate::transaction::{Transaction, TxnOp};
use crate::tree::{Tree, TreeDiff};
use crate::watch::{WatchEvent, WatchManager};
use std::collections::BTreeMap;

/// A transaction identifier handed out by [`XenStore::transaction_start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(pub u32);

/// Counters describing the store's activity, used by Figure 3 and by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful commits.
    pub commits: u64,
    /// Commits that landed on a store that had advanced concurrently since
    /// the transaction began — i.e. commits that would have aborted under
    /// the serialising engine but were *merged* instead. A subset of
    /// `commits`.
    pub merged: u64,
    /// Commits rejected with `EAGAIN`.
    pub conflicts: u64,
    /// Transactions aborted by the client.
    pub aborts: u64,
    /// Individual operations processed (reads, writes, directory listings…).
    pub ops: u64,
    /// Watch events fired.
    pub watch_events: u64,
}

impl StoreStats {
    /// Fraction of commit attempts rejected with `EAGAIN`, in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.conflicts;
        if attempts == 0 {
            0.0
        } else {
            self.conflicts as f64 / attempts as f64
        }
    }

    /// Fraction of successful commits that landed via the merge path (their
    /// base had advanced concurrently), in `[0, 1]`.
    pub fn merge_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.merged as f64 / self.commits as f64
        }
    }
}

/// The shared store.
pub struct XenStore {
    tree: Tree,
    watches: WatchManager,
    engine: Box<dyn TxnEngine>,
    quota: Quota,
    transactions: BTreeMap<u32, Transaction>,
    next_tx_id: u32,
    stats: StoreStats,
    /// Nodes owned per domain, maintained incrementally from structural
    /// diffs so the quota check never walks the tree.
    owned: BTreeMap<u32, usize>,
}

impl std::fmt::Debug for XenStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XenStore")
            .field("engine", &self.engine.kind())
            .field("nodes", &self.tree.node_count())
            .field("open_transactions", &self.transactions.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl XenStore {
    /// Create a store with the given reconciliation engine and default
    /// quotas.
    pub fn new(engine: EngineKind) -> XenStore {
        XenStore::with_quota(engine, Quota::default())
    }

    /// Create a store with explicit quotas.
    pub fn with_quota(engine: EngineKind, quota: Quota) -> XenStore {
        let tree = Tree::new();
        // Seed the incremental ownership counts with the pre-existing root
        // node; everything else flows in through structural diffs.
        let root_owner = tree
            .get(&Path::root())
            // jitsu-lint: allow(P001, "Tree::new always creates a root node")
            .expect("new tree has a root")
            .perms
            .owner();
        XenStore {
            tree,
            watches: WatchManager::new(),
            engine: engine.build(),
            quota,
            transactions: BTreeMap::new(),
            next_tx_id: 1,
            stats: StoreStats::default(),
            owned: BTreeMap::from([(root_owner.0, 1)]),
        }
    }

    /// The engine this store reconciles transactions with.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// Activity counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The per-domain quota in force.
    pub fn quota(&self) -> Quota {
        self.quota
    }

    /// Number of nodes currently in the live tree.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Direct access to the live tree (read-only), for diagnostics.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    fn parse(path: &str) -> Result<Path> {
        Path::parse(path)
    }

    fn txn_mut(&mut self, id: TxId) -> Result<&mut Transaction> {
        self.transactions
            .get_mut(&id.0)
            .ok_or(Error::UnknownTransaction(id.0))
    }

    fn check_node_quota(&self, dom: DomId) -> Result<()> {
        if dom.is_privileged() {
            return Ok(());
        }
        if self.owned_nodes(dom) >= self.quota.max_nodes {
            return Err(Error::QuotaExceeded("nodes"));
        }
        Ok(())
    }

    /// Nodes currently owned by `dom`, from the incrementally maintained
    /// count (O(log domains), not O(store size)).
    pub fn owned_nodes(&self, dom: DomId) -> usize {
        self.owned.get(&dom.0).copied().unwrap_or(0)
    }

    /// Net node-ownership change per domain implied by `diff`: creations,
    /// removals, and ownership transfers via permission changes (dom0
    /// handing a guest its home directory). Shared by the commit-time
    /// quota check and the post-mutation bookkeeping so the two can never
    /// drift.
    fn owner_deltas(diff: &TreeDiff, old: &Tree, new: &Tree) -> BTreeMap<u32, isize> {
        let mut delta: BTreeMap<u32, isize> = BTreeMap::new();
        for (_, owner) in &diff.added {
            *delta.entry(owner.0).or_insert(0) += 1;
        }
        for (_, owner) in &diff.removed {
            *delta.entry(owner.0).or_insert(0) -= 1;
        }
        for path in &diff.perms_changed {
            let old_owner = old
                .get(path)
                // jitsu-lint: allow(P001, "the diff reported this path, so the pre-merge tree holds it")
                .expect("perms-changed node existed")
                .perms
                .owner();
            let new_owner = new
                .get(path)
                // jitsu-lint: allow(P001, "the diff reported this path, so the merged tree holds it")
                .expect("perms-changed node exists")
                .perms
                .owner();
            if old_owner != new_owner {
                *delta.entry(old_owner.0).or_insert(0) -= 1;
                *delta.entry(new_owner.0).or_insert(0) += 1;
            }
        }
        delta
    }

    /// Enforce the node quota at commit time: per-op checks inside the
    /// transaction ran against the store as it was *then*, so the net
    /// ownership delta of the merged result must be re-checked against the
    /// counts as they are *now* (otherwise N overlapping transactions could
    /// each pass the per-op check and overshoot the limit by N).
    fn check_commit_quota(&self, diff: &TreeDiff, merged: &Tree) -> Result<()> {
        for (dom, gained) in Self::owner_deltas(diff, &self.tree, merged) {
            if gained > 0
                && !DomId(dom).is_privileged()
                && self.owned_nodes(DomId(dom)) + gained as usize > self.quota.max_nodes
            {
                return Err(Error::QuotaExceeded("nodes"));
            }
        }
        Ok(())
    }

    /// Settle the bookkeeping after a mutation of the live tree, given the
    /// structural diff from `before`: fold ownership changes into the
    /// per-domain quota counts and (when `fire` is set) fire one watch
    /// event per path that actually changed in the committed tree.
    /// `also_fire` unconditionally fires one extra path even if it did not
    /// semantically change — direct ops keep real xenstored's fire-on-every-
    /// write semantics (the touch-a-key-to-notify pattern), while
    /// transactional commits pass `None` and fire the net diff only.
    fn settle(&mut self, diff: &TreeDiff, before: &Tree, fire: bool, also_fire: Option<&Path>) {
        for (dom, delta) in Self::owner_deltas(diff, before, &self.tree) {
            let count = self.owned.entry(dom).or_insert(0);
            *count = count.saturating_add_signed(delta);
        }
        if fire {
            let changed = diff.changed_paths();
            for path in &changed {
                self.stats.watch_events += self.watches.fire(path) as u64;
            }
            if let Some(path) = also_fire {
                if !changed.contains(path) {
                    self.stats.watch_events += self.watches.fire(path) as u64;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Read a value.
    pub fn read(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<Vec<u8>> {
        self.stats.ops += 1;
        let path = Self::parse(path)?;
        match tx {
            None => self.tree.read(dom, &path),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                if txn.dom != dom {
                    return Err(Error::PermissionDenied(path.to_string()));
                }
                txn.note_read(&path);
                txn.snapshot.read(dom, &path)
            }
        }
    }

    /// Read a value as a UTF-8 string (lossy).
    pub fn read_string(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<String> {
        Ok(String::from_utf8_lossy(&self.read(dom, tx, path)?).into_owned())
    }

    /// True if the path exists (without error on absence).
    pub fn exists(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<bool> {
        match self.read(dom, tx, path) {
            Ok(_) => Ok(true),
            Err(Error::NoEntry(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// List a node's children.
    pub fn directory(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<Vec<String>> {
        self.stats.ops += 1;
        let path = Self::parse(path)?;
        match tx {
            None => self.tree.directory(dom, &path),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                if txn.dom != dom {
                    return Err(Error::PermissionDenied(path.to_string()));
                }
                txn.note_dir_read(&path);
                txn.snapshot.directory(dom, &path)
            }
        }
    }

    /// Read a node's permissions.
    pub fn get_perms(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<Permissions> {
        self.stats.ops += 1;
        let path = Self::parse(path)?;
        match tx {
            None => self.tree.get_perms(dom, &path),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                txn.note_read(&path);
                txn.snapshot.get_perms(dom, &path)
            }
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    fn apply_live(&mut self, dom: DomId, op: TxnOp) -> Result<()> {
        // O(1) pre-image snapshot; the post-op structural diff drives both
        // watch delivery and quota accounting.
        let before = self.tree.clone();
        let result = match &op {
            TxnOp::Write { path, value } => self.tree.write(dom, path, value),
            TxnOp::Mkdir { path } => self.tree.mkdir(dom, path),
            TxnOp::Rm { path } => self.tree.rm(dom, path),
            TxnOp::SetPerms { path, perms } => self.tree.set_perms(dom, path, perms.clone()),
        };
        // Settle quota counts even on failure (a failed deep write may have
        // created some ancestors); watches fire only for completed ops —
        // and always for the op's own path, even when the op was a no-op
        // (same-value write, mkdir of an existing node), as in the real
        // protocol.
        let diff = Tree::diff(&before, &self.tree);
        self.settle(&diff, &before, result.is_ok(), Some(op.path()));
        result
    }

    fn apply(&mut self, dom: DomId, tx: Option<TxId>, op: TxnOp) -> Result<()> {
        self.stats.ops += 1;
        match tx {
            None => self.apply_live(dom, op),
            Some(id) => {
                let txn = self.txn_mut(id)?;
                if txn.dom != dom {
                    return Err(Error::PermissionDenied(op.path().to_string()));
                }
                txn.apply(op)
            }
        }
    }

    /// Write a value (creating the node and missing ancestors if needed).
    pub fn write(&mut self, dom: DomId, tx: Option<TxId>, path: &str, value: &[u8]) -> Result<()> {
        let path = Self::parse(path)?;
        if !self.tree.exists(&path) {
            self.check_node_quota(dom)?;
        }
        self.apply(
            dom,
            tx,
            TxnOp::Write {
                path,
                value: value.to_vec(),
            },
        )
    }

    /// Create an empty node.
    pub fn mkdir(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<()> {
        let path = Self::parse(path)?;
        if !self.tree.exists(&path) {
            self.check_node_quota(dom)?;
        }
        self.apply(dom, tx, TxnOp::Mkdir { path })
    }

    /// Remove a subtree.
    pub fn rm(&mut self, dom: DomId, tx: Option<TxId>, path: &str) -> Result<()> {
        let path = Self::parse(path)?;
        self.apply(dom, tx, TxnOp::Rm { path })
    }

    /// Replace a node's permissions.
    pub fn set_perms(
        &mut self,
        dom: DomId,
        tx: Option<TxId>,
        path: &str,
        perms: Permissions,
    ) -> Result<()> {
        let path = Self::parse(path)?;
        self.apply(dom, tx, TxnOp::SetPerms { path, perms })
    }

    // ------------------------------------------------------------------
    // Watches
    // ------------------------------------------------------------------

    /// Register a watch on a subtree.
    pub fn watch(&mut self, dom: DomId, path: &str, token: &str) -> Result<()> {
        if !dom.is_privileged() && self.watches.count_for(dom) >= self.quota.max_watches {
            return Err(Error::QuotaExceeded("watches"));
        }
        let path = Self::parse(path)?;
        self.watches.watch(dom, path, token)
    }

    /// Remove a previously registered watch.
    pub fn unwatch(&mut self, dom: DomId, path: &str, token: &str) -> Result<()> {
        let path = Self::parse(path)?;
        self.watches.unwatch(dom, &path, token)
    }

    /// Drain pending watch events for a domain.
    pub fn take_watch_events(&mut self, dom: DomId) -> Vec<WatchEvent> {
        self.watches.take_events(dom)
    }

    /// Number of watch events queued for a domain.
    pub fn pending_watch_events(&self, dom: DomId) -> usize {
        self.watches.pending(dom)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Open a transaction.
    pub fn transaction_start(&mut self, dom: DomId) -> Result<TxId> {
        let open_for_dom = self.transactions.values().filter(|t| t.dom == dom).count();
        if !dom.is_privileged() && open_for_dom >= self.quota.max_transactions {
            return Err(Error::QuotaExceeded("transactions"));
        }
        let id = self.next_tx_id;
        self.next_tx_id = self.next_tx_id.wrapping_add(1).max(1);
        self.transactions
            .insert(id, Transaction::begin(id, dom, &self.tree));
        Ok(TxId(id))
    }

    /// End a transaction. With `commit == false` the transaction is simply
    /// discarded. With `commit == true` the configured engine decides whether
    /// the batch applies; a conflicting commit returns [`Error::Again`] and
    /// the caller is expected to retry the whole transaction.
    pub fn transaction_end(&mut self, dom: DomId, tx: TxId, commit: bool) -> Result<()> {
        let txn = self
            .transactions
            .remove(&tx.0)
            .ok_or(Error::UnknownTransaction(tx.0))?;
        if txn.dom != dom {
            // Put it back: a foreign domain must not be able to close it.
            self.transactions.insert(tx.0, txn);
            return Err(Error::PermissionDenied(format!("transaction {}", tx.0)));
        }
        if !commit {
            self.stats.aborts += 1;
            return Ok(());
        }
        if txn.is_read_only() {
            self.stats.commits += 1;
            return Ok(());
        }
        match self.engine.reconcile(&self.tree, &txn) {
            Reconcile::Conflict { .. } => {
                self.stats.conflicts += 1;
                Err(Error::Again)
            }
            Reconcile::Commit => {
                // Three-way merge of the transaction's net effect onto an
                // O(1) scratch copy of the live tree: a merge that fails
                // part-way (e.g. a concurrent permission revocation on a
                // parent) never mutates live state, preserving commit
                // atomicity. Watches fire from the committed merged tree:
                // one event per path that actually changed, in
                // deterministic order.
                let mut merged = self.tree.clone();
                txn.merge_onto(&mut merged)?;
                // One structural diff serves both the commit-time quota
                // check and the post-swap bookkeeping.
                let diff = Tree::diff(&self.tree, &merged);
                self.check_commit_quota(&diff, &merged)?;
                let before = std::mem::replace(&mut self.tree, merged);
                self.settle(&diff, &before, true, None);
                self.stats.commits += 1;
                if before.generation() != txn.start_gen {
                    // The base moved underneath the transaction and we
                    // committed anyway — a merge, not a serial replay.
                    self.stats.merged += 1;
                }
                Ok(())
            }
        }
    }

    /// Number of transactions currently open.
    pub fn open_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Convenience: run `body` inside a transaction, retrying on `EAGAIN`
    /// up to `max_retries` times. Returns the number of attempts made.
    pub fn with_transaction<F>(&mut self, dom: DomId, max_retries: u32, mut body: F) -> Result<u32>
    where
        F: FnMut(&mut XenStore, TxId) -> Result<()>,
    {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let tx = self.transaction_start(dom)?;
            if let Err(e) = body(self, tx) {
                let _ = self.transaction_end(dom, tx, false);
                return Err(e);
            }
            match self.transaction_end(dom, tx, true) {
                Ok(()) => return Ok(attempts),
                Err(Error::Again) if attempts <= max_retries => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Remove everything a domain owns and its watches — called when a
    /// domain is destroyed.
    pub fn domain_destroyed(&mut self, dom: DomId) {
        self.watches.remove_domain(dom);
        self.transactions.retain(|_, t| t.dom != dom);
        // Remove the conventional per-domain directory if present.
        let home = Path::domain_home(dom.0);
        if self.tree.exists(&home) {
            let before = self.tree.clone();
            // jitsu-lint: allow(R001, "existence was checked just above; a failed rm only skips optional cleanup of the home dir")
            let _ = self.tree.rm(DomId::DOM0, &home);
            let diff = Tree::diff(&before, &self.tree);
            self.settle(&diff, &before, true, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::PermLevel;

    fn store() -> XenStore {
        XenStore::new(EngineKind::JitsuMerge)
    }

    #[test]
    fn stats_rates_are_well_formed() {
        let empty = StoreStats::default();
        assert_eq!(empty.abort_rate(), 0.0);
        assert_eq!(empty.merge_rate(), 0.0);
        let stats = StoreStats {
            commits: 8,
            merged: 6,
            conflicts: 2,
            ..StoreStats::default()
        };
        assert!((stats.abort_rate() - 0.2).abs() < 1e-12);
        assert!((stats.merge_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn basic_read_write() {
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/local/domain/3/name", b"http")
            .unwrap();
        assert_eq!(
            xs.read(DomId::DOM0, None, "/local/domain/3/name").unwrap(),
            b"http"
        );
        assert_eq!(
            xs.read_string(DomId::DOM0, None, "/local/domain/3/name")
                .unwrap(),
            "http"
        );
        assert!(xs
            .exists(DomId::DOM0, None, "/local/domain/3/name")
            .unwrap());
        assert!(!xs.exists(DomId::DOM0, None, "/local/domain/9").unwrap());
        assert_eq!(
            xs.directory(DomId::DOM0, None, "/local/domain").unwrap(),
            vec!["3"]
        );
        assert!(xs.stats().ops >= 5);
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let mut xs = store();
        assert!(matches!(
            xs.write(DomId::DOM0, None, "not-absolute", b"x"),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            xs.read(DomId::DOM0, None, "/bad path"),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn transaction_commit_applies_batch_atomically() {
        let mut xs = store();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/conduit/http_server", b"3")
            .unwrap();
        xs.write(DomId::DOM0, Some(t), "/conduit/flows/1", b"(connecting)")
            .unwrap();
        // Not visible outside the transaction yet.
        assert!(!xs
            .exists(DomId::DOM0, None, "/conduit/http_server")
            .unwrap());
        // Visible inside.
        assert!(xs
            .exists(DomId::DOM0, Some(t), "/conduit/http_server")
            .unwrap());
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert!(xs
            .exists(DomId::DOM0, None, "/conduit/http_server")
            .unwrap());
        assert_eq!(xs.stats().commits, 1);
        assert_eq!(xs.open_transactions(), 0);
    }

    #[test]
    fn transaction_abort_discards_batch() {
        let mut xs = store();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/a", b"1").unwrap();
        xs.transaction_end(DomId::DOM0, t, false).unwrap();
        assert!(!xs.exists(DomId::DOM0, None, "/a").unwrap());
        assert_eq!(xs.stats().aborts, 1);
    }

    #[test]
    fn unknown_transaction_is_an_error() {
        let mut xs = store();
        assert!(matches!(
            xs.read(DomId::DOM0, Some(TxId(99)), "/a"),
            Err(Error::UnknownTransaction(99))
        ));
        assert!(matches!(
            xs.transaction_end(DomId::DOM0, TxId(99), true),
            Err(Error::UnknownTransaction(99))
        ));
    }

    #[test]
    fn foreign_domain_cannot_use_anothers_transaction() {
        let mut xs = store();
        let t = xs.transaction_start(DomId(3)).unwrap();
        assert!(matches!(
            xs.write(DomId(7), Some(t), "/x", b"1"),
            Err(Error::PermissionDenied(_))
        ));
        assert!(matches!(
            xs.transaction_end(DomId(7), t, true),
            Err(Error::PermissionDenied(_))
        ));
        // The rightful owner can still close it.
        assert!(xs.transaction_end(DomId(3), t, false).is_ok());
    }

    #[test]
    fn conflicting_commit_returns_eagain() {
        let mut xs = XenStore::new(EngineKind::Serial);
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/a", b"in-txn").unwrap();
        // A concurrent direct write advances the store.
        xs.write(DomId::DOM0, None, "/other", b"x").unwrap();
        assert_eq!(xs.transaction_end(DomId::DOM0, t, true), Err(Error::Again));
        assert_eq!(xs.stats().conflicts, 1);
        // The live tree did not take the transaction's write.
        assert!(!xs.exists(DomId::DOM0, None, "/a").unwrap());
    }

    #[test]
    fn jitsu_engine_allows_parallel_domain_creation_through_store() {
        let mut xs = store();
        // Two "toolstack threads" each build a domain in a transaction.
        let t1 = xs.transaction_start(DomId::DOM0).unwrap();
        let t2 = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t1), "/local/domain/5/name", b"u5")
            .unwrap();
        xs.write(DomId::DOM0, Some(t2), "/local/domain/6/name", b"u6")
            .unwrap();
        xs.transaction_end(DomId::DOM0, t1, true).unwrap();
        // With the Jitsu merge the second commit also succeeds.
        xs.transaction_end(DomId::DOM0, t2, true).unwrap();
        assert!(xs
            .exists(DomId::DOM0, None, "/local/domain/5/name")
            .unwrap());
        assert!(xs
            .exists(DomId::DOM0, None, "/local/domain/6/name")
            .unwrap());
        assert_eq!(xs.stats().conflicts, 0);
    }

    #[test]
    fn merge_engine_conflicts_on_parallel_domain_creation() {
        let mut xs = XenStore::new(EngineKind::Merge);
        let t1 = xs.transaction_start(DomId::DOM0).unwrap();
        let t2 = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t1), "/local/domain/5/name", b"u5")
            .unwrap();
        xs.write(DomId::DOM0, Some(t2), "/local/domain/6/name", b"u6")
            .unwrap();
        xs.transaction_end(DomId::DOM0, t1, true).unwrap();
        assert_eq!(xs.transaction_end(DomId::DOM0, t2, true), Err(Error::Again));
    }

    #[test]
    fn read_only_transactions_always_commit() {
        let mut xs = XenStore::new(EngineKind::Serial);
        xs.write(DomId::DOM0, None, "/a", b"1").unwrap();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        let _ = xs.read(DomId::DOM0, Some(t), "/a").unwrap();
        // Concurrent write would normally trip the serial engine.
        xs.write(DomId::DOM0, None, "/b", b"2").unwrap();
        assert!(xs.transaction_end(DomId::DOM0, t, true).is_ok());
    }

    #[test]
    fn with_transaction_retries_until_success() {
        let mut xs = XenStore::new(EngineKind::JitsuMerge);
        xs.write(DomId::DOM0, None, "/counter", b"0").unwrap();
        let attempts = xs
            .with_transaction(DomId::DOM0, 5, |xs, t| {
                let v = xs.read_string(DomId::DOM0, Some(t), "/counter")?;
                let n: u64 = v.parse().unwrap_or(0);
                xs.write(
                    DomId::DOM0,
                    Some(t),
                    "/counter",
                    (n + 1).to_string().as_bytes(),
                )
            })
            .unwrap();
        assert_eq!(attempts, 1);
        assert_eq!(xs.read_string(DomId::DOM0, None, "/counter").unwrap(), "1");
    }

    #[test]
    fn watches_fire_on_direct_and_transactional_writes() {
        let mut xs = store();
        xs.mkdir(DomId::DOM0, None, "/conduit/http_server/listen")
            .unwrap();
        xs.watch(DomId(3), "/conduit/http_server/listen", "listen-token")
            .unwrap();
        // Drain the initial synthetic event.
        assert_eq!(xs.take_watch_events(DomId(3)).len(), 1);

        xs.write(DomId::DOM0, None, "/conduit/http_server/listen/conn1", b"7")
            .unwrap();
        let evs = xs.take_watch_events(DomId(3));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path.to_string(), "/conduit/http_server/listen/conn1");
        assert_eq!(evs[0].token, "listen-token");

        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(
            DomId::DOM0,
            Some(t),
            "/conduit/http_server/listen/conn2",
            b"9",
        )
        .unwrap();
        assert_eq!(
            xs.pending_watch_events(DomId(3)),
            0,
            "no events until commit"
        );
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert_eq!(xs.take_watch_events(DomId(3)).len(), 1);
    }

    #[test]
    fn quotas_are_enforced_for_guests() {
        let mut xs = XenStore::with_quota(EngineKind::JitsuMerge, Quota::tiny());
        // Give dom7 a writable home.
        xs.mkdir(DomId::DOM0, None, "/local/domain/7").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/local/domain/7",
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        // Node quota.
        let mut hit_quota = false;
        for i in 0..20 {
            match xs.write(DomId(7), None, &format!("/local/domain/7/k{i}"), b"v") {
                Ok(()) => {}
                Err(Error::QuotaExceeded("nodes")) => {
                    hit_quota = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(hit_quota, "node quota must eventually trip");
        // Watch quota.
        xs.watch(DomId(7), "/local/domain/7", "w1").unwrap();
        xs.watch(DomId(7), "/local/domain/7/a", "w2").unwrap();
        assert_eq!(
            xs.watch(DomId(7), "/local/domain/7/b", "w3"),
            Err(Error::QuotaExceeded("watches"))
        );
        // Transaction quota.
        let _t1 = xs.transaction_start(DomId(7)).unwrap();
        assert_eq!(
            xs.transaction_start(DomId(7)).unwrap_err(),
            Error::QuotaExceeded("transactions")
        );
        // dom0 is exempt.
        for _ in 0..5 {
            xs.transaction_start(DomId::DOM0).unwrap();
        }
    }

    #[test]
    fn guest_perms_enforced_through_store() {
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/secret", b"s").unwrap();
        assert!(matches!(
            xs.read(DomId(5), None, "/secret"),
            Err(Error::PermissionDenied(_))
        ));
        xs.set_perms(
            DomId::DOM0,
            None,
            "/secret",
            Permissions::with_default(DomId::DOM0, PermLevel::Read),
        )
        .unwrap();
        assert!(xs.read(DomId(5), None, "/secret").is_ok());
    }

    #[test]
    fn domain_destroyed_cleans_up() {
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/local/domain/9/name", b"gone")
            .unwrap();
        xs.watch(DomId(9), "/local/domain/9", "t").unwrap();
        let _t = xs.transaction_start(DomId(9)).unwrap();
        xs.domain_destroyed(DomId(9));
        assert!(!xs.exists(DomId::DOM0, None, "/local/domain/9").unwrap());
        assert_eq!(xs.open_transactions(), 0);
        assert_eq!(xs.pending_watch_events(DomId(9)), 0);
    }

    #[test]
    fn merged_commits_are_counted_separately_from_serial_ones() {
        let mut xs = store();
        // A commit against an unmoved base is not a merge.
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/a", b"1").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert_eq!(xs.stats().commits, 1);
        assert_eq!(xs.stats().merged, 0);
        // A commit after a concurrent write merges.
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/b", b"2").unwrap();
        xs.write(DomId::DOM0, None, "/c", b"3").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert_eq!(xs.stats().commits, 2);
        assert_eq!(xs.stats().merged, 1);
        assert!(xs.exists(DomId::DOM0, None, "/b").unwrap());
        assert!(xs.exists(DomId::DOM0, None, "/c").unwrap());
    }

    #[test]
    fn read_of_missing_path_conflicts_with_concurrent_create_through_store() {
        // Regression for the read-set bugfix, end to end: `read` (and
        // `exists`) on a nonexistent node records the dependency, and a
        // concurrent create of that path aborts the commit.
        let mut xs = store();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        assert!(!xs.exists(DomId::DOM0, Some(t), "/claim/slot").unwrap());
        xs.write(DomId::DOM0, Some(t), "/winner", b"me").unwrap();
        // Concurrent create of the path the transaction saw missing.
        xs.write(DomId::DOM0, None, "/claim/slot", b"them").unwrap();
        assert_eq!(xs.transaction_end(DomId::DOM0, t, true), Err(Error::Again));
        assert!(!xs.exists(DomId::DOM0, None, "/winner").unwrap());
        // The same shape with the absent path left alone commits fine.
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        assert!(!xs.exists(DomId::DOM0, Some(t), "/claim/other").unwrap());
        xs.write(DomId::DOM0, Some(t), "/winner", b"me").unwrap();
        xs.write(DomId::DOM0, None, "/unrelated", b"x").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert_eq!(xs.read(DomId::DOM0, None, "/winner").unwrap(), b"me");
    }

    #[test]
    fn incremental_owned_counts_match_the_reference_walk() {
        let mut xs = XenStore::with_quota(EngineKind::JitsuMerge, Quota::default());
        xs.mkdir(DomId::DOM0, None, "/local/domain/7").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/local/domain/7",
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        for i in 0..6 {
            xs.write(DomId(7), None, &format!("/local/domain/7/deep/k{i}"), b"v")
                .unwrap();
        }
        xs.rm(DomId(7), None, "/local/domain/7/deep/k0").unwrap();
        // Also through a transaction (counts settle at commit).
        let t = xs.transaction_start(DomId(7)).unwrap();
        xs.write(DomId(7), Some(t), "/local/domain/7/txn", b"v")
            .unwrap();
        xs.transaction_end(DomId(7), t, true).unwrap();
        for dom in [DomId::DOM0, DomId(7)] {
            assert_eq!(
                xs.owned_nodes(dom),
                xs.tree().owned_count(dom),
                "cached count for {dom:?} must match the O(n) reference walk"
            );
        }
        // Subtree removal settles every removed descendant.
        xs.rm(DomId::DOM0, None, "/local/domain/7").unwrap();
        assert_eq!(xs.owned_nodes(DomId(7)), 0);
        assert_eq!(xs.tree().owned_count(DomId(7)), 0);
    }

    #[test]
    fn failed_merges_leave_the_live_tree_untouched() {
        // A guest transaction removes one of its nodes and creates another
        // under a directory whose write access dom0 revokes concurrently.
        // The revocation bumps only the parent's modified_gen, so neither
        // merge engine conflicts — the merge itself fails with
        // PermissionDenied, and the earlier removal must not leak into the
        // live tree (the commit swaps in the merged copy only on success).
        let mut xs = store();
        xs.mkdir(DomId::DOM0, None, "/shared").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/shared",
            Permissions::with_default(DomId::DOM0, PermLevel::Write),
        )
        .unwrap();
        xs.mkdir(DomId::DOM0, None, "/local/domain/7").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/local/domain/7",
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        xs.write(DomId(7), None, "/local/domain/7/old", b"x")
            .unwrap();

        let t = xs.transaction_start(DomId(7)).unwrap();
        xs.rm(DomId(7), Some(t), "/local/domain/7/old").unwrap();
        xs.write(DomId(7), Some(t), "/shared/claim", b"7").unwrap();
        // Concurrently dom0 revokes the world-writable bit on /shared.
        xs.set_perms(
            DomId::DOM0,
            None,
            "/shared",
            Permissions::owned_by(DomId::DOM0),
        )
        .unwrap();
        let err = xs.transaction_end(DomId(7), t, true).unwrap_err();
        assert!(matches!(err, Error::PermissionDenied(_)), "{err:?}");
        // Nothing from the failed merge reached the live tree.
        assert!(xs.exists(DomId::DOM0, None, "/local/domain/7/old").unwrap());
        assert!(!xs.exists(DomId::DOM0, None, "/shared/claim").unwrap());
        assert_eq!(xs.stats().commits, 0);
    }

    #[test]
    fn recreated_nodes_keep_their_snapshot_permissions() {
        // dom0 overwrites a guest-owned node inside a transaction while the
        // guest concurrently removes it. The merge recreates the node (the
        // remove-then-write serial order) — with the guest's ownership, not
        // dom0-derived creation perms.
        let mut xs = store();
        xs.mkdir(DomId::DOM0, None, "/local/domain/7").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/local/domain/7",
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        xs.write(DomId(7), None, "/local/domain/7/k", b"v1")
            .unwrap();

        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/local/domain/7/k", b"v2")
            .unwrap();
        xs.rm(DomId(7), None, "/local/domain/7/k").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        let node = xs.tree().get(&Path::parse("/local/domain/7/k").unwrap());
        assert_eq!(
            node.expect("recreated by the merge").perms.owner(),
            DomId(7),
            "the snapshot's ownership must survive recreation"
        );
        // And the incremental quota counts stayed consistent.
        assert_eq!(xs.owned_nodes(DomId(7)), xs.tree().owned_count(DomId(7)));
    }

    #[test]
    fn node_quota_is_enforced_at_commit_against_current_counts() {
        // The per-op check inside the transaction ran when the guest still
        // had headroom; by commit time direct writes have used it up. The
        // commit must not overshoot the quota.
        let mut xs = XenStore::with_quota(EngineKind::JitsuMerge, Quota::tiny());
        xs.mkdir(DomId::DOM0, None, "/local/domain/7").unwrap();
        xs.set_perms(
            DomId::DOM0,
            None,
            "/local/domain/7",
            Permissions::owned_by(DomId(7)),
        )
        .unwrap();
        // Fill to one below the limit (the home dir counts too).
        let max = Quota::tiny().max_nodes;
        for i in 0..max - 2 {
            xs.write(DomId(7), None, &format!("/local/domain/7/k{i}"), b"v")
                .unwrap();
        }
        assert_eq!(xs.owned_nodes(DomId(7)), max - 1);
        // The transactional write passes its per-op check (one slot left)…
        let t = xs.transaction_start(DomId(7)).unwrap();
        xs.write(DomId(7), Some(t), "/local/domain/7/txn", b"v")
            .unwrap();
        // …but a direct write consumes that slot before the commit.
        xs.write(DomId(7), None, "/local/domain/7/direct", b"v")
            .unwrap();
        assert_eq!(
            xs.transaction_end(DomId(7), t, true),
            Err(Error::QuotaExceeded("nodes")),
            "commit must re-check the quota against current counts"
        );
        assert!(!xs.exists(DomId::DOM0, None, "/local/domain/7/txn").unwrap());
        assert_eq!(xs.owned_nodes(DomId(7)), max);
    }

    #[test]
    fn merge_never_clobbers_a_concurrently_created_implicit_ancestor() {
        // Txn writes /a/b, creating /a implicitly (empty scaffold in its
        // snapshot); concurrently another client writes a value to /a. The
        // two creations merge — the commit must not reset /a to the
        // scaffold's empty value.
        let mut xs = store();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.write(DomId::DOM0, Some(t), "/a/b", b"child").unwrap();
        xs.write(DomId::DOM0, None, "/a", b"precious").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert_eq!(
            xs.read(DomId::DOM0, None, "/a").unwrap(),
            b"precious",
            "the concurrent value must survive the merge"
        );
        assert_eq!(xs.read(DomId::DOM0, None, "/a/b").unwrap(), b"child");
    }

    #[test]
    fn value_read_survives_a_later_directory_dependency_on_the_same_node() {
        // Txn reads /x then creates /x/y (which records a directory dep on
        // /x). The value dependency must not be downgraded away: a
        // concurrent value change to /x still conflicts, even on the Jitsu
        // engine which ignores pure child-list changes.
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/x", b"old").unwrap();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        assert_eq!(xs.read(DomId::DOM0, Some(t), "/x").unwrap(), b"old");
        xs.write(DomId::DOM0, Some(t), "/x/y", b"derived").unwrap();
        xs.write(DomId::DOM0, None, "/x", b"new").unwrap();
        assert_eq!(xs.transaction_end(DomId::DOM0, t, true), Err(Error::Again));
        assert!(!xs.exists(DomId::DOM0, None, "/x/y").unwrap());
    }

    #[test]
    fn direct_same_value_writes_still_fire_watches() {
        // The touch-a-key-to-notify pattern: a WRITE of an unchanged value
        // fires watches in the real protocol even though nothing changed
        // semantically.
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/svc/flag", b"1").unwrap();
        xs.watch(DomId(3), "/svc", "tok").unwrap();
        xs.take_watch_events(DomId(3));
        xs.write(DomId::DOM0, None, "/svc/flag", b"1").unwrap();
        let evs = xs.take_watch_events(DomId(3));
        assert_eq!(evs.len(), 1, "same-value write must still notify");
        assert_eq!(evs[0].path.to_string(), "/svc/flag");
        // mkdir of an existing node notifies too, and only once.
        xs.mkdir(DomId::DOM0, None, "/svc/flag").unwrap();
        assert_eq!(xs.take_watch_events(DomId(3)).len(), 1);
    }

    #[test]
    fn perms_change_on_a_concurrently_removed_node_stays_removed() {
        // The transaction only touched the node's permissions; the
        // concurrent remove wins (the write-then-remove serial order), and
        // the rest of the batch still lands.
        let mut xs = store();
        xs.write(DomId::DOM0, None, "/a", b"1").unwrap();
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        xs.set_perms(
            DomId::DOM0,
            Some(t),
            "/a",
            Permissions::with_default(DomId::DOM0, PermLevel::Write),
        )
        .unwrap();
        xs.write(DomId::DOM0, Some(t), "/b", b"2").unwrap();
        xs.rm(DomId::DOM0, None, "/a").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        assert!(!xs.exists(DomId::DOM0, None, "/a").unwrap());
        assert_eq!(xs.read(DomId::DOM0, None, "/b").unwrap(), b"2");
    }

    #[test]
    fn transactional_watch_events_come_from_the_merged_diff() {
        // A transaction that writes the same path three times and also
        // creates-then-removes a scratch node produces events for the *net*
        // change only.
        let mut xs = store();
        xs.mkdir(DomId::DOM0, None, "/svc").unwrap();
        xs.watch(DomId(3), "/svc", "tok").unwrap();
        xs.take_watch_events(DomId(3));
        let t = xs.transaction_start(DomId::DOM0).unwrap();
        for v in [b"1", b"2", b"3"] {
            xs.write(DomId::DOM0, Some(t), "/svc/state", v).unwrap();
        }
        xs.write(DomId::DOM0, Some(t), "/svc/scratch", b"tmp")
            .unwrap();
        xs.rm(DomId::DOM0, Some(t), "/svc/scratch").unwrap();
        xs.transaction_end(DomId::DOM0, t, true).unwrap();
        let evs = xs.take_watch_events(DomId(3));
        assert_eq!(evs.len(), 1, "one event per net-changed path: {evs:?}");
        assert_eq!(evs[0].path.to_string(), "/svc/state");
    }

    #[test]
    fn debug_format_mentions_engine() {
        let xs = store();
        let s = format!("{xs:?}");
        assert!(s.contains("JitsuMerge"));
    }
}
