//! XenStore watches.
//!
//! A *watch* registers interest in a subtree: whenever any node at or below
//! the watched path is created, modified or removed, the store queues a watch
//! event `(path, token)` for the registering domain. Watches drive most of
//! the asynchronous coordination in the toolstack — device backends watch
//! frontend state keys, Conduit servers watch their `listen` directory, and
//! Synjitsu watches the per-unikernel handoff area.
//!
//! Following the real protocol, registering a watch immediately queues one
//! synthetic event for the watched path so the watcher can pick up existing
//! state.

use crate::error::{Error, Result};
use crate::path::Path;
use crate::perms::DomId;
use std::collections::VecDeque;

/// A registered watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watch {
    /// The domain that registered the watch.
    pub dom: DomId,
    /// The watched path; events fire for this path and everything below it.
    pub path: Path,
    /// An opaque token echoed back in events.
    pub token: String,
}

/// A queued watch event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The path that changed (or the watched path itself for the initial
    /// synthetic event).
    pub path: Path,
    /// The token supplied at registration.
    pub token: String,
}

/// Registration table and per-domain event queues.
#[derive(Debug, Default, Clone)]
pub struct WatchManager {
    watches: Vec<Watch>,
    queues: Vec<(DomId, VecDeque<WatchEvent>)>,
}

impl WatchManager {
    /// Create an empty manager.
    pub fn new() -> WatchManager {
        WatchManager::default()
    }

    fn queue_mut(&mut self, dom: DomId) -> &mut VecDeque<WatchEvent> {
        if let Some(idx) = self.queues.iter().position(|(d, _)| *d == dom) {
            &mut self.queues[idx].1
        } else {
            self.queues.push((dom, VecDeque::new()));
            // jitsu-lint: allow(P001, "a queue entry was pushed on the previous line")
            &mut self.queues.last_mut().expect("just pushed").1
        }
    }

    /// Register a watch. Duplicate `(dom, path, token)` registrations are
    /// rejected. Queues the initial synthetic event.
    pub fn watch(&mut self, dom: DomId, path: Path, token: impl Into<String>) -> Result<()> {
        let token = token.into();
        if self
            .watches
            .iter()
            .any(|w| w.dom == dom && w.path == path && w.token == token)
        {
            return Err(Error::DuplicateWatch);
        }
        self.watches.push(Watch {
            dom,
            path: path.clone(),
            token: token.clone(),
        });
        self.queue_mut(dom).push_back(WatchEvent { path, token });
        Ok(())
    }

    /// Remove a watch registered with [`WatchManager::watch`].
    pub fn unwatch(&mut self, dom: DomId, path: &Path, token: &str) -> Result<()> {
        let before = self.watches.len();
        self.watches
            .retain(|w| !(w.dom == dom && &w.path == path && w.token == token));
        if self.watches.len() == before {
            Err(Error::WatchNotFound)
        } else {
            Ok(())
        }
    }

    /// Number of watches registered by a domain.
    pub fn count_for(&self, dom: DomId) -> usize {
        self.watches.iter().filter(|w| w.dom == dom).count()
    }

    /// All registered watches.
    pub fn watches(&self) -> &[Watch] {
        &self.watches
    }

    /// Notify the manager that `changed` was created/modified/removed.
    /// Queues an event for every watch whose path is a prefix of `changed`.
    /// Returns the number of events queued.
    pub fn fire(&mut self, changed: &Path) -> usize {
        let hits: Vec<(DomId, WatchEvent)> = self
            .watches
            .iter()
            .filter(|w| w.path.is_prefix_of(changed))
            .map(|w| {
                (
                    w.dom,
                    WatchEvent {
                        path: changed.clone(),
                        token: w.token.clone(),
                    },
                )
            })
            .collect();
        let n = hits.len();
        for (dom, ev) in hits {
            self.queue_mut(dom).push_back(ev);
        }
        n
    }

    /// Drain all pending events for a domain, in delivery order.
    pub fn take_events(&mut self, dom: DomId) -> Vec<WatchEvent> {
        match self.queues.iter_mut().find(|(d, _)| *d == dom) {
            Some((_, q)) => q.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Number of events currently queued for a domain.
    pub fn pending(&self, dom: DomId) -> usize {
        self.queues
            .iter()
            .find(|(d, _)| *d == dom)
            .map(|(_, q)| q.len())
            .unwrap_or(0)
    }

    /// Drop all watches and pending events registered by a domain (used when
    /// the domain is destroyed).
    pub fn remove_domain(&mut self, dom: DomId) {
        self.watches.retain(|w| w.dom != dom);
        self.queues.retain(|(d, _)| *d != dom);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn registration_queues_initial_event() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(3), p("/conduit/http_server/listen"), "tok")
            .unwrap();
        let evs = wm.take_events(DomId(3));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, p("/conduit/http_server/listen"));
        assert_eq!(evs[0].token, "tok");
        assert_eq!(wm.pending(DomId(3)), 0);
    }

    #[test]
    fn duplicate_watch_rejected() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(3), p("/a"), "t").unwrap();
        assert_eq!(wm.watch(DomId(3), p("/a"), "t"), Err(Error::DuplicateWatch));
        // Same path, different token is fine.
        assert!(wm.watch(DomId(3), p("/a"), "t2").is_ok());
        assert_eq!(wm.count_for(DomId(3)), 2);
    }

    #[test]
    fn fire_matches_subtree() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(3), p("/conduit/http_server"), "srv")
            .unwrap();
        wm.watch(DomId(7), p("/conduit/http_client"), "cli")
            .unwrap();
        wm.take_events(DomId(3));
        wm.take_events(DomId(7));

        let n = wm.fire(&p("/conduit/http_server/listen/conn1"));
        assert_eq!(n, 1);
        let evs = wm.take_events(DomId(3));
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, p("/conduit/http_server/listen/conn1"));
        assert_eq!(evs[0].token, "srv");
        assert!(wm.take_events(DomId(7)).is_empty());

        // A change outside any watched subtree queues nothing.
        assert_eq!(wm.fire(&p("/local/domain/3")), 0);
    }

    #[test]
    fn watch_on_exact_path_fires() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(1), p("/a/b"), "t").unwrap();
        wm.take_events(DomId(1));
        assert_eq!(wm.fire(&p("/a/b")), 1);
        assert_eq!(wm.fire(&p("/a")), 0, "ancestor changes do not fire");
    }

    #[test]
    fn multiple_watchers_each_get_event() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(1), p("/a"), "t1").unwrap();
        wm.watch(DomId(2), p("/a"), "t2").unwrap();
        wm.take_events(DomId(1));
        wm.take_events(DomId(2));
        assert_eq!(wm.fire(&p("/a/x")), 2);
        assert_eq!(wm.take_events(DomId(1)).len(), 1);
        assert_eq!(wm.take_events(DomId(2)).len(), 1);
    }

    #[test]
    fn unwatch_removes_registration() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(1), p("/a"), "t").unwrap();
        wm.take_events(DomId(1));
        wm.unwatch(DomId(1), &p("/a"), "t").unwrap();
        assert_eq!(wm.fire(&p("/a/x")), 0);
        assert_eq!(
            wm.unwatch(DomId(1), &p("/a"), "t"),
            Err(Error::WatchNotFound)
        );
        assert_eq!(wm.watches().len(), 0);
    }

    #[test]
    fn remove_domain_drops_watches_and_queue() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(5), p("/a"), "t").unwrap();
        assert_eq!(wm.pending(DomId(5)), 1);
        wm.remove_domain(DomId(5));
        assert_eq!(wm.count_for(DomId(5)), 0);
        assert_eq!(wm.pending(DomId(5)), 0);
        assert_eq!(wm.fire(&p("/a/b")), 0);
    }

    #[test]
    fn events_are_fifo() {
        let mut wm = WatchManager::new();
        wm.watch(DomId(1), p("/a"), "t").unwrap();
        wm.take_events(DomId(1));
        wm.fire(&p("/a/1"));
        wm.fire(&p("/a/2"));
        wm.fire(&p("/a/3"));
        let evs = wm.take_events(DomId(1));
        let paths: Vec<String> = evs.iter().map(|e| e.path.to_string()).collect();
        assert_eq!(paths, vec!["/a/1", "/a/2", "/a/3"]);
    }
}
