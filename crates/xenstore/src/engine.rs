//! Transaction reconciliation engines.
//!
//! When a transaction commits, the store must decide whether concurrent
//! commits that landed since the transaction started conflict with it. The
//! paper compares three answers (Figure 3):
//!
//! * **Serial** — the behaviour of the default C `xenstored`: *any*
//!   concurrent commit aborts the transaction with `EAGAIN`. Under parallel
//!   VM start/stop load this causes large sets of domain-building RPCs to be
//!   cancelled and retried, and total time grows super-linearly with the
//!   number of parallel sequences.
//! * **Merge** — the OCaml `oxenstored`: the store keeps the transaction's
//!   read and write sets and only conflicts when a concurrently committed
//!   change actually intersects them (node values read or written, or
//!   directory listings the transaction depended on).
//! * **JitsuMerge** — the Jitsu fork's custom merge function: like Merge,
//!   but *sibling creations under a common directory root do not conflict*.
//!   Two toolstack transactions building different domains both create
//!   children under `/local/domain`; the OCaml merge sees both transactions
//!   depending on the shared parent's child list and aborts one of them,
//!   whereas the Jitsu merge recognises the child sets are disjoint and lets
//!   both commit.
//!
//! Each engine also exposes a calibrated [`CostModel`] describing how long
//! its operations take on the ARM evaluation board (the C daemon's
//! filesystem-backed transactions are notably slower per operation); the
//! Figure 3 harness combines conflict behaviour with these costs.

use crate::transaction::Transaction;
use crate::tree::Tree;
use jitsu_sim::SimDuration;

/// Calibrated per-operation costs for a XenStore implementation, used by
/// the Figure 3 harness. These model the relative cost of the C daemon's
/// filesystem-backed transactions versus the in-memory OCaml store, on
/// the Cubieboard2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a single read/write/mkdir/rm request.
    pub op: SimDuration,
    /// Fixed cost of opening a transaction.
    pub txn_begin: SimDuration,
    /// Fixed cost of committing (successfully or not).
    pub txn_commit: SimDuration,
    /// Additional penalty paid when a commit fails and the whole batch
    /// of toolstack RPCs must be retried.
    pub conflict_penalty: SimDuration,
}

/// Which reconciliation engine a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// C `xenstored`: abort on any concurrent commit.
    Serial,
    /// OCaml `oxenstored`: merge with read/write-set conflict detection.
    Merge,
    /// Jitsu's fork: merge that additionally treats creations under a common
    /// directory root as non-conflicting.
    JitsuMerge,
}

impl EngineKind {
    /// All engine kinds, in the order the paper's Figure 3 legend lists them.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::Serial,
        EngineKind::Merge,
        EngineKind::JitsuMerge,
    ];

    /// The label used in Figure 3.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Serial => "Xen 4.4.0 C Xenstored",
            EngineKind::Merge => "Xen 4.4.0 OCaml Xenstored",
            EngineKind::JitsuMerge => "Jitsu Xenstored",
        }
    }

    /// Calibrated per-operation costs on the ARM evaluation board.
    ///
    /// The C daemon stores transaction state on the (SD-card backed)
    /// filesystem, so both individual operations and commits are markedly
    /// more expensive than the in-memory OCaml implementations.
    pub fn cost_model(self) -> CostModel {
        use SimDuration as D;
        match self {
            EngineKind::Serial => CostModel {
                op: D::from_micros(250),
                txn_begin: D::from_micros(800),
                txn_commit: D::from_micros(1500),
                conflict_penalty: D::from_millis(6),
            },
            EngineKind::Merge => CostModel {
                op: D::from_micros(60),
                txn_begin: D::from_micros(120),
                txn_commit: D::from_micros(300),
                conflict_penalty: D::from_millis(4),
            },
            EngineKind::JitsuMerge => CostModel {
                op: D::from_micros(60),
                txn_begin: D::from_micros(120),
                txn_commit: D::from_micros(320),
                conflict_penalty: D::from_millis(4),
            },
        }
    }

    /// Build the engine implementation.
    pub fn build(self) -> Box<dyn TxnEngine> {
        match self {
            EngineKind::Serial => Box::new(SerialEngine),
            EngineKind::Merge => Box::new(MergeEngine),
            EngineKind::JitsuMerge => Box::new(JitsuMergeEngine),
        }
    }
}

/// The outcome of a conflict check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reconcile {
    /// The transaction may commit (replay its write log).
    Commit,
    /// The transaction conflicts and must be retried (`EAGAIN`).
    Conflict {
        /// Human-readable reason, for diagnostics and tests.
        reason: String,
    },
}

/// A transaction reconciliation policy.
pub trait TxnEngine: Send + Sync {
    /// The engine's kind.
    fn kind(&self) -> EngineKind;

    /// Decide whether `txn` may commit against the current `live` tree.
    fn reconcile(&self, live: &Tree, txn: &Transaction) -> Reconcile;
}

/// C `xenstored` behaviour: any interleaved commit conflicts.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialEngine;

impl TxnEngine for SerialEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Serial
    }

    fn reconcile(&self, live: &Tree, txn: &Transaction) -> Reconcile {
        if live.generation() != txn.start_gen {
            Reconcile::Conflict {
                reason: format!(
                    "store advanced from generation {} to {} during the transaction",
                    txn.start_gen,
                    live.generation()
                ),
            }
        } else {
            Reconcile::Commit
        }
    }
}

/// Shared logic for the two merge engines: a three-way comparison between
/// the transaction's pristine `base` tree, its read/write sets, and the
/// current `live` tree, at node granularity. A path conflicts only when the
/// node the transaction depended on actually changed underneath it.
fn merge_conflicts(live: &Tree, txn: &Transaction, ignore_directory_deps: bool) -> Option<String> {
    // Read-set dependencies.
    for (path, kind) in &txn.read_set {
        // Dependencies on nodes the transaction itself created are not
        // dependencies on shared state (the write-set check below still
        // catches a concurrent create of the same path).
        if txn.created_by_txn(path) {
            continue;
        }
        match (txn.base.get(path), live.get(path)) {
            // Observed missing and still missing: the dependency holds.
            (None, None) => {}
            // Observed missing, created concurrently: a read of a
            // nonexistent node conflicts with a concurrent create of that
            // path, whatever kind of read it was.
            (None, Some(_)) => {
                return Some(format!("{path} was created concurrently"));
            }
            (Some(_), None) => {
                // The node we depended on has been removed concurrently —
                // unless the transaction removed it too, in which case the
                // two sides already agree.
                if txn.snapshot.exists(path) {
                    return Some(format!("{path} was removed concurrently"));
                }
            }
            (Some(base), Some(node)) => {
                if kind.depends_on_value() && node.modified_gen != base.modified_gen {
                    return Some(format!("{path} was modified concurrently"));
                }
                if kind.depends_on_children()
                    && !ignore_directory_deps
                    && node.children_gen != base.children_gen
                {
                    return Some(format!("children of {path} changed concurrently"));
                }
            }
        }
    }
    // Write-write conflicts on exact paths.
    for path in txn.written_paths() {
        match (txn.base.get(path), live.get(path)) {
            (None, Some(_)) => {
                return Some(format!("{path} was created concurrently"));
            }
            (Some(base), Some(node)) => {
                if node.modified_gen != base.modified_gen {
                    return Some(format!("{path} was written concurrently"));
                }
            }
            // A concurrently removed write target does not conflict: the
            // merge recreates (or re-removes) it.
            (_, None) => {}
        }
    }
    None
}

/// OCaml `oxenstored` behaviour: conflict only on overlapping read/write
/// sets, including directory-listing dependencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeEngine;

impl TxnEngine for MergeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Merge
    }

    fn reconcile(&self, live: &Tree, txn: &Transaction) -> Reconcile {
        match merge_conflicts(live, txn, false) {
            Some(reason) => Reconcile::Conflict { reason },
            None => Reconcile::Commit,
        }
    }
}

/// Jitsu's merge: sibling creations under a common directory root do not
/// conflict; only genuine value/write overlaps do.
#[derive(Debug, Clone, Copy, Default)]
pub struct JitsuMergeEngine;

impl TxnEngine for JitsuMergeEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::JitsuMerge
    }

    fn reconcile(&self, live: &Tree, txn: &Transaction) -> Reconcile {
        match merge_conflicts(live, txn, true) {
            Some(reason) => Reconcile::Conflict { reason },
            None => Reconcile::Commit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use crate::perms::DomId;
    use crate::transaction::TxnOp;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    /// Build a live tree, a transaction creating one domain subtree, and a
    /// concurrent commit creating a *different* domain subtree — the exact
    /// interleaving produced by parallel VM starts.
    fn parallel_domain_build() -> (Tree, Transaction) {
        let mut live = Tree::new();
        live.write(DomId::DOM0, &p("/local/domain/0/name"), b"dom0")
            .unwrap();

        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.apply(TxnOp::Write {
            path: p("/local/domain/5/name"),
            value: b"unikernel-5".to_vec(),
        })
        .unwrap();
        txn.apply(TxnOp::Write {
            path: p("/local/domain/5/device/vif/0/state"),
            value: b"1".to_vec(),
        })
        .unwrap();

        // Meanwhile another toolstack thread commits domain 6.
        live.write(DomId::DOM0, &p("/local/domain/6/name"), b"unikernel-6")
            .unwrap();
        live.write(DomId::DOM0, &p("/local/domain/6/device/vif/0/state"), b"1")
            .unwrap();
        (live, txn)
    }

    #[test]
    fn serial_engine_aborts_on_any_concurrent_commit() {
        let (live, txn) = parallel_domain_build();
        let engine = SerialEngine;
        assert!(matches!(
            engine.reconcile(&live, &txn),
            Reconcile::Conflict { .. }
        ));
        assert_eq!(engine.kind(), EngineKind::Serial);
    }

    #[test]
    fn serial_engine_commits_when_no_interleaving() {
        let live = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.apply(TxnOp::Write {
            path: p("/a"),
            value: vec![1],
        })
        .unwrap();
        assert_eq!(SerialEngine.reconcile(&live, &txn), Reconcile::Commit);
    }

    #[test]
    fn merge_engine_conflicts_on_shared_parent_directory() {
        // Both transactions create children of /local/domain: the OCaml merge
        // sees the directory dependency and aborts the later one.
        let (live, txn) = parallel_domain_build();
        assert!(matches!(
            MergeEngine.reconcile(&live, &txn),
            Reconcile::Conflict { .. }
        ));
    }

    #[test]
    fn jitsu_engine_allows_sibling_domain_creation() {
        // The Jitsu merge recognises the created subtrees are disjoint.
        let (live, txn) = parallel_domain_build();
        assert_eq!(JitsuMergeEngine.reconcile(&live, &txn), Reconcile::Commit);
        assert_eq!(JitsuMergeEngine.kind(), EngineKind::JitsuMerge);
    }

    #[test]
    fn all_engines_conflict_on_same_path_write() {
        let mut live = Tree::new();
        live.write(DomId::DOM0, &p("/state"), b"a").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.apply(TxnOp::Write {
            path: p("/state"),
            value: b"from-txn".to_vec(),
        })
        .unwrap();
        // Concurrent write to the same node.
        live.write(DomId::DOM0, &p("/state"), b"concurrent")
            .unwrap();
        for kind in EngineKind::ALL {
            let engine = kind.build();
            assert!(
                matches!(engine.reconcile(&live, &txn), Reconcile::Conflict { .. }),
                "{kind:?} must detect a write-write conflict"
            );
        }
    }

    #[test]
    fn merge_engines_conflict_when_read_value_changes() {
        let mut live = Tree::new();
        live.write(DomId::DOM0, &p("/config"), b"v1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.note_read(&p("/config"));
        txn.apply(TxnOp::Write {
            path: p("/derived"),
            value: b"from-v1".to_vec(),
        })
        .unwrap();
        live.write(DomId::DOM0, &p("/config"), b"v2").unwrap();
        assert!(matches!(
            MergeEngine.reconcile(&live, &txn),
            Reconcile::Conflict { .. }
        ));
        assert!(matches!(
            JitsuMergeEngine.reconcile(&live, &txn),
            Reconcile::Conflict { .. }
        ));
    }

    #[test]
    fn read_of_missing_path_conflicts_with_concurrent_create() {
        // Regression: a transaction that *observed a path to be absent*
        // depends on that absence. A concurrent create of exactly that path
        // must conflict, or the transaction commits against a world it
        // never saw (e.g. two toolstack threads both concluding "service
        // not yet registered" and both claiming the slot).
        let mut live = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.note_read(&p("/conduit/http_server"));
        assert!(txn
            .snapshot
            .read(DomId::DOM0, &p("/conduit/http_server"))
            .is_err());
        txn.apply(TxnOp::Write {
            path: p("/decision"),
            value: b"claim".to_vec(),
        })
        .unwrap();
        // Concurrently, another thread creates the path we saw missing.
        live.write(DomId::DOM0, &p("/conduit/http_server"), b"3")
            .unwrap();
        for kind in [EngineKind::Merge, EngineKind::JitsuMerge] {
            assert!(
                matches!(
                    kind.build().reconcile(&live, &txn),
                    Reconcile::Conflict { .. }
                ),
                "{kind:?} must conflict on concurrent create of a read-miss path"
            );
        }
    }

    #[test]
    fn read_of_missing_path_commits_when_it_stays_missing() {
        let mut live = Tree::new();
        live.write(DomId::DOM0, &p("/other"), b"1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.note_read(&p("/conduit/http_server"));
        txn.apply(TxnOp::Write {
            path: p("/decision"),
            value: b"claim".to_vec(),
        })
        .unwrap();
        // An unrelated concurrent commit advances the store, but the absent
        // path stays absent: the dependency holds and the merge engines
        // commit.
        live.write(DomId::DOM0, &p("/other"), b"2").unwrap();
        assert_eq!(MergeEngine.reconcile(&live, &txn), Reconcile::Commit);
        assert_eq!(JitsuMergeEngine.reconcile(&live, &txn), Reconcile::Commit);
    }

    #[test]
    fn directory_listing_of_missing_path_conflicts_with_concurrent_create() {
        // Even the Jitsu engine, which ignores child-list changes on
        // *existing* directories, must honour an existence dependency: a
        // directory listing that failed with ENOENT conflicts with the
        // directory being created concurrently.
        let mut live = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.note_dir_read(&p("/conduit/flows"));
        txn.apply(TxnOp::Write {
            path: p("/decision"),
            value: vec![1],
        })
        .unwrap();
        live.mkdir(DomId::DOM0, &p("/conduit/flows")).unwrap();
        assert!(matches!(
            JitsuMergeEngine.reconcile(&live, &txn),
            Reconcile::Conflict { .. }
        ));
    }

    #[test]
    fn merge_engines_conflict_when_read_node_removed() {
        let mut live = Tree::new();
        live.write(DomId::DOM0, &p("/config"), b"v1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.note_read(&p("/config"));
        txn.apply(TxnOp::Write {
            path: p("/derived"),
            value: vec![1],
        })
        .unwrap();
        live.rm(DomId::DOM0, &p("/config")).unwrap();
        for kind in [EngineKind::Merge, EngineKind::JitsuMerge] {
            assert!(
                matches!(
                    kind.build().reconcile(&live, &txn),
                    Reconcile::Conflict { .. }
                ),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn merge_engines_commit_on_disjoint_updates() {
        let mut live = Tree::new();
        live.write(DomId::DOM0, &p("/a"), b"1").unwrap();
        live.mkdir(DomId::DOM0, &p("/b")).unwrap();
        live.mkdir(DomId::DOM0, &p("/c")).unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &live);
        txn.apply(TxnOp::Write {
            path: p("/b/x"),
            value: vec![1],
        })
        .unwrap();
        // Unrelated concurrent commit.
        live.write(DomId::DOM0, &p("/c/y"), b"2").unwrap();
        assert_eq!(MergeEngine.reconcile(&live, &txn), Reconcile::Commit);
        assert_eq!(JitsuMergeEngine.reconcile(&live, &txn), Reconcile::Commit);
        // The serial engine still aborts.
        assert!(matches!(
            SerialEngine.reconcile(&live, &txn),
            Reconcile::Conflict { .. }
        ));
    }

    #[test]
    fn labels_and_cost_models() {
        assert!(EngineKind::Serial.label().contains("C Xenstored"));
        assert!(EngineKind::Merge.label().contains("OCaml"));
        assert!(EngineKind::JitsuMerge.label().contains("Jitsu"));
        let c = EngineKind::Serial.cost_model();
        let j = EngineKind::JitsuMerge.cost_model();
        assert!(c.op > j.op, "filesystem-backed C daemon is slower per op");
        assert!(c.txn_commit > j.txn_commit);
    }

    #[test]
    fn engine_kind_build_round_trips() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.build().kind(), kind);
        }
    }
}
