//! XenStore paths.
//!
//! Paths are `/`-separated, absolute, and name nodes in the store tree,
//! e.g. `/local/domain/3/device/vif/0/state` or `/conduit/http_server/listen`.
//! Path components may contain ASCII letters, digits, `-`, `_`, `.`, `@` and
//! `:` (the character set accepted by the real store).

use crate::error::{Error, Result};
use std::fmt;

/// Maximum length of a path accepted by the store, matching the classic
/// XenStore limit.
pub const MAX_PATH_LEN: usize = 3072;

/// An absolute, validated XenStore path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    components: Vec<String>,
}

impl Path {
    /// The root path `/`.
    pub fn root() -> Path {
        Path {
            components: Vec::new(),
        }
    }

    /// Parse and validate an absolute path string.
    pub fn parse(s: &str) -> Result<Path> {
        if s.is_empty() {
            return Err(Error::Invalid("empty path".into()));
        }
        if s.len() > MAX_PATH_LEN {
            return Err(Error::Invalid(format!(
                "path longer than {MAX_PATH_LEN} bytes"
            )));
        }
        if !s.starts_with('/') {
            return Err(Error::Invalid(format!("path must be absolute: {s}")));
        }
        let mut components = Vec::new();
        for comp in s.split('/') {
            if comp.is_empty() {
                continue; // leading slash / trailing slash / doubled slash
            }
            Self::validate_component(comp)?;
            components.push(comp.to_string());
        }
        Ok(Path { components })
    }

    fn validate_component(comp: &str) -> Result<()> {
        if comp == "." || comp == ".." {
            return Err(Error::Invalid(format!(
                "relative component not allowed: {comp}"
            )));
        }
        for c in comp.chars() {
            let ok = c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '@' | ':' | '+');
            if !ok {
                return Err(Error::Invalid(format!(
                    "invalid character {c:?} in component {comp:?}"
                )));
            }
        }
        Ok(())
    }

    /// The path components, in order from the root.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Number of components (0 for the root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// True if this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The last component, or `None` for the root.
    pub fn basename(&self) -> Option<&str> {
        self.components.last().map(|s| s.as_str())
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.components.is_empty() {
            None
        } else {
            Some(Path {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Append a single validated component.
    pub fn child(&self, component: &str) -> Result<Path> {
        Self::validate_component(component)?;
        let mut components = self.components.clone();
        components.push(component.to_string());
        Ok(Path { components })
    }

    /// Join with a relative suffix that may contain multiple components
    /// (e.g. `"device/vif/0"`).
    pub fn join(&self, suffix: &str) -> Result<Path> {
        let mut components = self.components.clone();
        for comp in suffix.split('/') {
            if comp.is_empty() {
                continue;
            }
            Self::validate_component(comp)?;
            components.push(comp.to_string());
        }
        Ok(Path { components })
    }

    /// True if `self` is `other` or an ancestor of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        if self.components.len() > other.components.len() {
            return false;
        }
        self.components
            .iter()
            .zip(other.components.iter())
            .all(|(a, b)| a == b)
    }

    /// True if `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &Path) -> bool {
        self.components.len() < other.components.len() && self.is_prefix_of(other)
    }

    /// Iterate over this path and all its ancestors, from the root down to
    /// the path itself.
    pub fn ancestry(&self) -> Vec<Path> {
        let mut out = Vec::with_capacity(self.components.len() + 1);
        for i in 0..=self.components.len() {
            out.push(Path {
                components: self.components[..i].to_vec(),
            });
        }
        out
    }

    /// The first component, or `None` for the root — used by the Jitsu
    /// transaction engine to partition conflicts by top-level directory.
    pub fn top_level(&self) -> Option<&str> {
        self.components.first().map(|s| s.as_str())
    }

    /// The common-root prefix of two paths: the longest shared ancestry.
    pub fn common_prefix(&self, other: &Path) -> Path {
        let shared: Vec<String> = self
            .components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .map(|(a, _)| a.clone())
            .collect();
        Path { components: shared }
    }

    /// The conventional per-domain home directory, `/local/domain/<domid>`.
    pub fn domain_home(domid: u32) -> Path {
        Path {
            components: vec!["local".into(), "domain".into(), domid.to_string()],
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            write!(f, "/")
        } else {
            for c in &self.components {
                write!(f, "/{c}")?;
            }
            Ok(())
        }
    }
}

impl std::str::FromStr for Path {
    type Err = Error;
    fn from_str(s: &str) -> Result<Path> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for p in [
            "/local",
            "/local/domain/3/device/vif/0/state",
            "/conduit/http_server/listen/conn1",
            "/tool/xenstored",
        ] {
            assert_eq!(Path::parse(p).unwrap().to_string(), p);
        }
        assert_eq!(Path::parse("/").unwrap().to_string(), "/");
        assert_eq!(Path::parse("/a//b/").unwrap().to_string(), "/a/b");
    }

    #[test]
    fn rejects_invalid_paths() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("relative/path").is_err());
        assert!(Path::parse("/has space").is_err());
        assert!(Path::parse("/has\ttab").is_err());
        assert!(Path::parse("/../etc").is_err());
        assert!(Path::parse("/a/./b").is_err());
        let long = format!("/{}", "x".repeat(MAX_PATH_LEN + 1));
        assert!(Path::parse(&long).is_err());
    }

    #[test]
    fn accepts_xenstore_charset() {
        assert!(Path::parse("/local/domain/0/backend/vif/3/0/mac-addr").is_ok());
        assert!(Path::parse("/vm/uuid:1234-abcd").is_ok());
        assert!(Path::parse("/conduit/http_server@host").is_ok());
        assert!(Path::parse("/feature/x+y").is_ok());
    }

    #[test]
    fn parent_basename_depth() {
        let p = Path::parse("/local/domain/3").unwrap();
        assert_eq!(p.depth(), 3);
        assert_eq!(p.basename(), Some("3"));
        assert_eq!(p.parent().unwrap().to_string(), "/local/domain");
        assert_eq!(Path::root().parent(), None);
        assert_eq!(Path::root().basename(), None);
        assert!(Path::root().is_root());
        assert!(!p.is_root());
    }

    #[test]
    fn child_and_join() {
        let p = Path::parse("/local/domain").unwrap();
        assert_eq!(p.child("7").unwrap().to_string(), "/local/domain/7");
        assert!(p.child("bad name").is_err());
        assert_eq!(
            p.join("7/device/vif/0").unwrap().to_string(),
            "/local/domain/7/device/vif/0"
        );
        assert_eq!(p.join("").unwrap(), p);
    }

    #[test]
    fn prefix_and_ancestor() {
        let a = Path::parse("/local/domain").unwrap();
        let b = Path::parse("/local/domain/3/vchan").unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(Path::root().is_prefix_of(&a));
        let c = Path::parse("/conduit").unwrap();
        assert!(!a.is_prefix_of(&c));
    }

    #[test]
    fn ancestry_lists_all_prefixes() {
        let p = Path::parse("/a/b/c").unwrap();
        let anc = p.ancestry();
        assert_eq!(anc.len(), 4);
        assert_eq!(anc[0], Path::root());
        assert_eq!(anc[1].to_string(), "/a");
        assert_eq!(anc[3].to_string(), "/a/b/c");
    }

    #[test]
    fn top_level_and_common_prefix() {
        let a = Path::parse("/local/domain/3/vchan").unwrap();
        let b = Path::parse("/local/domain/7/vchan").unwrap();
        assert_eq!(a.top_level(), Some("local"));
        assert_eq!(Path::root().top_level(), None);
        assert_eq!(a.common_prefix(&b).to_string(), "/local/domain");
        let c = Path::parse("/conduit/x").unwrap();
        assert_eq!(a.common_prefix(&c), Path::root());
    }

    #[test]
    fn domain_home_convention() {
        assert_eq!(Path::domain_home(12).to_string(), "/local/domain/12");
    }

    #[test]
    fn from_str_impl() {
        let p: Path = "/local/domain/0".parse().unwrap();
        assert_eq!(p.depth(), 3);
        assert!("not-absolute".parse::<Path>().is_err());
    }

    #[test]
    fn ordering_is_lexicographic_by_component() {
        let mut v = [
            Path::parse("/b").unwrap(),
            Path::parse("/a/z").unwrap(),
            Path::parse("/a").unwrap(),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            vec!["/a", "/a/z", "/b"]
        );
    }
}
