//! Transactions.
//!
//! A transaction gives a domain an isolated snapshot of the store: reads and
//! writes inside the transaction see a consistent view, and the batch is
//! applied atomically at commit time (or discarded on abort). Because the
//! tree is persistent, opening a transaction is an O(1) pointer copy — the
//! snapshot shares every node with the live tree until one side mutates.
//!
//! Commit is a *three-way merge*: the transaction keeps the pristine tree it
//! started from (`base`) next to its mutated `snapshot`, so at commit time
//! the store can compute the transaction's net effect as a structural diff
//! `base → snapshot` and graft it onto the (possibly concurrently advanced)
//! live tree. Commit fails with `EAGAIN` only when a concurrent commit
//! actually conflicts — *which* interleavings count as conflicts is decided
//! by the pluggable reconciliation engine ([`crate::engine`]) at node
//! granularity, and is exactly what Figure 3 of the paper measures.

use crate::error::Result;
use crate::path::Path;
use crate::perms::{DomId, Permissions};
use crate::tree::{Tree, TreeDiff};
use std::collections::BTreeMap;

/// The kind of dependency a transaction recorded on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// The transaction read the node's value (or its permissions, or checked
    /// its existence). Reads of *missing* paths are recorded too: a read
    /// that observed absence conflicts with a concurrent create of that
    /// path.
    Value,
    /// The transaction listed the node's children, or depended on the child
    /// list by creating/removing a child beneath it.
    Directory,
    /// Both of the above: the transaction read the node's value *and*
    /// depended on its child list. Neither dependency may be dropped — a
    /// value read followed by a child creation still conflicts with a
    /// concurrent value change.
    Both,
}

impl ReadKind {
    /// True if the dependency includes the node's value.
    pub fn depends_on_value(self) -> bool {
        matches!(self, ReadKind::Value | ReadKind::Both)
    }

    /// True if the dependency includes the node's child list.
    pub fn depends_on_children(self) -> bool {
        matches!(self, ReadKind::Directory | ReadKind::Both)
    }
}

/// One mutation recorded in a transaction's write log.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOp {
    /// Write a value (creating the node if needed).
    Write {
        /// Target path.
        path: Path,
        /// New value.
        value: Vec<u8>,
    },
    /// Create an empty node.
    Mkdir {
        /// Target path.
        path: Path,
    },
    /// Remove a subtree.
    Rm {
        /// Target path.
        path: Path,
    },
    /// Replace a node's permissions.
    SetPerms {
        /// Target path.
        path: Path,
        /// New permissions.
        perms: Permissions,
    },
}

impl TxnOp {
    /// The path this operation touches.
    pub fn path(&self) -> &Path {
        match self {
            TxnOp::Write { path, .. }
            | TxnOp::Mkdir { path }
            | TxnOp::Rm { path }
            | TxnOp::SetPerms { path, .. } => path,
        }
    }
}

/// An open transaction: the pristine base tree it started from, the mutable
/// snapshot all in-transaction operations run against, and the recorded
/// read set and write log.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// The transaction id handed to the client.
    pub id: u32,
    /// The domain that opened the transaction.
    pub dom: DomId,
    /// Store generation at the time the transaction started.
    pub start_gen: u64,
    /// The tree exactly as it was when the transaction started — the common
    /// ancestor of the three-way merge at commit time. An O(1) copy.
    pub base: Tree,
    /// The isolated snapshot all in-transaction operations run against.
    /// Starts as another O(1) copy of `base`; mutations path-copy.
    pub snapshot: Tree,
    /// Paths read (and how) during the transaction, including reads that
    /// observed a path to be *missing*.
    pub read_set: BTreeMap<Path, ReadKind>,
    /// Mutations to replay at commit time, in order.
    pub write_log: Vec<TxnOp>,
    /// Number of times this logical transaction has been retried after
    /// `EAGAIN` (maintained by the store for diagnostics).
    pub retries: u32,
}

impl Transaction {
    /// Open a transaction against the current state of `tree`. O(1): both
    /// the base and the snapshot share every node with `tree`.
    pub fn begin(id: u32, dom: DomId, tree: &Tree) -> Transaction {
        Transaction {
            id,
            dom,
            start_gen: tree.generation(),
            base: tree.clone(),
            snapshot: tree.clone(),
            read_set: BTreeMap::new(),
            write_log: Vec::new(),
            retries: 0,
        }
    }

    /// Record a value-read dependency on `path`. Callers must record reads
    /// of missing paths too — observing absence is a dependency that a
    /// concurrent create invalidates. Widens an existing directory
    /// dependency to [`ReadKind::Both`].
    pub fn note_read(&mut self, path: &Path) {
        self.read_set
            .entry(path.clone())
            .and_modify(|kind| {
                if *kind == ReadKind::Directory {
                    *kind = ReadKind::Both;
                }
            })
            .or_insert(ReadKind::Value);
    }

    /// Record a directory (child-list) dependency on `path`. Widens an
    /// existing value dependency to [`ReadKind::Both`] — it must never be
    /// dropped, or a concurrent value change would slip past the engines.
    pub fn note_dir_read(&mut self, path: &Path) {
        self.read_set
            .entry(path.clone())
            .and_modify(|kind| {
                if *kind == ReadKind::Value {
                    *kind = ReadKind::Both;
                }
            })
            .or_insert(ReadKind::Directory);
    }

    /// Paths written by this transaction, in log order (may repeat).
    pub fn written_paths(&self) -> impl Iterator<Item = &Path> {
        self.write_log.iter().map(|op| op.path())
    }

    /// True if the transaction performed no mutations.
    pub fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }

    /// The deepest ancestor of `path` (possibly `path` itself) that already
    /// exists in the snapshot — the directory whose child list a creation at
    /// `path` actually depends on.
    fn deepest_existing_ancestor(&self, path: &Path) -> Path {
        let mut best = Path::root();
        for p in path.ancestry() {
            if self.snapshot.exists(&p) {
                best = p;
            } else {
                break;
            }
        }
        best
    }

    /// Apply an operation to the snapshot and record it in the write log.
    /// Mutations that fail permission or validity checks are not recorded.
    pub fn apply(&mut self, op: TxnOp) -> Result<()> {
        match &op {
            TxnOp::Write { path, value } => {
                // A creation depends on the child list of the deepest
                // directory that existed before this operation.
                let dep = if self.snapshot.exists(path) {
                    None
                } else {
                    Some(self.deepest_existing_ancestor(path))
                };
                self.snapshot.write(self.dom, path, value)?;
                if let Some(dep) = dep {
                    self.note_dir_read(&dep);
                }
            }
            TxnOp::Mkdir { path } => {
                let dep = if self.snapshot.exists(path) {
                    None
                } else {
                    Some(self.deepest_existing_ancestor(path))
                };
                self.snapshot.mkdir(self.dom, path)?;
                if let Some(dep) = dep {
                    self.note_dir_read(&dep);
                }
            }
            TxnOp::Rm { path } => {
                self.snapshot.rm(self.dom, path)?;
                if let Some(parent) = path.parent() {
                    self.note_dir_read(&parent);
                }
            }
            TxnOp::SetPerms { path, perms } => {
                self.snapshot.set_perms(self.dom, path, perms.clone())?;
            }
        }
        self.write_log.push(op);
        Ok(())
    }

    /// True if `path` was created by this transaction (it exists in the
    /// snapshot but only came into being after the transaction started).
    pub fn created_by_txn(&self, path: &Path) -> bool {
        self.snapshot
            .get(path)
            .map(|n| n.created_gen > self.start_gen)
            .unwrap_or(false)
    }

    /// The transaction's net effect: the structural diff from the pristine
    /// base to the mutated snapshot. Thanks to structural sharing this costs
    /// O(paths touched), not O(store size).
    pub fn changes(&self) -> TreeDiff {
        Tree::diff(&self.base, &self.snapshot)
    }

    /// Three-way merge: graft the transaction's net effect (`base →
    /// snapshot`) onto `live`, which may have advanced concurrently. The
    /// engines decide *whether* the merge is safe; this method performs it.
    ///
    /// Removals are applied first (topmost removed node per subtree), then
    /// creations and value updates in depth-first order (parents before
    /// children) — writes to concurrently removed nodes recreate them with
    /// the snapshot's permissions, matching the remove-then-write serial
    /// order — then permission updates, where a concurrently removed target
    /// is treated as already gone (the write-then-remove serial order).
    ///
    /// An error part-way through can leave `live` partially merged; the
    /// store commits onto an O(1) scratch copy and swaps it in only on
    /// success, so a failed commit never mutates the live tree.
    pub fn merge_onto(&self, live: &mut Tree) -> Result<()> {
        let diff = self.changes();
        for path in diff.removed_roots() {
            match live.rm(self.dom, path) {
                Ok(()) | Err(crate::error::Error::NoEntry(_)) => {}
                Err(e) => return Err(e),
            }
        }
        let added = diff.added.iter().map(|(path, _)| (path, true));
        let updated = diff.value_changed.iter().map(|path| (path, false));
        for (path, is_creation) in added.chain(updated) {
            // A *created* path that already exists in the live tree can only
            // be an implicit ancestor (explicit creations of an existing
            // path conflict in the engines): both sides created the same
            // directory on the way to disjoint children, so the nodes merge
            // and the live one — possibly carrying a concurrent value —
            // wins. Never clobber it with the snapshot's empty scaffold.
            if is_creation && live.exists(path) {
                continue;
            }
            let node = self
                .snapshot
                .get(path)
                // jitsu-lint: allow(P001, "the diff enumerates paths present in the snapshot")
                .expect("diff path exists in snapshot");
            live.write(self.dom, path, &node.value)?;
            // Fresh nodes (including value-changed nodes recreated after a
            // concurrent removal) carry whatever permissions the creation
            // rules derive; restamp the snapshot's if they differ, so e.g.
            // guest ownership survives a dom0 rewrite.
            // jitsu-lint: allow(P001, "the path was written into the live tree on the previous line")
            let live_perms = &live.get(path).expect("just written").perms;
            if *live_perms != node.perms {
                live.set_perms(self.dom, path, node.perms.clone())?;
            }
        }
        for path in &diff.perms_changed {
            // `perms_changed` is disjoint from `added` by construction and
            // the write pass above already restamped the `value_changed`
            // overlap; a node removed concurrently stays gone (the txn only
            // touched its permissions, and the remove wins that serial
            // order).
            if diff.value_changed.binary_search(path).is_ok() || !live.exists(path) {
                continue;
            }
            let node = self
                .snapshot
                .get(path)
                // jitsu-lint: allow(P001, "the diff enumerates paths present in the snapshot")
                .expect("diff path exists in snapshot");
            live.set_perms(self.dom, path, node.perms.clone())?;
        }
        Ok(())
    }

    /// Replay the write log onto `tree` (used by the engines after deciding
    /// the commit does not conflict). Individual op failures are surfaced.
    ///
    /// [`Transaction::merge_onto`] is the net-effect equivalent the store
    /// uses on its commit path; `replay_onto` is kept for op-order-exact
    /// replays in tests and diagnostics.
    pub fn replay_onto(&self, tree: &mut Tree) -> Result<()> {
        for op in &self.write_log {
            match op {
                TxnOp::Write { path, value } => tree.write(self.dom, path, value)?,
                TxnOp::Mkdir { path } => tree.mkdir(self.dom, path)?,
                TxnOp::Rm { path } => {
                    // A node removed by a concurrent commit is treated as
                    // already gone rather than failing the whole batch.
                    match tree.rm(self.dom, path) {
                        Ok(()) | Err(crate::error::Error::NoEntry(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                TxnOp::SetPerms { path, perms } => tree.set_perms(self.dom, path, perms.clone())?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::DomId;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn begin_snapshots_current_state() {
        let mut tree = Tree::new();
        tree.write(DomId::DOM0, &p("/a"), b"1").unwrap();
        let txn = Transaction::begin(1, DomId::DOM0, &tree);
        assert_eq!(txn.start_gen, tree.generation());
        assert_eq!(txn.snapshot.read(DomId::DOM0, &p("/a")).unwrap(), b"1");
        assert!(txn.is_read_only());
    }

    #[test]
    fn begin_is_a_pointer_copy_not_a_deep_clone() {
        let mut tree = Tree::new();
        for i in 0..500 {
            tree.write(DomId::DOM0, &p(&format!("/bulk/k{i}")), b"v")
                .unwrap();
        }
        let txn = Transaction::begin(1, DomId::DOM0, &tree);
        assert!(
            txn.snapshot.shares_root_with(&tree),
            "snapshot must share the live root"
        );
        assert!(txn.base.shares_root_with(&tree), "base must share too");
    }

    #[test]
    fn writes_are_isolated_until_merged() {
        let mut tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Write {
            path: p("/local/domain/5/name"),
            value: b"web".to_vec(),
        })
        .unwrap();
        assert!(
            !tree.exists(&p("/local/domain/5/name")),
            "live tree untouched"
        );
        assert!(txn.snapshot.exists(&p("/local/domain/5/name")));
        txn.merge_onto(&mut tree).unwrap();
        assert_eq!(
            tree.read(DomId::DOM0, &p("/local/domain/5/name")).unwrap(),
            b"web"
        );
        assert!(!txn.is_read_only());
    }

    #[test]
    fn merge_and_replay_agree_on_the_net_effect() {
        let mut tree = Tree::new();
        tree.write(DomId::DOM0, &p("/keep"), b"0").unwrap();
        tree.write(DomId::DOM0, &p("/dead/x"), b"1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Write {
            path: p("/a/b"),
            value: b"2".to_vec(),
        })
        .unwrap();
        txn.apply(TxnOp::Rm { path: p("/dead") }).unwrap();
        txn.apply(TxnOp::Write {
            path: p("/keep"),
            value: b"9".to_vec(),
        })
        .unwrap();
        let mut merged = tree.clone();
        let mut replayed = tree.clone();
        txn.merge_onto(&mut merged).unwrap();
        txn.replay_onto(&mut replayed).unwrap();
        assert!(Tree::diff(&merged, &replayed).is_empty());
        assert!(Tree::diff(&merged, &txn.snapshot).is_empty());
    }

    #[test]
    fn changes_reports_the_net_effect_only() {
        let mut tree = Tree::new();
        tree.write(DomId::DOM0, &p("/a"), b"1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        // Write then remove: net effect on /tmp is nothing.
        txn.apply(TxnOp::Write {
            path: p("/tmp"),
            value: b"x".to_vec(),
        })
        .unwrap();
        txn.apply(TxnOp::Rm { path: p("/tmp") }).unwrap();
        // Overwrite twice: one net value change.
        txn.apply(TxnOp::Write {
            path: p("/a"),
            value: b"2".to_vec(),
        })
        .unwrap();
        txn.apply(TxnOp::Write {
            path: p("/a"),
            value: b"3".to_vec(),
        })
        .unwrap();
        let diff = txn.changes();
        assert!(diff.added.is_empty());
        assert!(diff.removed.is_empty());
        assert_eq!(diff.value_changed, vec![p("/a")]);
        assert_eq!(txn.write_log.len(), 4, "the log still records every op");
    }

    #[test]
    fn apply_records_directory_dependency_on_deepest_existing_ancestor() {
        let mut tree = Tree::new();
        tree.mkdir(DomId::DOM0, &p("/local/domain")).unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Mkdir {
            path: p("/local/domain/5"),
        })
        .unwrap();
        assert_eq!(
            txn.read_set.get(&p("/local/domain")),
            Some(&ReadKind::Directory)
        );
        // A second creation below the new node depends only on state the
        // transaction itself created, so no new shared dependency appears.
        txn.apply(TxnOp::Mkdir {
            path: p("/local/domain/5/device"),
        })
        .unwrap();
        assert!(
            !txn.read_set.contains_key(&p("/local/domain/5"))
                || txn.created_by_txn(&p("/local/domain/5"))
        );
        assert!(txn.created_by_txn(&p("/local/domain/5")));
        assert!(!txn.created_by_txn(&p("/local/domain")));
    }

    #[test]
    fn read_dependencies_widen_and_never_downgrade() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        // Directory then value: both dependencies survive.
        txn.note_dir_read(&p("/a"));
        txn.note_read(&p("/a"));
        assert_eq!(txn.read_set.get(&p("/a")), Some(&ReadKind::Both));
        // Value then directory: likewise.
        txn.note_read(&p("/c"));
        txn.note_dir_read(&p("/c"));
        assert_eq!(txn.read_set.get(&p("/c")), Some(&ReadKind::Both));
        txn.note_read(&p("/b"));
        assert_eq!(txn.read_set.get(&p("/b")), Some(&ReadKind::Value));
        assert!(ReadKind::Both.depends_on_value() && ReadKind::Both.depends_on_children());
        assert!(!ReadKind::Directory.depends_on_value());
        assert!(!ReadKind::Value.depends_on_children());
    }

    #[test]
    fn reads_of_missing_paths_are_recorded() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        // The store notes the read before attempting it, so a read that
        // returns ENOENT still lands in the read set.
        txn.note_read(&p("/not/yet/here"));
        assert!(txn.snapshot.read(DomId::DOM0, &p("/not/yet/here")).is_err());
        assert_eq!(
            txn.read_set.get(&p("/not/yet/here")),
            Some(&ReadKind::Value)
        );
    }

    #[test]
    fn failed_ops_are_not_logged() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId(5), &tree);
        // dom5 cannot write under dom0's tree.
        assert!(txn
            .apply(TxnOp::Write {
                path: p("/tool/x"),
                value: b"v".to_vec()
            })
            .is_err());
        assert!(txn.write_log.is_empty());
    }

    #[test]
    fn merge_tolerates_concurrently_removed_nodes() {
        let mut tree = Tree::new();
        tree.write(DomId::DOM0, &p("/a/b"), b"1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Rm { path: p("/a/b") }).unwrap();
        // Concurrently, someone else removes it first.
        tree.rm(DomId::DOM0, &p("/a/b")).unwrap();
        txn.merge_onto(&mut tree).unwrap();
        assert!(!tree.exists(&p("/a/b")));
    }

    #[test]
    fn written_paths_and_op_path() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Write {
            path: p("/x"),
            value: vec![1],
        })
        .unwrap();
        txn.apply(TxnOp::Mkdir { path: p("/y") }).unwrap();
        let paths: Vec<String> = txn.written_paths().map(|p| p.to_string()).collect();
        assert_eq!(paths, vec!["/x", "/y"]);
        assert_eq!(TxnOp::Rm { path: p("/z") }.path().to_string(), "/z");
    }
}
