//! Transactions.
//!
//! A transaction gives a domain an isolated snapshot of the store: reads and
//! writes inside the transaction see a consistent view, and the batch is
//! applied atomically at commit time (or discarded on abort). Commit may fail
//! with `EAGAIN` when a concurrent commit conflicts — *which* interleavings
//! count as conflicts is decided by the pluggable reconciliation engine
//! ([`crate::engine`]), and is exactly what Figure 3 of the paper measures.

use crate::error::Result;
use crate::path::Path;
use crate::perms::{DomId, Permissions};
use crate::tree::Tree;
use std::collections::BTreeMap;

/// The kind of dependency a transaction recorded on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// The transaction read the node's value (or its permissions, or checked
    /// its existence).
    Value,
    /// The transaction listed the node's children, or depended on the child
    /// list by creating/removing a child beneath it.
    Directory,
}

/// One mutation recorded in a transaction's write log.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOp {
    /// Write a value (creating the node if needed).
    Write {
        /// Target path.
        path: Path,
        /// New value.
        value: Vec<u8>,
    },
    /// Create an empty node.
    Mkdir {
        /// Target path.
        path: Path,
    },
    /// Remove a subtree.
    Rm {
        /// Target path.
        path: Path,
    },
    /// Replace a node's permissions.
    SetPerms {
        /// Target path.
        path: Path,
        /// New permissions.
        perms: Permissions,
    },
}

impl TxnOp {
    /// The path this operation touches.
    pub fn path(&self) -> &Path {
        match self {
            TxnOp::Write { path, .. }
            | TxnOp::Mkdir { path }
            | TxnOp::Rm { path }
            | TxnOp::SetPerms { path, .. } => path,
        }
    }
}

/// An open transaction: a snapshot of the tree plus the recorded read set
/// and write log.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// The transaction id handed to the client.
    pub id: u32,
    /// The domain that opened the transaction.
    pub dom: DomId,
    /// Store generation at the time the transaction started.
    pub start_gen: u64,
    /// The isolated snapshot all in-transaction operations run against.
    pub snapshot: Tree,
    /// Paths read (and how) during the transaction.
    pub read_set: BTreeMap<Path, ReadKind>,
    /// Mutations to replay at commit time, in order.
    pub write_log: Vec<TxnOp>,
    /// Number of times this logical transaction has been retried after
    /// `EAGAIN` (maintained by the store for diagnostics).
    pub retries: u32,
}

impl Transaction {
    /// Open a transaction against the current state of `tree`.
    pub fn begin(id: u32, dom: DomId, tree: &Tree) -> Transaction {
        Transaction {
            id,
            dom,
            start_gen: tree.generation(),
            snapshot: tree.clone(),
            read_set: BTreeMap::new(),
            write_log: Vec::new(),
            retries: 0,
        }
    }

    /// Record a value-read dependency on `path`.
    pub fn note_read(&mut self, path: &Path) {
        self.read_set.entry(path.clone()).or_insert(ReadKind::Value);
    }

    /// Record a directory (child-list) dependency on `path`. Upgrades an
    /// existing value dependency.
    pub fn note_dir_read(&mut self, path: &Path) {
        self.read_set.insert(path.clone(), ReadKind::Directory);
    }

    /// Paths written by this transaction, in log order (may repeat).
    pub fn written_paths(&self) -> impl Iterator<Item = &Path> {
        self.write_log.iter().map(|op| op.path())
    }

    /// True if the transaction performed no mutations.
    pub fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }

    /// The deepest ancestor of `path` (possibly `path` itself) that already
    /// exists in the snapshot — the directory whose child list a creation at
    /// `path` actually depends on.
    fn deepest_existing_ancestor(&self, path: &Path) -> Path {
        let mut best = Path::root();
        for p in path.ancestry() {
            if self.snapshot.exists(&p) {
                best = p;
            } else {
                break;
            }
        }
        best
    }

    /// Apply an operation to the snapshot and record it in the write log.
    /// Mutations that fail permission or validity checks are not recorded.
    pub fn apply(&mut self, op: TxnOp) -> Result<()> {
        match &op {
            TxnOp::Write { path, value } => {
                // A creation depends on the child list of the deepest
                // directory that existed before this operation.
                let dep = if self.snapshot.exists(path) {
                    None
                } else {
                    Some(self.deepest_existing_ancestor(path))
                };
                self.snapshot.write(self.dom, path, value)?;
                if let Some(dep) = dep {
                    self.note_dir_read(&dep);
                }
            }
            TxnOp::Mkdir { path } => {
                let dep = if self.snapshot.exists(path) {
                    None
                } else {
                    Some(self.deepest_existing_ancestor(path))
                };
                self.snapshot.mkdir(self.dom, path)?;
                if let Some(dep) = dep {
                    self.note_dir_read(&dep);
                }
            }
            TxnOp::Rm { path } => {
                self.snapshot.rm(self.dom, path)?;
                if let Some(parent) = path.parent() {
                    self.note_dir_read(&parent);
                }
            }
            TxnOp::SetPerms { path, perms } => {
                self.snapshot.set_perms(self.dom, path, perms.clone())?;
            }
        }
        self.write_log.push(op);
        Ok(())
    }

    /// True if `path` was created by this transaction (it exists in the
    /// snapshot but only came into being after the transaction started).
    pub fn created_by_txn(&self, path: &Path) -> bool {
        self.snapshot
            .get(path)
            .map(|n| n.created_gen > self.start_gen)
            .unwrap_or(false)
    }

    /// Replay the write log onto `tree` (used by the engines after deciding
    /// the commit does not conflict). Individual op failures are surfaced.
    pub fn replay_onto(&self, tree: &mut Tree) -> Result<()> {
        for op in &self.write_log {
            match op {
                TxnOp::Write { path, value } => tree.write(self.dom, path, value)?,
                TxnOp::Mkdir { path } => tree.mkdir(self.dom, path)?,
                TxnOp::Rm { path } => {
                    // A node removed by a concurrent commit is treated as
                    // already gone rather than failing the whole batch.
                    match tree.rm(self.dom, path) {
                        Ok(()) | Err(crate::error::Error::NoEntry(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                TxnOp::SetPerms { path, perms } => tree.set_perms(self.dom, path, perms.clone())?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::DomId;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn begin_snapshots_current_state() {
        let mut tree = Tree::new();
        tree.write(DomId::DOM0, &p("/a"), b"1").unwrap();
        let txn = Transaction::begin(1, DomId::DOM0, &tree);
        assert_eq!(txn.start_gen, tree.generation());
        assert_eq!(txn.snapshot.read(DomId::DOM0, &p("/a")).unwrap(), b"1");
        assert!(txn.is_read_only());
    }

    #[test]
    fn writes_are_isolated_until_replay() {
        let mut tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Write {
            path: p("/local/domain/5/name"),
            value: b"web".to_vec(),
        })
        .unwrap();
        assert!(
            !tree.exists(&p("/local/domain/5/name")),
            "live tree untouched"
        );
        assert!(txn.snapshot.exists(&p("/local/domain/5/name")));
        txn.replay_onto(&mut tree).unwrap();
        assert_eq!(
            tree.read(DomId::DOM0, &p("/local/domain/5/name")).unwrap(),
            b"web"
        );
        assert!(!txn.is_read_only());
    }

    #[test]
    fn apply_records_directory_dependency_on_deepest_existing_ancestor() {
        let mut tree = Tree::new();
        tree.mkdir(DomId::DOM0, &p("/local/domain")).unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Mkdir {
            path: p("/local/domain/5"),
        })
        .unwrap();
        assert_eq!(
            txn.read_set.get(&p("/local/domain")),
            Some(&ReadKind::Directory)
        );
        // A second creation below the new node depends only on state the
        // transaction itself created, so no new shared dependency appears.
        txn.apply(TxnOp::Mkdir {
            path: p("/local/domain/5/device"),
        })
        .unwrap();
        assert!(
            !txn.read_set.contains_key(&p("/local/domain/5"))
                || txn.created_by_txn(&p("/local/domain/5"))
        );
        assert!(txn.created_by_txn(&p("/local/domain/5")));
        assert!(!txn.created_by_txn(&p("/local/domain")));
    }

    #[test]
    fn note_read_does_not_downgrade_directory_dependency() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.note_dir_read(&p("/a"));
        txn.note_read(&p("/a"));
        assert_eq!(txn.read_set.get(&p("/a")), Some(&ReadKind::Directory));
        txn.note_read(&p("/b"));
        assert_eq!(txn.read_set.get(&p("/b")), Some(&ReadKind::Value));
    }

    #[test]
    fn failed_ops_are_not_logged() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId(5), &tree);
        // dom5 cannot write under dom0's tree.
        assert!(txn
            .apply(TxnOp::Write {
                path: p("/tool/x"),
                value: b"v".to_vec()
            })
            .is_err());
        assert!(txn.write_log.is_empty());
    }

    #[test]
    fn replay_tolerates_concurrently_removed_nodes() {
        let mut tree = Tree::new();
        tree.write(DomId::DOM0, &p("/a/b"), b"1").unwrap();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Rm { path: p("/a/b") }).unwrap();
        // Concurrently, someone else removes it first.
        tree.rm(DomId::DOM0, &p("/a/b")).unwrap();
        txn.replay_onto(&mut tree).unwrap();
        assert!(!tree.exists(&p("/a/b")));
    }

    #[test]
    fn written_paths_and_op_path() {
        let tree = Tree::new();
        let mut txn = Transaction::begin(1, DomId::DOM0, &tree);
        txn.apply(TxnOp::Write {
            path: p("/x"),
            value: vec![1],
        })
        .unwrap();
        txn.apply(TxnOp::Mkdir { path: p("/y") }).unwrap();
        let paths: Vec<String> = txn.written_paths().map(|p| p.to_string()).collect();
        assert_eq!(paths, vec!["/x", "/y"]);
        assert_eq!(TxnOp::Rm { path: p("/z") }.path().to_string(), "/z");
    }
}
