//! Store tree nodes.
//!
//! Nodes are the unit of structural sharing in the persistent store tree:
//! children are held behind [`Arc`]s, so cloning a node (or a whole
//! [`crate::tree::Tree`]) copies pointers, not subtrees. A transaction
//! snapshot is therefore an O(1) root copy, and a mutation copies only the
//! nodes on the root-to-leaf path it touches (path copying) while every
//! untouched sibling subtree stays shared between the snapshot and the live
//! tree.

use crate::perms::Permissions;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maximum size of a node's value, matching the classic XenStore payload
/// limit of 4096 bytes.
pub const MAX_VALUE_LEN: usize = 4096;

/// One node of the store tree: a value, child nodes, permissions and the
/// generation counters used by the transaction reconciliation engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's value (may be empty — directories usually are).
    pub value: Vec<u8>,
    /// Children keyed by component name, each behind an [`Arc`] so sibling
    /// subtrees are structurally shared across snapshots. `BTreeMap` keeps
    /// directory listings deterministic.
    pub children: BTreeMap<String, Arc<Node>>,
    /// Access control for this node.
    pub perms: Permissions,
    /// Store generation at which this node was created.
    pub created_gen: u64,
    /// Store generation at which the value or permissions last changed.
    pub modified_gen: u64,
    /// Store generation at which the set of children last changed.
    pub children_gen: u64,
}

impl Node {
    /// Create a node with the given permissions at generation `gen`.
    pub fn new(perms: Permissions, gen: u64) -> Node {
        Node {
            value: Vec::new(),
            children: BTreeMap::new(),
            perms,
            created_gen: gen,
            modified_gen: gen,
            children_gen: gen,
        }
    }

    /// Number of nodes in this subtree, including this node.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .values()
            .map(|c| c.subtree_size())
            .sum::<usize>()
    }

    /// Child names in deterministic (sorted) order.
    pub fn child_names(&self) -> Vec<String> {
        self.children.keys().cloned().collect()
    }

    /// True if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perms::DomId;

    #[test]
    fn new_node_is_empty_leaf() {
        let n = Node::new(Permissions::owned_by(DomId::DOM0), 5);
        assert!(n.value.is_empty());
        assert!(n.is_leaf());
        assert_eq!(n.created_gen, 5);
        assert_eq!(n.modified_gen, 5);
        assert_eq!(n.children_gen, 5);
        assert_eq!(n.subtree_size(), 1);
    }

    #[test]
    fn subtree_size_counts_descendants() {
        let mut root = Node::new(Permissions::owned_by(DomId::DOM0), 0);
        let mut a = Node::new(Permissions::owned_by(DomId::DOM0), 1);
        a.children.insert(
            "x".into(),
            Arc::new(Node::new(Permissions::owned_by(DomId::DOM0), 2)),
        );
        root.children.insert("a".into(), Arc::new(a));
        root.children.insert(
            "b".into(),
            Arc::new(Node::new(Permissions::owned_by(DomId::DOM0), 3)),
        );
        assert_eq!(root.subtree_size(), 4);
        assert_eq!(root.child_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(!root.is_leaf());
    }

    #[test]
    fn cloning_a_node_shares_child_subtrees() {
        let mut root = Node::new(Permissions::owned_by(DomId::DOM0), 0);
        let child = Arc::new(Node::new(Permissions::owned_by(DomId::DOM0), 1));
        root.children.insert("a".into(), Arc::clone(&child));
        let copy = root.clone();
        // The clone holds a pointer to the same child allocation.
        assert!(Arc::ptr_eq(&root.children["a"], &copy.children["a"]));
        assert_eq!(Arc::strong_count(&child), 3);
    }
}
