//! # netstack — a memory-safe, sans-io network stack
//!
//! MirageOS unikernels replace the C network stack with OCaml libraries; the
//! paper leans on that memory safety both for its security argument
//! (Table 2: "all traffic parsed on the external network [is] done so in
//! memory-safe OCaml") and for Synjitsu's trick of serialising embryonic TCP
//! connection state through XenStore (§3.3.1). This crate is the Rust
//! analogue: parsers and serialisers for Ethernet, ARP, IPv4, ICMP, UDP and
//! TCP written entirely in safe Rust, a small TCP state machine whose
//! connection control block ([`tcp::Tcb`]) can be serialised and rebuilt in
//! another stack instance, a DNS message codec and authoritative responder
//! (the Jitsu directory service speaks DNS), and a minimal HTTP/1.1 codec
//! used by the evaluation workloads.
//!
//! The stack is *sans-io*: packets are byte slices passed in and out of pure
//! state machines ([`iface::Interface`]), so the same code runs over the
//! simulated bridge, over vchan conduits, or in unit tests with hand-built
//! frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod buf;
pub mod checksum;
pub mod dns;
pub mod ethernet;
pub mod http;
pub mod icmp;
pub mod iface;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use buf::{FrameBuf, FrameBufMut};
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use iface::Interface;
pub use ipv4::{Ipv4Addr, Ipv4Packet, Protocol};
pub use tcp::{Tcb, TcpFlags, TcpSegment, TcpState};

/// Errors produced while parsing or constructing packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer is too short to contain the claimed structure.
    Truncated {
        /// Protocol layer reporting the error.
        layer: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A checksum failed verification.
    BadChecksum(&'static str),
    /// A field held an unsupported or malformed value.
    Malformed {
        /// Protocol layer reporting the error.
        layer: &'static str,
        /// Description of the problem.
        what: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated { layer, needed, got } => {
                write!(
                    f,
                    "{layer}: truncated packet (need {needed} bytes, got {got})"
                )
            }
            NetError::BadChecksum(layer) => write!(f, "{layer}: checksum mismatch"),
            NetError::Malformed { layer, what } => write!(f, "{layer}: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for packet operations.
pub type Result<T> = std::result::Result<T, NetError>;
