//! IPv4 packet parsing and construction.

use crate::buf::{FrameBuf, FrameBufMut};
use crate::checksum;
use crate::{NetError, Result};
use std::fmt;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The limited broadcast address 255.255.255.255.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([255, 255, 255, 255]);
    /// The unspecified address 0.0.0.0.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0, 0, 0, 0]);

    /// Construct from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// Parse dotted-quad notation.
    pub fn parse(s: &str) -> Option<Ipv4Addr> {
        let mut out = [0u8; 4];
        let mut n = 0;
        for part in s.split('.') {
            if n >= 4 {
                return None;
            }
            out[n] = part.parse().ok()?;
            n += 1;
        }
        if n == 4 {
            Some(Ipv4Addr(out))
        } else {
            None
        }
    }

    /// True if this address is within `network/prefix_len`.
    pub fn in_subnet(&self, network: Ipv4Addr, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - prefix_len.min(32));
        (u32::from_be_bytes(self.0) & mask) == (u32::from_be_bytes(network.0) & mask)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol numbers carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl Protocol {
    /// Numeric protocol value.
    pub fn as_u8(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(v) => v,
        }
    }

    /// Decode a numeric value.
    pub fn from_u8(v: u8) -> Protocol {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// Minimum IPv4 header length (no options).
pub const HEADER_LEN: usize = 20;

/// A parsed IPv4 packet (options are not supported, matching the paper's
/// stack which silently ignores them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by fragmentation, which we do not perform).
    pub ident: u16,
    /// Payload bytes: a view into the received frame's shared buffer.
    pub payload: FrameBuf,
}

impl Ipv4Packet {
    /// Construct a packet with the default TTL of 64 (the stack default the
    /// smoltcp/Mirage stacks use).
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: Protocol,
        payload: impl Into<FrameBuf>,
    ) -> Ipv4Packet {
        Ipv4Packet {
            src,
            dst,
            protocol,
            ttl: 64,
            ident: 0,
            payload: payload.into(),
        }
    }

    /// Parse and verify a packet from wire bytes. The payload is an O(1)
    /// view sharing `buf`'s allocation — trailing padding (Ethernet
    /// minimum-size fill) is excluded by the view bounds, not by copying.
    pub fn parse(buf: &FrameBuf) -> Result<Ipv4Packet> {
        if buf.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                layer: "ipv4",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(NetError::Malformed {
                layer: "ipv4",
                what: format!("version {version} is not 4"),
            });
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl < HEADER_LEN || buf.len() < ihl {
            return Err(NetError::Malformed {
                layer: "ipv4",
                what: format!("bad header length {ihl}"),
            });
        }
        if !checksum::verify(&buf[..ihl]) {
            return Err(NetError::BadChecksum("ipv4"));
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < ihl || buf.len() < total_len {
            return Err(NetError::Truncated {
                layer: "ipv4",
                needed: total_len,
                got: buf.len(),
            });
        }
        let ident = u16::from_be_bytes([buf[4], buf[5]]);
        let ttl = buf[8];
        let protocol = Protocol::from_u8(buf[9]);
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        src.copy_from_slice(&buf[12..16]);
        dst.copy_from_slice(&buf[16..20]);
        Ok(Ipv4Packet {
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
            protocol,
            ttl,
            ident,
            payload: buf.slice(ihl..total_len),
        })
    }

    /// Serialise to wire bytes, computing the header checksum.
    pub fn emit(&self) -> FrameBuf {
        // jitsu-lint: allow(N001, "payloads are MTU-bounded (≤1500 bytes), so header + payload is far below 65536")
        let total_len = (HEADER_LEN + self.payload.len()) as u16;
        let mut header = [0u8; HEADER_LEN];
        header[0] = 0x45; // version 4, IHL 5
        header[1] = 0; // DSCP/ECN
        header[2..4].copy_from_slice(&total_len.to_be_bytes());
        header[4..6].copy_from_slice(&self.ident.to_be_bytes());
        header[6] = 0x40; // don't fragment
        header[8] = self.ttl;
        header[9] = self.protocol.as_u8();
        header[12..16].copy_from_slice(&self.src.0);
        header[16..20].copy_from_slice(&self.dst.0);
        let c = checksum::checksum(&header);
        header[10..12].copy_from_slice(&c.to_be_bytes());
        let mut out = FrameBufMut::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&header);
        out.extend_from_slice(&self.payload);
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn round_trip() {
        let p = Ipv4Packet::new(SRC, DST, Protocol::Udp, b"hello".to_vec());
        let bytes = p.emit();
        let parsed = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.ttl, 64);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let p = Ipv4Packet::new(SRC, DST, Protocol::Tcp, vec![0; 8]);
        let mut bytes = p.emit().to_vec();
        bytes[15] ^= 0x01;
        assert_eq!(
            Ipv4Packet::parse(&bytes.into()),
            Err(NetError::BadChecksum("ipv4"))
        );
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        assert!(matches!(
            Ipv4Packet::parse(&FrameBuf::copy_from_slice(&[0x45; 10])),
            Err(NetError::Truncated { layer: "ipv4", .. })
        ));
        let p = Ipv4Packet::new(SRC, DST, Protocol::Udp, vec![1, 2, 3]);
        let mut bytes = p.emit().to_vec();
        bytes[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::parse(&bytes.into()),
            Err(NetError::Malformed { layer: "ipv4", .. })
        ));
        // Payload shorter than total length.
        let bytes = p.emit();
        assert!(Ipv4Packet::parse(&bytes.slice(..bytes.len() - 1)).is_err());
    }

    #[test]
    fn extra_trailing_bytes_are_ignored() {
        // Ethernet minimum-size padding must not end up in the payload:
        // the payload view's bounds stop at the header's total length.
        let p = Ipv4Packet::new(SRC, DST, Protocol::Udp, b"ab".to_vec());
        let mut bytes = p.emit().to_vec();
        bytes.extend_from_slice(&[0u8; 20]);
        let padded = FrameBuf::from_vec(bytes);
        let parsed = Ipv4Packet::parse(&padded).unwrap();
        assert_eq!(parsed.payload, b"ab");
        assert!(parsed.payload.shares_allocation(&padded));
    }

    #[test]
    fn protocol_codes() {
        assert_eq!(Protocol::Icmp.as_u8(), 1);
        assert_eq!(Protocol::Tcp.as_u8(), 6);
        assert_eq!(Protocol::Udp.as_u8(), 17);
        assert_eq!(Protocol::from_u8(6), Protocol::Tcp);
        assert_eq!(Protocol::from_u8(89), Protocol::Other(89));
    }

    #[test]
    fn address_parsing_and_display() {
        assert_eq!(
            Ipv4Addr::parse("192.168.1.20"),
            Some(Ipv4Addr::new(192, 168, 1, 20))
        );
        assert_eq!(Ipv4Addr::parse("1.2.3"), None);
        assert_eq!(Ipv4Addr::parse("1.2.3.4.5"), None);
        assert_eq!(Ipv4Addr::parse("1.2.3.x"), None);
        assert_eq!(Ipv4Addr::new(10, 0, 0, 7).to_string(), "10.0.0.7");
    }

    #[test]
    fn subnet_membership() {
        let net = Ipv4Addr::new(192, 168, 1, 0);
        assert!(Ipv4Addr::new(192, 168, 1, 200).in_subnet(net, 24));
        assert!(!Ipv4Addr::new(192, 168, 2, 1).in_subnet(net, 24));
        assert!(Ipv4Addr::new(8, 8, 8, 8).in_subnet(net, 0));
        assert!(Ipv4Addr::new(192, 168, 1, 1).in_subnet(Ipv4Addr::new(192, 168, 1, 1), 32));
        assert!(!Ipv4Addr::new(192, 168, 1, 2).in_subnet(Ipv4Addr::new(192, 168, 1, 1), 32));
    }
}
