//! TCP segment parsing and construction.

use crate::buf::FrameBuf;
use crate::checksum;
use crate::ipv4::Ipv4Addr;
use crate::{NetError, Result};

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN: sender has finished sending.
    pub fin: bool,
    /// SYN: synchronise sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: the acknowledgement field is valid.
    pub ack: bool,
}

impl TcpFlags {
    /// A pure SYN.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A pure ACK.
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        syn: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        syn: false,
        rst: false,
        psh: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        rst: true,
        syn: false,
        ack: false,
        fin: false,
        psh: false,
    };
    /// PSH+ACK (a data segment).
    pub const PSH_ACK: TcpFlags = TcpFlags {
        psh: true,
        ack: true,
        syn: false,
        fin: false,
        rst: false,
    };

    /// Encode to the header bits.
    pub fn to_bits(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    /// Decode from the header bits.
    pub fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags {
            fin: bits & 0x01 != 0,
            syn: bits & 0x02 != 0,
            rst: bits & 0x04 != 0,
            psh: bits & 0x08 != 0,
            ack: bits & 0x10 != 0,
        }
    }
}

/// TCP header length without options.
pub const HEADER_LEN: usize = 20;

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes: a view into the received frame's shared buffer.
    pub payload: FrameBuf,
}

impl TcpSegment {
    /// Construct a segment with an empty payload.
    pub fn control(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
    ) -> TcpSegment {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            payload: FrameBuf::empty(),
        }
    }

    /// The amount of sequence space this segment occupies (payload plus one
    /// for SYN and one for FIN).
    pub fn seq_len(&self) -> u32 {
        // jitsu-lint: allow(N001, "segment payloads are bounded by the u16 wire length field, well within u32")
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Parse and verify from wire bytes. The payload is an O(1) view
    /// sharing `buf`'s allocation — no bytes are copied.
    pub fn parse(buf: &FrameBuf, src: Ipv4Addr, dst: Ipv4Addr) -> Result<TcpSegment> {
        if buf.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                layer: "tcp",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let data_offset = ((buf[12] >> 4) as usize) * 4;
        if data_offset < HEADER_LEN || buf.len() < data_offset {
            return Err(NetError::Malformed {
                layer: "tcp",
                what: format!("bad data offset {data_offset}"),
            });
        }
        // jitsu-lint: allow(N001, "buf is an IPv4 payload, itself bounded by the datagram's u16 total-length field")
        let ph = checksum::pseudo_header(src.0, dst.0, 6, buf.len() as u16);
        if checksum::finish(checksum::partial(ph, buf)) != 0 {
            return Err(NetError::BadChecksum("tcp"));
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_bits(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            payload: buf.slice(data_offset..),
        })
    }

    /// Serialise to wire bytes with a valid checksum.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> FrameBuf {
        let len = HEADER_LEN + self.payload.len();
        let mut out = vec![0u8; len];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = ((HEADER_LEN / 4) as u8) << 4;
        out[13] = self.flags.to_bits();
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[HEADER_LEN..].copy_from_slice(&self.payload);
        // jitsu-lint: allow(N001, "emitted segments are MTU-bounded (≤1500 bytes), far below 65536")
        let ph = checksum::pseudo_header(src.0, dst.0, 6, len as u16);
        let c = checksum::finish(checksum::partial(ph, &out));
        out[16..18].copy_from_slice(&c.to_be_bytes());
        FrameBuf::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 20);

    #[test]
    fn flags_round_trip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::ACK,
            TcpFlags::FIN_ACK,
            TcpFlags::RST,
            TcpFlags::PSH_ACK,
        ] {
            assert_eq!(TcpFlags::from_bits(flags.to_bits()), flags);
        }
        assert_eq!(TcpFlags::SYN.to_bits(), 0x02);
        assert_eq!(TcpFlags::SYN_ACK.to_bits(), 0x12);
    }

    #[test]
    fn segment_round_trip() {
        let seg = TcpSegment {
            src_port: 51000,
            dst_port: 80,
            seq: 0x1234_5678,
            ack: 0x8765_4321,
            flags: TcpFlags::PSH_ACK,
            window: 29200,
            payload: FrameBuf::copy_from_slice(b"GET / HTTP/1.1\r\n\r\n"),
        };
        let bytes = seg.emit(SRC, DST);
        let parsed = TcpSegment::parse(&bytes, SRC, DST).unwrap();
        assert_eq!(parsed, seg);
        assert!(parsed.payload.shares_allocation(&bytes));
    }

    #[test]
    fn checksum_binds_addresses() {
        let seg = TcpSegment::control(1, 2, 3, 4, TcpFlags::SYN);
        let bytes = seg.emit(SRC, DST);
        assert!(TcpSegment::parse(&bytes, SRC, DST).is_ok());
        assert_eq!(
            TcpSegment::parse(&bytes, SRC, Ipv4Addr::new(10, 0, 0, 1)),
            Err(NetError::BadChecksum("tcp"))
        );
    }

    #[test]
    fn corrupted_payload_detected() {
        let seg = TcpSegment {
            payload: FrameBuf::copy_from_slice(b"data"),
            ..TcpSegment::control(1, 2, 3, 4, TcpFlags::PSH_ACK)
        };
        let mut bytes = seg.emit(SRC, DST).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert_eq!(
            TcpSegment::parse(&bytes.into(), SRC, DST),
            Err(NetError::BadChecksum("tcp"))
        );
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let syn = TcpSegment::control(1, 2, 100, 0, TcpFlags::SYN);
        assert_eq!(syn.seq_len(), 1);
        let fin = TcpSegment::control(1, 2, 100, 0, TcpFlags::FIN_ACK);
        assert_eq!(fin.seq_len(), 1);
        let data = TcpSegment {
            payload: vec![0; 10].into(),
            ..TcpSegment::control(1, 2, 100, 0, TcpFlags::ACK)
        };
        assert_eq!(data.seq_len(), 10);
        let ack = TcpSegment::control(1, 2, 100, 0, TcpFlags::ACK);
        assert_eq!(ack.seq_len(), 0);
    }

    #[test]
    fn truncation_and_bad_offset_rejected() {
        assert!(matches!(
            TcpSegment::parse(&FrameBuf::copy_from_slice(&[0; 10]), SRC, DST),
            Err(NetError::Truncated { .. })
        ));
        let seg = TcpSegment::control(1, 2, 3, 4, TcpFlags::ACK);
        let mut bytes = seg.emit(SRC, DST).to_vec();
        bytes[12] = 0x30; // data offset 12 bytes < 20
        assert!(matches!(
            TcpSegment::parse(&bytes.into(), SRC, DST),
            Err(NetError::Malformed { .. })
        ));
    }
}
