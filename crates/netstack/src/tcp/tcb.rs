//! The TCP connection control block (TCB) and its textual serialisation.
//!
//! Figure 7 of the paper shows Synjitsu registering embryonic connections in
//! XenStore as s-expression-like values: a `state` key (`SYN` or `SYN_ACK`),
//! a `tcb` value carrying the endpoint and sequence state, and a `packets`
//! list of buffered data. [`Tcb::to_sexp`] / [`Tcb::from_sexp`] reproduce
//! that format so the proxy and the unikernel exchange connection state as
//! plain store values, exactly as the paper describes.

use crate::ipv4::Ipv4Addr;

/// TCP connection states (the subset the reproduction exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open, waiting for a SYN.
    Listen,
    /// SYN received, SYN-ACK sent, waiting for the final ACK.
    SynReceived,
    /// SYN sent (active open), waiting for SYN-ACK.
    SynSent,
    /// Three-way handshake complete.
    Established,
    /// We sent a FIN and await its ACK.
    FinWait1,
    /// Our FIN was ACKed; waiting for the peer's FIN.
    FinWait2,
    /// Peer sent FIN; we ACKed and may still send.
    CloseWait,
    /// We sent our FIN after CloseWait.
    LastAck,
    /// Connection fully closed.
    Closed,
}

impl TcpState {
    /// Encode as the token used in the XenStore handoff record.
    pub fn as_token(self) -> &'static str {
        match self {
            TcpState::Listen => "LISTEN",
            TcpState::SynReceived => "SYN_RCVD",
            TcpState::SynSent => "SYN_SENT",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait1 => "FIN_WAIT_1",
            TcpState::FinWait2 => "FIN_WAIT_2",
            TcpState::CloseWait => "CLOSE_WAIT",
            TcpState::LastAck => "LAST_ACK",
            TcpState::Closed => "CLOSED",
        }
    }

    /// Decode a token.
    pub fn from_token(s: &str) -> Option<TcpState> {
        Some(match s {
            "LISTEN" => TcpState::Listen,
            "SYN_RCVD" => TcpState::SynReceived,
            "SYN_SENT" => TcpState::SynSent,
            "ESTABLISHED" => TcpState::Established,
            "FIN_WAIT_1" => TcpState::FinWait1,
            "FIN_WAIT_2" => TcpState::FinWait2,
            "CLOSE_WAIT" => TcpState::CloseWait,
            "LAST_ACK" => TcpState::LastAck,
            "CLOSED" => TcpState::Closed,
            _ => return None,
        })
    }
}

/// The serialisable connection control block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tcb {
    /// Connection state.
    pub state: TcpState,
    /// Local (server) address.
    pub local_ip: Ipv4Addr,
    /// Local (server) port.
    pub local_port: u16,
    /// Remote (client) address.
    pub remote_ip: Ipv4Addr,
    /// Remote (client) port.
    pub remote_port: u16,
    /// Initial send sequence number chosen by this end.
    pub isn: u32,
    /// Next sequence number this end will send.
    pub snd_nxt: u32,
    /// Highest cumulative acknowledgement received from the peer.
    pub snd_una: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// Application data received in order but not yet consumed. For a
    /// Synjitsu-proxied connection this is the buffered request bytes the
    /// unikernel replays after the handoff.
    pub buffered: Vec<u8>,
}

impl Tcb {
    /// A fresh listener-side TCB for a connection identified by the 4-tuple.
    pub fn for_listener(
        local_ip: Ipv4Addr,
        local_port: u16,
        remote_ip: Ipv4Addr,
        remote_port: u16,
        isn: u32,
    ) -> Tcb {
        Tcb {
            state: TcpState::Listen,
            local_ip,
            local_port,
            remote_ip,
            remote_port,
            isn,
            snd_nxt: isn,
            snd_una: isn,
            rcv_nxt: 0,
            buffered: Vec::new(),
        }
    }

    /// The connection 4-tuple `(local ip, local port, remote ip, remote port)`.
    pub fn four_tuple(&self) -> (Ipv4Addr, u16, Ipv4Addr, u16) {
        (
            self.local_ip,
            self.local_port,
            self.remote_ip,
            self.remote_port,
        )
    }

    /// Serialise to the XenStore handoff format: an s-expression-like record
    /// matching Figure 7, with buffered bytes hex-encoded.
    pub fn to_sexp(&self) -> String {
        format!(
            "((state {})(src {})(src-port {})(dst {})(dst-port {})(isn {})(snd-nxt {})(snd-una {})(rcv-nxt {})(packets {}))",
            self.state.as_token(),
            self.local_ip,
            self.local_port,
            self.remote_ip,
            self.remote_port,
            self.isn,
            self.snd_nxt,
            self.snd_una,
            self.rcv_nxt,
            hex_encode(&self.buffered),
        )
    }

    /// Parse the handoff format produced by [`Tcb::to_sexp`].
    pub fn from_sexp(s: &str) -> Option<Tcb> {
        let field = |name: &str| -> Option<String> {
            let needle = format!("({name} ");
            let start = s.find(&needle)? + needle.len();
            let end = s[start..].find(')')? + start;
            Some(s[start..end].to_string())
        };
        Some(Tcb {
            state: TcpState::from_token(&field("state")?)?,
            local_ip: Ipv4Addr::parse(&field("src")?)?,
            local_port: field("src-port")?.parse().ok()?,
            remote_ip: Ipv4Addr::parse(&field("dst")?)?,
            remote_port: field("dst-port")?.parse().ok()?,
            isn: field("isn")?.parse().ok()?,
            snd_nxt: field("snd-nxt")?.parse().ok()?,
            snd_una: field("snd-una")?.parse().ok()?,
            rcv_nxt: field("rcv-nxt")?.parse().ok()?,
            buffered: hex_decode(&field("packets")?)?,
        })
    }
}

/// Hex-encode a byte buffer for a XenStore value (`-` for empty, so the
/// store never holds a zero-length value). Public because the handoff
/// coordinator stores raw queued frames in the same format.
pub fn hex_encode(data: &[u8]) -> String {
    if data.is_empty() {
        return "-".to_string();
    }
    data.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decode [`hex_encode`]'s output.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tcb {
        Tcb {
            state: TcpState::Established,
            local_ip: Ipv4Addr::new(192, 168, 1, 20),
            local_port: 80,
            remote_ip: Ipv4Addr::new(192, 168, 1, 100),
            remote_port: 51324,
            isn: 1_000_000,
            snd_nxt: 1_000_001,
            snd_una: 1_000_001,
            rcv_nxt: 42_424_243,
            buffered: b"GET / HTTP/1.1\r\nHost: alice\r\n\r\n".to_vec(),
        }
    }

    #[test]
    fn state_tokens_round_trip() {
        for s in [
            TcpState::Listen,
            TcpState::SynReceived,
            TcpState::SynSent,
            TcpState::Established,
            TcpState::FinWait1,
            TcpState::FinWait2,
            TcpState::CloseWait,
            TcpState::LastAck,
            TcpState::Closed,
        ] {
            assert_eq!(TcpState::from_token(s.as_token()), Some(s));
        }
        assert_eq!(TcpState::from_token("BOGUS"), None);
    }

    #[test]
    fn sexp_round_trip() {
        let tcb = sample();
        let s = tcb.to_sexp();
        assert!(s.contains("(state ESTABLISHED)"));
        assert!(s.contains("(src 192.168.1.20)"));
        assert!(s.contains("(dst-port 51324)"));
        let parsed = Tcb::from_sexp(&s).unwrap();
        assert_eq!(parsed, tcb);
    }

    #[test]
    fn sexp_round_trip_with_empty_buffer() {
        let mut tcb = sample();
        tcb.buffered.clear();
        tcb.state = TcpState::SynReceived;
        let parsed = Tcb::from_sexp(&tcb.to_sexp()).unwrap();
        assert_eq!(parsed, tcb);
        assert!(parsed.buffered.is_empty());
    }

    #[test]
    fn malformed_sexp_rejected() {
        assert!(Tcb::from_sexp("garbage").is_none());
        assert!(Tcb::from_sexp("((state NOPE)(src 1.2.3.4))").is_none());
        let valid = sample().to_sexp();
        let broken = valid.replace("(isn ", "(xxx ");
        assert!(Tcb::from_sexp(&broken).is_none());
    }

    #[test]
    fn hex_codec() {
        assert_eq!(hex_encode(&[]), "-");
        assert_eq!(hex_encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(hex_decode("00ff10"), Some(vec![0x00, 0xff, 0x10]));
        assert_eq!(hex_decode("-"), Some(vec![]));
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
    }

    #[test]
    fn listener_tcb_and_four_tuple() {
        let t = Tcb::for_listener(
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            Ipv4Addr::new(10, 0, 0, 9),
            4000,
            999,
        );
        assert_eq!(t.state, TcpState::Listen);
        assert_eq!(t.snd_nxt, 999);
        assert_eq!(
            t.four_tuple(),
            (
                Ipv4Addr::new(10, 0, 0, 2),
                80,
                Ipv4Addr::new(10, 0, 0, 9),
                4000
            )
        );
    }
}
