//! TCP: segments, the connection control block, and a small state machine.
//!
//! Synjitsu's connection hand-off (§3.3.1) depends on TCP connection state
//! being a *value* that can be serialised into XenStore by the proxy and
//! rebuilt by the freshly booted unikernel — "the high-level nature of the
//! OCaml TCP/IP stack makes implementation a simple matter of
//! (de)serialising values across XenStore". This module keeps the same
//! property: [`Tcb`] is a plain serialisable struct, [`segment::TcpSegment`]
//! is a value, and the [`conn`] state machines are sans-io, so a connection
//! accepted by one stack instance (the proxy) can be continued by another
//! (the unikernel).

pub mod conn;
pub mod segment;
pub mod tcb;

pub use conn::{Connection, Listener};
pub use segment::{TcpFlags, TcpSegment};
pub use tcb::{Tcb, TcpState};
