//! TCP: segments, the connection control block, and a small state machine.
//!
//! Synjitsu's connection hand-off (§3.3.1) depends on TCP connection state
//! being a *value* that can be serialised into XenStore by the proxy and
//! rebuilt by the freshly booted unikernel — "the high-level nature of the
//! OCaml TCP/IP stack makes implementation a simple matter of
//! (de)serialising values across XenStore". This module keeps the same
//! property: [`Tcb`] is a plain serialisable struct, [`segment::TcpSegment`]
//! is a value, and the [`conn`] state machines are sans-io, so a connection
//! accepted by one stack instance (the proxy) can be continued by another
//! (the unikernel).

pub mod conn;
pub mod segment;
pub mod tcb;

pub use conn::{Connection, Listener};
pub use segment::{TcpFlags, TcpSegment};
pub use tcb::{Tcb, TcpState};

/// `a < b` in 32-bit sequence space (RFC 1982 / RFC 793 serial arithmetic).
///
/// Sequence numbers live on a circle: `a` is "before" `b` when the signed
/// distance from `a` to `b` is positive, which stays correct when the
/// counters wrap past `2^32`. Plain `<` on `u32` misclassifies exactly at
/// the wrap — a connection whose ISN sits near `u32::MAX` would treat every
/// post-wrap segment as ancient.
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` in sequence space.
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` in sequence space.
pub fn seq_ge(a: u32, b: u32) -> bool {
    seq_le(b, a)
}

#[cfg(test)]
mod seq_tests {
    use super::*;

    #[test]
    fn ordering_within_a_window_ignores_the_wrap() {
        // 100 < 200 the obvious way…
        assert!(seq_lt(100, 200));
        assert!(seq_gt(200, 100));
        // …and across the 2^32 boundary.
        assert!(seq_lt(u32::MAX - 5, 3));
        assert!(seq_gt(3, u32::MAX - 5));
        assert!(seq_ge(3, u32::MAX - 5));
        assert!(seq_le(u32::MAX, 0));
    }

    #[test]
    fn equality_is_neither_lt_nor_gt() {
        for x in [0u32, 1, u32::MAX, 0x8000_0000] {
            assert!(!seq_lt(x, x));
            assert!(!seq_gt(x, x));
            assert!(seq_le(x, x));
            assert!(seq_ge(x, x));
        }
    }

    #[test]
    fn antisymmetric_for_distances_below_half_the_space() {
        for (a, d) in [
            (0u32, 1u32),
            (u32::MAX, 1),
            (u32::MAX - 1000, 5000),
            (0x7fff_0000, 0x0001_0000),
        ] {
            let b = a.wrapping_add(d);
            assert!(seq_lt(a, b), "{a} < {a}+{d}");
            assert!(!seq_lt(b, a));
        }
    }
}
