//! Sans-io TCP state machines: a passive listener and a connection.
//!
//! The state machines consume parsed [`TcpSegment`]s and return the segments
//! to transmit in response, never touching any I/O themselves. A connection
//! can be constructed either by a [`Listener`] completing a handshake
//! locally, or — the Synjitsu case — *adopted* from a serialised [`Tcb`]
//! that a proxy built while the real server was still booting.

use super::segment::{TcpFlags, TcpSegment};
use super::tcb::{Tcb, TcpState};
use super::{seq_gt, seq_le};
use crate::buf::FrameBuf;
use crate::ipv4::Ipv4Addr;

/// A passive listener bound to `(ip, port)`.
#[derive(Debug, Clone)]
pub struct Listener {
    /// The address the listener answers for.
    pub local_ip: Ipv4Addr,
    /// The listening port.
    pub local_port: u16,
    isn_counter: u32,
}

impl Listener {
    /// Create a listener. `isn_seed` seeds initial sequence number
    /// generation (deterministic for reproducibility).
    pub fn new(local_ip: Ipv4Addr, local_port: u16, isn_seed: u32) -> Listener {
        Listener {
            local_ip,
            local_port,
            isn_counter: isn_seed,
        }
    }

    /// Generate the next initial sequence number.
    fn next_isn(&mut self) -> u32 {
        // A simple deterministic ISN schedule (the classic 64k increment).
        self.isn_counter = self.isn_counter.wrapping_add(64_000).wrapping_add(1);
        self.isn_counter
    }

    /// Handle an incoming SYN addressed to this listener. Returns the new
    /// half-open connection and the SYN-ACK to transmit. Non-SYN segments
    /// return `None` (the caller may send an RST).
    pub fn on_syn(
        &mut self,
        remote_ip: Ipv4Addr,
        syn: &TcpSegment,
    ) -> Option<(Connection, TcpSegment)> {
        if !syn.flags.syn || syn.flags.ack || syn.dst_port != self.local_port {
            return None;
        }
        let isn = self.next_isn();
        let mut tcb =
            Tcb::for_listener(self.local_ip, self.local_port, remote_ip, syn.src_port, isn);
        tcb.state = TcpState::SynReceived;
        tcb.rcv_nxt = syn.seq.wrapping_add(1);
        tcb.snd_nxt = isn.wrapping_add(1);
        let syn_ack = TcpSegment::control(
            self.local_port,
            syn.src_port,
            isn,
            tcb.rcv_nxt,
            TcpFlags::SYN_ACK,
        );
        Some((
            Connection {
                tcb,
                staged: Vec::new(),
            },
            syn_ack,
        ))
    }
}

/// An established (or establishing) TCP connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// The connection control block.
    pub tcb: Tcb,
    /// In-order received payload views, staged until the application takes
    /// them. Each entry shares the allocation of the frame it arrived in, so
    /// delivery stays zero-copy; [`Connection::take_received`] concatenates
    /// them (an O(1) view in the common single-segment case).
    staged: Vec<FrameBuf>,
}

impl Connection {
    /// Adopt a connection from a serialised TCB — the unikernel side of the
    /// Synjitsu handoff. Any bytes the proxy buffered move into the staged
    /// delivery queue without copying.
    pub fn from_tcb(mut tcb: Tcb) -> Connection {
        let staged = if tcb.buffered.is_empty() {
            Vec::new()
        } else {
            vec![FrameBuf::from_vec(std::mem::take(&mut tcb.buffered))]
        };
        Connection { tcb, staged }
    }

    /// A serialisable snapshot of the control block with the staged (not
    /// yet consumed) bytes flattened back into `buffered`, ready for
    /// [`Tcb::to_sexp`] and the XenStore handoff.
    pub fn tcb_snapshot(&self) -> Tcb {
        let mut tcb = self.tcb.clone();
        if !self.staged.is_empty() {
            let staged = FrameBuf::concat(&self.staged);
            let mut buffered = Vec::with_capacity(tcb.buffered.len() + staged.len());
            buffered.extend_from_slice(&tcb.buffered);
            buffered.extend_from_slice(&staged);
            tcb.buffered = buffered;
        }
        tcb
    }

    /// Start an active open towards `(remote_ip, remote_port)`. Returns the
    /// connection (in `SynSent`) and the SYN to transmit.
    pub fn connect(
        local_ip: Ipv4Addr,
        local_port: u16,
        remote_ip: Ipv4Addr,
        remote_port: u16,
        isn: u32,
    ) -> (Connection, TcpSegment) {
        let mut tcb = Tcb::for_listener(local_ip, local_port, remote_ip, remote_port, isn);
        tcb.state = TcpState::SynSent;
        tcb.snd_nxt = isn.wrapping_add(1);
        let syn = TcpSegment::control(local_port, remote_port, isn, 0, TcpFlags::SYN);
        (
            Connection {
                tcb,
                staged: Vec::new(),
            },
            syn,
        )
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.tcb.state
    }

    /// True once the three-way handshake has completed.
    pub fn is_established(&self) -> bool {
        self.tcb.state == TcpState::Established
    }

    /// Application data received in order and not yet consumed, as a shared
    /// buffer. When a single segment is pending this is an O(1) view of the
    /// frame it arrived in — no bytes are copied on the way up.
    pub fn take_received(&mut self) -> FrameBuf {
        if !self.tcb.buffered.is_empty() {
            // Bytes placed directly in the control block (e.g. by a caller
            // mutating an adopted TCB) drain ahead of the staged views.
            self.staged.insert(
                0,
                FrameBuf::from_vec(std::mem::take(&mut self.tcb.buffered)),
            );
        }
        FrameBuf::concat(&std::mem::take(&mut self.staged))
    }

    /// Process an incoming segment, returning any segments to transmit in
    /// response. Out-of-order segments are dropped (the peer will
    /// retransmit); this matches the minimal in-order stack the unikernels
    /// use for request/response workloads.
    pub fn on_segment(&mut self, seg: &TcpSegment) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if seg.flags.rst {
            self.tcb.state = TcpState::Closed;
            return out;
        }
        match self.tcb.state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == self.tcb.snd_nxt {
                    self.tcb.rcv_nxt = seg.seq.wrapping_add(1);
                    self.tcb.snd_una = seg.ack;
                    self.tcb.state = TcpState::Established;
                    out.push(self.make_ack());
                }
            }
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack == self.tcb.snd_nxt {
                    self.tcb.snd_una = seg.ack;
                    self.tcb.state = TcpState::Established;
                    // The ACK may carry data (common for HTTP clients).
                    if !seg.payload.is_empty() {
                        out.extend(self.accept_data(seg));
                    }
                }
            }
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2 => {
                if seg.flags.ack {
                    // Only a *new* cumulative ACK (inside the window of
                    // outstanding data, in wrapping sequence space) advances
                    // snd_una; a stale duplicate ACK must not regress it.
                    if seq_gt(seg.ack, self.tcb.snd_una) && seq_le(seg.ack, self.tcb.snd_nxt) {
                        self.tcb.snd_una = seg.ack;
                    }
                    if self.tcb.state == TcpState::FinWait1 && seg.ack == self.tcb.snd_nxt {
                        self.tcb.state = TcpState::FinWait2;
                    }
                }
                if !seg.payload.is_empty() {
                    out.extend(self.accept_data(seg));
                }
                // A FIN occupies the sequence slot *after* any payload in
                // the same segment.
                // jitsu-lint: allow(N001, "segment payloads are bounded by the u16 wire length field, well within u32")
                let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
                if seg.flags.fin && fin_seq == self.tcb.rcv_nxt {
                    self.tcb.rcv_nxt = self.tcb.rcv_nxt.wrapping_add(1);
                    match self.tcb.state {
                        TcpState::FinWait1 | TcpState::FinWait2 => {
                            self.tcb.state = TcpState::Closed
                        }
                        _ => self.tcb.state = TcpState::CloseWait,
                    }
                    out.push(self.make_ack());
                }
            }
            TcpState::CloseWait | TcpState::LastAck => {
                if seg.flags.ack
                    && seg.ack == self.tcb.snd_nxt
                    && self.tcb.state == TcpState::LastAck
                {
                    self.tcb.state = TcpState::Closed;
                }
            }
            TcpState::Listen | TcpState::Closed => {}
        }
        out
    }

    fn accept_data(&mut self, seg: &TcpSegment) -> Vec<TcpSegment> {
        // jitsu-lint: allow(N001, "segment payloads are bounded by the u16 wire length field, well within u32")
        let end = seg.seq.wrapping_add(seg.payload.len() as u32);
        if seq_le(end, self.tcb.rcv_nxt) {
            // Entirely old data (a retransmission): re-ACK, never re-buffer.
            return vec![self.make_ack()];
        }
        if seq_gt(seg.seq, self.tcb.rcv_nxt) {
            // A gap before this segment: drop it and re-ACK what we have
            // (the peer retransmits; this stack keeps no reassembly queue).
            return vec![self.make_ack()];
        }
        // seq <= rcv_nxt < end (wrapping): accept only the unseen suffix, so
        // a retransmission that partially overlaps delivered data cannot
        // duplicate bytes into the stream.
        let skip = self.tcb.rcv_nxt.wrapping_sub(seg.seq) as usize;
        self.staged.push(seg.payload.slice(skip..));
        self.tcb.rcv_nxt = end;
        vec![self.make_ack()]
    }

    fn make_ack(&self) -> TcpSegment {
        TcpSegment::control(
            self.tcb.local_port,
            self.tcb.remote_port,
            self.tcb.snd_nxt,
            self.tcb.rcv_nxt,
            TcpFlags::ACK,
        )
    }

    /// Send application data, returning the data segment to transmit. A
    /// [`FrameBuf`] argument is forwarded as an O(1) view; `Vec<u8>` and
    /// `&[u8]` arguments are converted on entry.
    pub fn send(&mut self, data: impl Into<FrameBuf>) -> TcpSegment {
        let payload = data.into();
        // jitsu-lint: allow(N001, "send chunks are MSS-sized, bounded by the u16 wire length field")
        let len = payload.len() as u32;
        let seg = TcpSegment {
            src_port: self.tcb.local_port,
            dst_port: self.tcb.remote_port,
            seq: self.tcb.snd_nxt,
            ack: self.tcb.rcv_nxt,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload,
        };
        self.tcb.snd_nxt = self.tcb.snd_nxt.wrapping_add(len);
        seg
    }

    /// Close our side, returning the FIN segment to transmit.
    pub fn close(&mut self) -> TcpSegment {
        let fin = TcpSegment::control(
            self.tcb.local_port,
            self.tcb.remote_port,
            self.tcb.snd_nxt,
            self.tcb.rcv_nxt,
            TcpFlags::FIN_ACK,
        );
        self.tcb.snd_nxt = self.tcb.snd_nxt.wrapping_add(1);
        self.tcb.state = match self.tcb.state {
            TcpState::CloseWait => TcpState::LastAck,
            _ => TcpState::FinWait1,
        };
        fin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 20);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);

    /// Drive a full handshake between a client connection and a listener,
    /// returning both connections.
    fn handshake() -> (Connection, Connection) {
        let mut listener = Listener::new(SERVER_IP, 80, 7);
        let (mut client, syn) = Connection::connect(CLIENT_IP, 51000, SERVER_IP, 80, 1000);
        assert_eq!(client.state(), TcpState::SynSent);
        let (mut server, syn_ack) = listener.on_syn(CLIENT_IP, &syn).unwrap();
        assert_eq!(server.state(), TcpState::SynReceived);
        let acks = client.on_segment(&syn_ack);
        assert!(client.is_established());
        assert_eq!(acks.len(), 1);
        let more = server.on_segment(&acks[0]);
        assert!(server.is_established());
        assert!(more.is_empty());
        (client, server)
    }

    #[test]
    fn three_way_handshake_establishes_both_ends() {
        let (client, server) = handshake();
        assert_eq!(client.tcb.rcv_nxt, server.tcb.snd_nxt);
        assert_eq!(server.tcb.rcv_nxt, client.tcb.snd_nxt);
    }

    #[test]
    fn data_transfer_and_ack() {
        let (mut client, mut server) = handshake();
        let request = client.send(b"GET / HTTP/1.1\r\n\r\n");
        let responses = server.on_segment(&request);
        assert_eq!(responses.len(), 1, "data is ACKed");
        assert!(responses[0].flags.ack);
        assert_eq!(server.take_received(), b"GET / HTTP/1.1\r\n\r\n");
        // Server replies.
        client.on_segment(&responses[0]);
        let reply = server.send(b"HTTP/1.1 200 OK\r\n\r\nhello");
        let acks = client.on_segment(&reply);
        assert_eq!(client.take_received(), b"HTTP/1.1 200 OK\r\n\r\nhello");
        server.on_segment(&acks[0]);
        assert_eq!(
            server.tcb.snd_una, server.tcb.snd_nxt,
            "all data acknowledged"
        );
    }

    #[test]
    fn duplicate_data_is_reacked_not_rebuffered() {
        let (mut client, mut server) = handshake();
        let request = client.send(b"hello");
        server.on_segment(&request);
        // The same segment arrives again (client retransmission).
        let responses = server.on_segment(&request);
        assert_eq!(responses.len(), 1);
        assert_eq!(server.take_received(), b"hello", "no duplication");
    }

    #[test]
    fn single_segment_delivery_shares_the_segment_allocation() {
        let (mut client, mut server) = handshake();
        let request = client.send(b"GET / HTTP/1.1\r\n\r\n");
        server.on_segment(&request);
        let received = server.take_received();
        assert!(
            received.shares_allocation(&request.payload),
            "in-order single-segment delivery is a view, not a copy"
        );
    }

    #[test]
    fn listener_ignores_non_syn() {
        let mut listener = Listener::new(SERVER_IP, 80, 7);
        let ack = TcpSegment::control(51000, 80, 5, 5, TcpFlags::ACK);
        assert!(listener.on_syn(CLIENT_IP, &ack).is_none());
        let wrong_port = TcpSegment::control(51000, 8080, 5, 0, TcpFlags::SYN);
        assert!(listener.on_syn(CLIENT_IP, &wrong_port).is_none());
    }

    #[test]
    fn syn_received_accepts_ack_with_data() {
        // HTTP clients often send the request in the same packet as the
        // handshake-completing ACK; Synjitsu's replay depends on this.
        let mut listener = Listener::new(SERVER_IP, 80, 7);
        let (mut client, syn) = Connection::connect(CLIENT_IP, 51000, SERVER_IP, 80, 500);
        let (mut server, syn_ack) = listener.on_syn(CLIENT_IP, &syn).unwrap();
        client.on_segment(&syn_ack);
        let req = client.send(b"GET /photos HTTP/1.1\r\n\r\n");
        let out = server.on_segment(&req);
        assert!(server.is_established());
        assert_eq!(server.take_received(), b"GET /photos HTTP/1.1\r\n\r\n");
        assert!(!out.is_empty());
    }

    #[test]
    fn close_sequence() {
        let (mut client, mut server) = handshake();
        let fin = client.close();
        assert_eq!(client.state(), TcpState::FinWait1);
        let acks = server.on_segment(&fin);
        assert_eq!(server.state(), TcpState::CloseWait);
        client.on_segment(&acks[0]);
        assert_eq!(client.state(), TcpState::FinWait2);
        let server_fin = server.close();
        assert_eq!(server.state(), TcpState::LastAck);
        let acks = client.on_segment(&server_fin);
        assert_eq!(client.state(), TcpState::Closed);
        server.on_segment(&acks[0]);
        assert_eq!(server.state(), TcpState::Closed);
    }

    #[test]
    fn rst_closes_immediately() {
        let (mut client, _server) = handshake();
        let rst = TcpSegment::control(80, 51000, 0, 0, TcpFlags::RST);
        let out = client.on_segment(&rst);
        assert!(out.is_empty());
        assert_eq!(client.state(), TcpState::Closed);
    }

    #[test]
    fn adopted_tcb_continues_the_connection() {
        // Simulate the Synjitsu handoff: the proxy establishes a connection
        // and buffers the request; the unikernel adopts the TCB and replies.
        let (mut client, mut proxy_side) = handshake();
        let request = client.send(b"GET / HTTP/1.1\r\n\r\n");
        proxy_side.on_segment(&request);

        // Serialise through the XenStore format and adopt. The snapshot
        // flattens the staged delivery views back into `buffered`.
        let sexp = proxy_side.tcb_snapshot().to_sexp();
        let adopted_tcb = Tcb::from_sexp(&sexp).unwrap();
        let mut unikernel_side = Connection::from_tcb(adopted_tcb);
        assert!(unikernel_side.is_established());
        assert_eq!(unikernel_side.take_received(), b"GET / HTTP/1.1\r\n\r\n");

        // The unikernel answers and the client accepts the bytes seamlessly.
        let reply = unikernel_side.send(b"HTTP/1.1 200 OK\r\n\r\nindex");
        client.on_segment(&reply);
        assert_eq!(client.take_received(), b"HTTP/1.1 200 OK\r\n\r\nindex");
    }

    /// Handshake with both ISNs pinned near `u32::MAX`, so a short data
    /// exchange crosses the 2^32 boundary on both directions.
    fn wrapping_handshake(client_isn: u32, server_seed: u32) -> (Connection, Connection) {
        let mut listener = Listener::new(SERVER_IP, 80, server_seed);
        let (mut client, syn) = Connection::connect(CLIENT_IP, 51000, SERVER_IP, 80, client_isn);
        let (mut server, syn_ack) = listener.on_syn(CLIENT_IP, &syn).unwrap();
        let acks = client.on_segment(&syn_ack);
        server.on_segment(&acks[0]);
        assert!(client.is_established() && server.is_established());
        (client, server)
    }

    #[test]
    fn data_transfer_survives_sequence_wraparound() {
        // The client ISN is 4 bytes below the wrap: the second chunk's
        // sequence numbers land on the far side of 2^32.
        let (mut client, mut server) = wrapping_handshake(u32::MAX - 4, u32::MAX - 70_000);
        let first = client.send(b"GET / HT");
        server.on_segment(&first);
        assert!(client.tcb.snd_nxt < client.tcb.isn, "snd_nxt wrapped");
        let second = client.send(b"TP/1.1\r\n\r\n");
        let acks = server.on_segment(&second);
        assert_eq!(server.take_received(), b"GET / HTTP/1.1\r\n\r\n");
        // The cumulative ACK is post-wrap and the client accepts it.
        client.on_segment(&acks[0]);
        assert_eq!(client.tcb.snd_una, client.tcb.snd_nxt);
    }

    #[test]
    fn duplicate_across_the_wrap_is_reacked_not_rebuffered() {
        let (mut client, mut server) = wrapping_handshake(u32::MAX - 2, 7);
        let seg = client.send(b"hello world");
        server.on_segment(&seg);
        // Retransmission of the same (pre-wrap seq) segment: with plain
        // `u32` comparisons `seq < rcv_nxt` fails here and the old bytes
        // would be buffered twice.
        let responses = server.on_segment(&seg);
        assert_eq!(responses.len(), 1, "duplicate still gets a fresh ACK");
        assert_eq!(server.take_received(), b"hello world", "no duplication");
    }

    #[test]
    fn partially_overlapping_retransmission_delivers_only_new_bytes() {
        let (mut client, mut server) = handshake();
        let first = client.send(b"abcde");
        server.on_segment(&first);
        // A retransmission that re-covers "cde" and extends with "fgh":
        // only the unseen suffix may enter the stream.
        let overlap = TcpSegment {
            payload: FrameBuf::copy_from_slice(b"cdefgh"),
            ..TcpSegment::control(
                first.src_port,
                first.dst_port,
                first.seq.wrapping_add(2),
                first.ack,
                TcpFlags::PSH_ACK,
            )
        };
        server.on_segment(&overlap);
        assert_eq!(server.take_received(), b"abcdefgh");
        assert_eq!(server.tcb.rcv_nxt, first.seq.wrapping_add(8));
    }

    #[test]
    fn stale_duplicate_ack_does_not_regress_snd_una() {
        let (mut client, mut server) = handshake();
        let old_ack = TcpSegment::control(
            server.tcb.local_port,
            server.tcb.remote_port,
            server.tcb.snd_nxt,
            server.tcb.rcv_nxt,
            TcpFlags::ACK,
        );
        let seg = client.send(b"data");
        let acks = server.on_segment(&seg);
        client.on_segment(&acks[0]);
        let una_after = client.tcb.snd_una;
        // A stale ACK (acknowledging less) arrives late: snd_una must hold.
        client.on_segment(&old_ack);
        assert_eq!(client.tcb.snd_una, una_after);
    }

    #[test]
    fn fin_piggybacked_on_data_is_processed_after_the_payload() {
        let (mut client, mut server) = handshake();
        let mut fin_with_data = client.send(b"last bytes");
        fin_with_data.flags.fin = true;
        client.tcb.snd_nxt = client.tcb.snd_nxt.wrapping_add(1);
        client.tcb.state = TcpState::FinWait1;
        let acks = server.on_segment(&fin_with_data);
        assert_eq!(server.take_received(), b"last bytes");
        assert_eq!(server.state(), TcpState::CloseWait, "FIN seen after data");
        assert!(!acks.is_empty());
    }

    #[test]
    fn listener_isns_differ_between_connections() {
        let mut listener = Listener::new(SERVER_IP, 80, 7);
        let syn1 = TcpSegment::control(51000, 80, 10, 0, TcpFlags::SYN);
        let syn2 = TcpSegment::control(51001, 80, 20, 0, TcpFlags::SYN);
        let (c1, sa1) = listener.on_syn(CLIENT_IP, &syn1).unwrap();
        let (c2, sa2) = listener.on_syn(CLIENT_IP, &syn2).unwrap();
        assert_ne!(sa1.seq, sa2.seq);
        assert_ne!(c1.tcb.isn, c2.tcb.isn);
    }
}
