//! A sans-io network interface: one MAC + IPv4 address, ARP, ICMP echo,
//! UDP delivery and TCP listeners/connections.
//!
//! This is the object a unikernel (or Synjitsu, or the simulated external
//! client) instantiates on top of its link. Frames go in via
//! [`Interface::handle_frame`]; the return value carries both the frames to
//! transmit in response (ARP replies, ICMP echo replies, TCP ACKs, …) and
//! higher-level events (datagrams and TCP data) for the application to act
//! on. Nothing here performs I/O, so the same interface code runs over the
//! simulated dom0 bridge, over a conduit, or in unit tests.

use crate::arp::{ArpCache, ArpOp, ArpPacket};
use crate::buf::FrameBuf;
use crate::ethernet::{EtherType, EthernetFrame, MacAddr};
use crate::icmp::IcmpEcho;
use crate::ipv4::{Ipv4Addr, Ipv4Packet, Protocol};
use crate::tcp::{Connection, Listener, TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use std::collections::BTreeMap;

/// Events surfaced to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfaceEvent {
    /// A TCP connection completed its handshake.
    TcpConnected {
        /// Remote endpoint.
        remote: (Ipv4Addr, u16),
        /// Local port.
        local_port: u16,
    },
    /// In-order TCP data arrived on a connection.
    TcpData {
        /// Remote endpoint.
        remote: (Ipv4Addr, u16),
        /// Local port.
        local_port: u16,
        /// The received bytes: a view of the frame's shared buffer when a
        /// single segment is pending (the common case).
        data: FrameBuf,
    },
    /// The remote side closed a connection.
    TcpClosed {
        /// Remote endpoint.
        remote: (Ipv4Addr, u16),
        /// Local port.
        local_port: u16,
    },
    /// A UDP datagram arrived.
    Udp {
        /// Source endpoint.
        src: (Ipv4Addr, u16),
        /// Destination port.
        dst_port: u16,
        /// Payload: a view into the received frame's shared buffer.
        payload: FrameBuf,
    },
    /// An ICMP echo reply arrived (the client side of Figure 8's ping).
    IcmpEchoReply {
        /// Source address of the reply.
        src: Ipv4Addr,
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Payload length.
        payload_len: usize,
    },
}

/// Key identifying a connection: (remote ip, remote port, local port).
type ConnKey = (Ipv4Addr, u16, u16);

/// A sans-io interface.
#[derive(Debug)]
pub struct Interface {
    /// Our MAC address.
    pub mac: MacAddr,
    /// Our IPv4 address.
    pub ip: Ipv4Addr,
    arp_cache: ArpCache,
    listeners: Vec<Listener>,
    connections: BTreeMap<ConnKey, Connection>,
    next_ephemeral: u16,
    isn_seed: u32,
}

impl Interface {
    /// Create an interface with the given addresses.
    pub fn new(mac: MacAddr, ip: Ipv4Addr) -> Interface {
        Interface {
            mac,
            ip,
            arp_cache: ArpCache::new(),
            listeners: Vec::new(),
            connections: BTreeMap::new(),
            next_ephemeral: 49152,
            isn_seed: u32::from_be_bytes(ip.0).wrapping_mul(2654435761),
        }
    }

    /// Override the base of the ephemeral port range used by
    /// [`Interface::tcp_connect`] (useful when a fresh interface must not
    /// collide with connections an earlier interface at the same address
    /// established — e.g. repeated simulated clients).
    pub fn set_ephemeral_base(&mut self, port: u16) {
        self.next_ephemeral = port.max(1024);
    }

    /// Start listening for TCP connections on a port.
    pub fn listen_tcp(&mut self, port: u16) {
        if !self.listeners.iter().any(|l| l.local_port == port) {
            self.listeners.push(Listener::new(
                self.ip,
                port,
                self.isn_seed.wrapping_add(port as u32),
            ));
        }
    }

    /// Number of live TCP connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Access a connection's state (for tests and Synjitsu's handoff).
    pub fn connection(&self, remote: (Ipv4Addr, u16), local_port: u16) -> Option<&Connection> {
        self.connections.get(&(remote.0, remote.1, local_port))
    }

    /// The keys of all live connections as `(remote ip, remote port,
    /// local port)` — used by Synjitsu to mirror every proxied connection
    /// into XenStore.
    pub fn connection_keys(&self) -> Vec<(Ipv4Addr, u16, u16)> {
        self.connections.keys().copied().collect()
    }

    /// Remove and return a connection (Synjitsu extracts connections here to
    /// serialise them for handoff).
    pub fn extract_connection(
        &mut self,
        remote: (Ipv4Addr, u16),
        local_port: u16,
    ) -> Option<Connection> {
        self.connections.remove(&(remote.0, remote.1, local_port))
    }

    /// Adopt a connection built elsewhere (the unikernel side of the
    /// Synjitsu handoff). Also primes the ARP cache so replies can be sent
    /// without another resolution round trip.
    pub fn adopt_connection(&mut self, conn: Connection, remote_mac: MacAddr) {
        let key = (
            conn.tcb.remote_ip,
            conn.tcb.remote_port,
            conn.tcb.local_port,
        );
        self.arp_cache.insert(conn.tcb.remote_ip, remote_mac);
        self.connections.insert(key, conn);
    }

    /// Record an IP → MAC mapping (e.g. learned out of band).
    pub fn add_arp_entry(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp_cache.insert(ip, mac);
    }

    fn lookup_mac(&self, ip: Ipv4Addr) -> MacAddr {
        self.arp_cache.lookup(ip).unwrap_or(MacAddr::BROADCAST)
    }

    fn wrap_ip(&self, dst_ip: Ipv4Addr, protocol: Protocol, payload: FrameBuf) -> FrameBuf {
        let packet = Ipv4Packet::new(self.ip, dst_ip, protocol, payload);
        EthernetFrame::new(
            self.lookup_mac(dst_ip),
            self.mac,
            EtherType::Ipv4,
            packet.emit(),
        )
        .emit()
    }

    /// Build an ARP who-has request frame for `ip`.
    pub fn arp_request(&self, ip: Ipv4Addr) -> FrameBuf {
        let arp = ArpPacket::request(self.mac, self.ip, ip);
        EthernetFrame::new(MacAddr::BROADCAST, self.mac, EtherType::Arp, arp.emit()).emit()
    }

    /// Build an ICMP echo request frame (the Figure 8 client).
    pub fn icmp_echo_request(
        &self,
        dst: Ipv4Addr,
        ident: u16,
        seq: u16,
        payload_len: usize,
    ) -> FrameBuf {
        let echo = IcmpEcho::request(ident, seq, vec![0x42; payload_len]);
        self.wrap_ip(dst, Protocol::Icmp, echo.emit())
    }

    /// Build a UDP datagram frame.
    pub fn udp_send(
        &self,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: impl Into<FrameBuf>,
    ) -> FrameBuf {
        let datagram = UdpDatagram::new(src_port, dst_port, payload);
        self.wrap_ip(dst, Protocol::Udp, datagram.emit(self.ip, dst))
    }

    /// Open a TCP connection; returns the SYN frame to transmit.
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dst_port: u16) -> FrameBuf {
        let local_port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(49152);
        let isn = self
            .isn_seed
            .wrapping_add(local_port as u32)
            .wrapping_mul(69069);
        let (conn, syn) = Connection::connect(self.ip, local_port, dst, dst_port, isn);
        self.connections.insert((dst, dst_port, local_port), conn);
        self.wrap_ip(dst, Protocol::Tcp, syn.emit(self.ip, dst))
    }

    /// Send data on an established connection; returns the frame. A
    /// [`FrameBuf`] argument rides through as an O(1) view.
    pub fn tcp_send(
        &mut self,
        remote: (Ipv4Addr, u16),
        local_port: u16,
        data: impl Into<FrameBuf>,
    ) -> Option<FrameBuf> {
        let conn = self
            .connections
            .get_mut(&(remote.0, remote.1, local_port))?;
        let seg = conn.send(data);
        let bytes = seg.emit(self.ip, remote.0);
        Some(self.wrap_ip(remote.0, Protocol::Tcp, bytes))
    }

    /// Close a connection; returns the FIN frame.
    pub fn tcp_close(&mut self, remote: (Ipv4Addr, u16), local_port: u16) -> Option<FrameBuf> {
        let conn = self
            .connections
            .get_mut(&(remote.0, remote.1, local_port))?;
        let fin = conn.close();
        let bytes = fin.emit(self.ip, remote.0);
        Some(self.wrap_ip(remote.0, Protocol::Tcp, bytes))
    }

    /// Process one received Ethernet frame. Returns `(frames_to_send, events)`.
    ///
    /// The frame is a shared buffer; every payload handed out in the events
    /// (TCP data, UDP datagrams) is a view into it, so the one copy made at
    /// ring ingress is the last copy a packet sees.
    pub fn handle_frame(&mut self, frame_bytes: &FrameBuf) -> (Vec<FrameBuf>, Vec<IfaceEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        let Ok(frame) = EthernetFrame::parse(frame_bytes) else {
            return (out, events);
        };
        if frame.dst != self.mac && !frame.dst.is_broadcast() && !frame.dst.is_multicast() {
            return (out, events);
        }
        match frame.ethertype {
            EtherType::Arp => {
                if let Ok(arp) = ArpPacket::parse(&frame.payload) {
                    self.arp_cache.insert(arp.sender_ip, arp.sender_mac);
                    if arp.op == ArpOp::Request && arp.target_ip == self.ip {
                        let reply = ArpPacket::reply_to(&arp, self.mac);
                        out.push(
                            EthernetFrame::new(
                                arp.sender_mac,
                                self.mac,
                                EtherType::Arp,
                                reply.emit(),
                            )
                            .emit(),
                        );
                    }
                }
            }
            EtherType::Ipv4 => {
                if let Ok(packet) = Ipv4Packet::parse(&frame.payload) {
                    if packet.dst != self.ip && packet.dst != Ipv4Addr::BROADCAST {
                        return (out, events);
                    }
                    self.arp_cache.insert(packet.src, frame.src);
                    match packet.protocol {
                        Protocol::Icmp => self.handle_icmp(&packet, &mut out, &mut events),
                        Protocol::Udp => self.handle_udp(&packet, &mut events),
                        Protocol::Tcp => self.handle_tcp(&packet, &mut out, &mut events),
                        Protocol::Other(_) => {}
                    }
                }
            }
            EtherType::Other(_) => {}
        }
        (out, events)
    }

    fn handle_icmp(
        &mut self,
        packet: &Ipv4Packet,
        out: &mut Vec<FrameBuf>,
        events: &mut Vec<IfaceEvent>,
    ) {
        if let Ok(echo) = IcmpEcho::parse(&packet.payload) {
            if echo.is_request {
                let reply = echo.reply();
                out.push(self.wrap_ip(packet.src, Protocol::Icmp, reply.emit()));
            } else {
                events.push(IfaceEvent::IcmpEchoReply {
                    src: packet.src,
                    ident: echo.ident,
                    seq: echo.seq,
                    payload_len: echo.payload.len(),
                });
            }
        }
    }

    fn handle_udp(&mut self, packet: &Ipv4Packet, events: &mut Vec<IfaceEvent>) {
        if let Ok(datagram) = UdpDatagram::parse(&packet.payload, packet.src, packet.dst) {
            events.push(IfaceEvent::Udp {
                src: (packet.src, datagram.src_port),
                dst_port: datagram.dst_port,
                payload: datagram.payload,
            });
        }
    }

    fn handle_tcp(
        &mut self,
        packet: &Ipv4Packet,
        out: &mut Vec<FrameBuf>,
        events: &mut Vec<IfaceEvent>,
    ) {
        let Ok(seg) = TcpSegment::parse(&packet.payload, packet.src, packet.dst) else {
            return;
        };
        let key = (packet.src, seg.src_port, seg.dst_port);
        if let Some(conn) = self.connections.get_mut(&key) {
            let was_established = conn.is_established();
            let responses = conn.on_segment(&seg);
            let newly_established = !was_established && conn.is_established();
            let data = conn.take_received();
            let closed = seg.flags.fin
                && matches!(
                    conn.state(),
                    crate::tcp::TcpState::Closed | crate::tcp::TcpState::CloseWait
                );
            for r in responses {
                let bytes = r.emit(self.ip, packet.src);
                out.push(self.wrap_ip(packet.src, Protocol::Tcp, bytes));
            }
            if newly_established {
                events.push(IfaceEvent::TcpConnected {
                    remote: (packet.src, seg.src_port),
                    local_port: seg.dst_port,
                });
            }
            if !data.is_empty() {
                events.push(IfaceEvent::TcpData {
                    remote: (packet.src, seg.src_port),
                    local_port: seg.dst_port,
                    data,
                });
            }
            if closed {
                events.push(IfaceEvent::TcpClosed {
                    remote: (packet.src, seg.src_port),
                    local_port: seg.dst_port,
                });
            }
            return;
        }
        // No existing connection: maybe a listener wants the SYN.
        if seg.flags.syn && !seg.flags.ack {
            if let Some(listener) = self
                .listeners
                .iter_mut()
                .find(|l| l.local_port == seg.dst_port)
            {
                if let Some((conn, syn_ack)) = listener.on_syn(packet.src, &seg) {
                    let bytes = syn_ack.emit(self.ip, packet.src);
                    out.push(self.wrap_ip(packet.src, Protocol::Tcp, bytes));
                    self.connections.insert(key, conn);
                    return;
                }
            }
        }
        // Otherwise: refuse with RST (unless the segment was itself an RST).
        if !seg.flags.rst {
            let rst = TcpSegment::control(
                seg.dst_port,
                seg.src_port,
                seg.ack,
                seg.seq.wrapping_add(seg.seq_len()),
                TcpFlags::RST,
            );
            let bytes = rst.emit(self.ip, packet.src);
            out.push(self.wrap_ip(packet.src, Protocol::Tcp, bytes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const SERVER_MAC: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 20);

    fn pair() -> (Interface, Interface) {
        let mut client = Interface::new(CLIENT_MAC, CLIENT_IP);
        let mut server = Interface::new(SERVER_MAC, SERVER_IP);
        client.add_arp_entry(SERVER_IP, SERVER_MAC);
        server.add_arp_entry(CLIENT_IP, CLIENT_MAC);
        (client, server)
    }

    /// Deliver frames back and forth until both sides go quiet, collecting
    /// events per side.
    fn pump(
        a: &mut Interface,
        b: &mut Interface,
        mut frames_to_b: Vec<FrameBuf>,
    ) -> (Vec<IfaceEvent>, Vec<IfaceEvent>) {
        let mut events_a = Vec::new();
        let mut events_b = Vec::new();
        let mut frames_to_a: Vec<FrameBuf> = Vec::new();
        for _ in 0..32 {
            if frames_to_b.is_empty() && frames_to_a.is_empty() {
                break;
            }
            let mut next_to_a = Vec::new();
            for f in frames_to_b.drain(..) {
                let (out, ev) = b.handle_frame(&f);
                next_to_a.extend(out);
                events_b.extend(ev);
            }
            let mut next_to_b = Vec::new();
            for f in frames_to_a.drain(..) {
                let (out, ev) = a.handle_frame(&f);
                next_to_b.extend(out);
                events_a.extend(ev);
            }
            frames_to_a = next_to_a;
            frames_to_b = next_to_b;
        }
        (events_a, events_b)
    }

    #[test]
    fn arp_request_gets_replied_and_cached() {
        let mut client = Interface::new(CLIENT_MAC, CLIENT_IP);
        let mut server = Interface::new(SERVER_MAC, SERVER_IP);
        let req = client.arp_request(SERVER_IP);
        let (replies, _) = server.handle_frame(&req);
        assert_eq!(replies.len(), 1);
        let (none, _) = client.handle_frame(&replies[0]);
        assert!(none.is_empty());
        // The client now resolves the server without broadcasting.
        assert_eq!(client.lookup_mac(SERVER_IP), SERVER_MAC);
        // Requests for other addresses are ignored.
        let other = client.arp_request(Ipv4Addr::new(192, 168, 1, 77));
        let (replies, _) = server.handle_frame(&other);
        assert!(replies.is_empty());
    }

    #[test]
    fn icmp_echo_request_reply() {
        let (mut client, mut server) = pair();
        let ping = client.icmp_echo_request(SERVER_IP, 0x77, 3, 56);
        let (events_client, events_server) = pump(&mut client, &mut server, vec![ping]);
        assert!(events_server.is_empty());
        assert_eq!(events_client.len(), 1);
        match &events_client[0] {
            IfaceEvent::IcmpEchoReply {
                src,
                ident,
                seq,
                payload_len,
            } => {
                assert_eq!(*src, SERVER_IP);
                assert_eq!(*ident, 0x77);
                assert_eq!(*seq, 3);
                assert_eq!(*payload_len, 56);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn udp_delivery() {
        let (client, mut server) = pair();
        let frame = client.udp_send(SERVER_IP, 5353, 53, b"query".to_vec());
        let (_, events) = server.handle_frame(&frame);
        match &events[..] {
            [IfaceEvent::Udp {
                src,
                dst_port,
                payload,
            }] => {
                assert_eq!(*src, (CLIENT_IP, 5353));
                assert_eq!(*dst_port, 53);
                assert_eq!(payload, b"query");
                assert!(
                    payload.shares_allocation(&frame),
                    "the delivered datagram payload is a view of the frame"
                );
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn tcp_connect_send_receive() {
        let (mut client, mut server) = pair();
        server.listen_tcp(80);
        let syn = client.tcp_connect(SERVER_IP, 80);
        let (events_client, _events_server) = pump(&mut client, &mut server, vec![syn]);
        assert!(events_client
            .iter()
            .any(|e| matches!(e, IfaceEvent::TcpConnected { .. })));
        assert_eq!(client.connection_count(), 1);
        assert_eq!(server.connection_count(), 1);

        // Send a request from the client and observe it on the server.
        let remote = (SERVER_IP, 80);
        let local_port = client
            .connections
            .keys()
            .next()
            .map(|(_, _, lp)| *lp)
            .unwrap();
        let frame = client
            .tcp_send(remote, local_port, b"GET / HTTP/1.1\r\n\r\n")
            .unwrap();
        let (_, events_server) = pump(&mut client, &mut server, vec![frame.slice(..)]);
        let data_event = events_server
            .iter()
            .find_map(|e| match e {
                IfaceEvent::TcpData { data, remote, .. } => Some((data.clone(), *remote)),
                _ => None,
            })
            .expect("server receives the request");
        assert_eq!(data_event.0, b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(data_event.1 .0, CLIENT_IP);
        assert!(
            data_event.0.shares_allocation(&frame),
            "delivered TCP data is a view of the frame that carried it"
        );
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let (mut client, mut server) = pair();
        let syn = client.tcp_connect(SERVER_IP, 81); // nothing listening
        let (frames, _) = server.handle_frame(&syn);
        assert_eq!(frames.len(), 1);
        let eth = EthernetFrame::parse(&frames[0]).unwrap();
        let ip = Ipv4Packet::parse(&eth.payload).unwrap();
        let seg = TcpSegment::parse(&ip.payload, ip.src, ip.dst).unwrap();
        assert!(seg.flags.rst);
    }

    #[test]
    fn frames_for_other_hosts_are_ignored() {
        let (client, mut server) = pair();
        // Address the frame at some third MAC.
        let mut frame = client.udp_send(SERVER_IP, 1, 2, b"x".to_vec()).to_vec();
        frame[0..6].copy_from_slice(&[2, 0, 0, 0, 0, 9]);
        let (out, events) = server.handle_frame(&frame.into());
        assert!(out.is_empty());
        assert!(events.is_empty());
        // Garbage frames are ignored too.
        let (out, events) = server.handle_frame(&FrameBuf::copy_from_slice(&[1, 2, 3]));
        assert!(out.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    fn adopted_connection_serves_data() {
        // Build an established connection on a "proxy" interface, extract
        // it, and adopt it on a fresh "unikernel" interface.
        let (mut client, mut proxy) = pair();
        proxy.listen_tcp(80);
        let syn = client.tcp_connect(SERVER_IP, 80);
        pump(&mut client, &mut proxy, vec![syn]);
        let local_port = client
            .connections
            .keys()
            .next()
            .map(|(_, _, lp)| *lp)
            .unwrap();
        let req = client
            .tcp_send((SERVER_IP, 80), local_port, b"GET /")
            .unwrap();
        pump(&mut client, &mut proxy, vec![req]);

        let conn = proxy
            .extract_connection((CLIENT_IP, local_port), 80)
            .expect("proxy holds the connection");
        // A fresh unikernel interface with the same IP adopts it.
        let mut unikernel = Interface::new(SERVER_MAC, SERVER_IP);
        unikernel.adopt_connection(conn, CLIENT_MAC);
        assert_eq!(unikernel.connection_count(), 1);
        let resp_frame = unikernel
            .tcp_send((CLIENT_IP, local_port), 80, b"HTTP/1.1 200 OK\r\n\r\n")
            .unwrap();
        let (_, events) = client.handle_frame(&resp_frame);
        assert!(events.iter().any(|e| matches!(
            e,
            IfaceEvent::TcpData { data, .. } if data.starts_with(b"HTTP/1.1 200")
        )));
    }

    #[test]
    fn tcp_close_emits_fin_and_event() {
        let (mut client, mut server) = pair();
        server.listen_tcp(80);
        let syn = client.tcp_connect(SERVER_IP, 80);
        pump(&mut client, &mut server, vec![syn]);
        let local_port = client
            .connections
            .keys()
            .next()
            .map(|(_, _, lp)| *lp)
            .unwrap();
        let fin = client.tcp_close((SERVER_IP, 80), local_port).unwrap();
        let (_, events_server) = pump(&mut client, &mut server, vec![fin]);
        assert!(events_server
            .iter()
            .any(|e| matches!(e, IfaceEvent::TcpClosed { .. })));
    }
}
