//! DNS messages and a tiny authoritative responder.
//!
//! The Jitsu directory service *is* a DNS server: the board is registered as
//! `ns.family.name`, and a query for `alice.family.name` either returns the
//! IP of Alice's already-running unikernel or triggers a launch while the
//! response is sent immediately (§3.3). Resource exhaustion is signalled by
//! `SERVFAIL` so the client can fail over to another board. This module
//! implements enough of RFC 1035 to serve that role: message encode/decode
//! with name compression omitted, A-record answers with a TTL, and the
//! `NXDOMAIN`/`SERVFAIL` response codes.

use crate::ipv4::Ipv4Addr;
use crate::{NetError, Result};

/// DNS response codes used by Jitsu.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// The name does not exist in this zone.
    NxDomain,
    /// The server cannot currently satisfy the query (Jitsu uses this to
    /// signal resource exhaustion so the client goes elsewhere).
    ServFail,
}

impl Rcode {
    fn to_bits(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
        }
    }

    fn from_bits(v: u8) -> Rcode {
        match v {
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            _ => Rcode::NoError,
        }
    }
}

/// A DNS question (only IN/A questions are generated; others are preserved
/// by type code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// The queried name, e.g. `alice.family.name`.
    pub name: String,
    /// Query type (1 = A).
    pub qtype: u16,
}

/// An A-record answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// The answered name.
    pub name: String,
    /// The address.
    pub addr: Ipv4Addr,
    /// Time to live in seconds. Jitsu hands out short TTLs so that idle
    /// services can be retired and re-summoned.
    pub ttl: u32,
}

/// A DNS message (query or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// True for responses.
    pub is_response: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Questions.
    pub questions: Vec<Question>,
    /// A-record answers.
    pub answers: Vec<Answer>,
}

impl DnsMessage {
    /// Build an A query.
    pub fn query(id: u16, name: &str) -> DnsMessage {
        DnsMessage {
            id,
            is_response: false,
            rcode: Rcode::NoError,
            questions: vec![Question {
                name: name.to_string(),
                qtype: 1,
            }],
            answers: Vec::new(),
        }
    }

    /// Build a response answering `query` with a single A record.
    pub fn answer(query: &DnsMessage, addr: Ipv4Addr, ttl: u32) -> DnsMessage {
        DnsMessage {
            id: query.id,
            is_response: true,
            rcode: Rcode::NoError,
            questions: query.questions.clone(),
            answers: query
                .questions
                .first()
                .map(|q| Answer {
                    name: q.name.clone(),
                    addr,
                    ttl,
                })
                .into_iter()
                .collect(),
        }
    }

    /// Build an error response (`NXDOMAIN` or `SERVFAIL`).
    pub fn error(query: &DnsMessage, rcode: Rcode) -> DnsMessage {
        DnsMessage {
            id: query.id,
            is_response: true,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
        }
    }

    /// The first question's name, if any.
    pub fn queried_name(&self) -> Option<&str> {
        self.questions.first().map(|q| q.name.as_str())
    }

    /// Encode to wire bytes (no name compression).
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
            flags |= 0x0400; // authoritative answer
        }
        flags |= 0x0100; // recursion desired (copied by convention)
        flags |= self.rcode.to_bits() as u16;
        out.extend_from_slice(&flags.to_be_bytes());
        let qdcount = u16::try_from(self.questions.len())
            // jitsu-lint: allow(P001, "RFC 1035 caps the QDCOUNT field at u16; a message this stack builds carries one question")
            .expect("question count exceeds the u16 QDCOUNT field");
        let ancount = u16::try_from(self.answers.len())
            // jitsu-lint: allow(P001, "RFC 1035 caps the ANCOUNT field at u16; answers mirror the single question")
            .expect("answer count exceeds the u16 ANCOUNT field");
        out.extend_from_slice(&qdcount.to_be_bytes());
        out.extend_from_slice(&ancount.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // NS count
        out.extend_from_slice(&0u16.to_be_bytes()); // AR count
        for q in &self.questions {
            emit_name(&mut out, &q.name);
            out.extend_from_slice(&q.qtype.to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for a in &self.answers {
            emit_name(&mut out, &a.name);
            out.extend_from_slice(&1u16.to_be_bytes()); // type A
            out.extend_from_slice(&1u16.to_be_bytes()); // class IN
            out.extend_from_slice(&a.ttl.to_be_bytes());
            out.extend_from_slice(&4u16.to_be_bytes()); // rdlength
            out.extend_from_slice(&a.addr.0);
        }
        out
    }

    /// Decode from wire bytes.
    pub fn parse(buf: &[u8]) -> Result<DnsMessage> {
        if buf.len() < 12 {
            return Err(NetError::Truncated {
                layer: "dns",
                needed: 12,
                got: buf.len(),
            });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags = u16::from_be_bytes([buf[2], buf[3]]);
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        let ancount = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let name = parse_name(buf, &mut pos)?;
            if pos + 4 > buf.len() {
                return Err(NetError::Truncated {
                    layer: "dns",
                    needed: pos + 4,
                    got: buf.len(),
                });
            }
            let qtype = u16::from_be_bytes([buf[pos], buf[pos + 1]]);
            pos += 4; // type + class
            questions.push(Question { name, qtype });
        }
        let mut answers = Vec::with_capacity(ancount);
        for _ in 0..ancount {
            let name = parse_name(buf, &mut pos)?;
            if pos + 10 > buf.len() {
                return Err(NetError::Truncated {
                    layer: "dns",
                    needed: pos + 10,
                    got: buf.len(),
                });
            }
            let rtype = u16::from_be_bytes([buf[pos], buf[pos + 1]]);
            let ttl = u32::from_be_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]]);
            let rdlength = u16::from_be_bytes([buf[pos + 8], buf[pos + 9]]) as usize;
            pos += 10;
            if pos + rdlength > buf.len() {
                return Err(NetError::Truncated {
                    layer: "dns",
                    needed: pos + rdlength,
                    got: buf.len(),
                });
            }
            if rtype == 1 && rdlength == 4 {
                answers.push(Answer {
                    name,
                    addr: Ipv4Addr([buf[pos], buf[pos + 1], buf[pos + 2], buf[pos + 3]]),
                    ttl,
                });
            }
            pos += rdlength;
        }
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            rcode: Rcode::from_bits((flags & 0x000f) as u8),
            questions,
            answers,
        })
    }
}

fn emit_name(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        // jitsu-lint: allow(N001, "`.min(63)` bounds the label length to the DNS maximum, which fits in u8")
        out.push(bytes.len().min(63) as u8);
        out.extend_from_slice(&bytes[..bytes.len().min(63)]);
    }
    out.push(0);
}

fn parse_name(buf: &[u8], pos: &mut usize) -> Result<String> {
    let mut labels = Vec::new();
    loop {
        let len = *buf.get(*pos).ok_or(NetError::Truncated {
            layer: "dns",
            needed: *pos + 1,
            got: buf.len(),
        })? as usize;
        *pos += 1;
        if len == 0 {
            break;
        }
        if len & 0xc0 != 0 {
            return Err(NetError::Malformed {
                layer: "dns",
                what: "name compression not supported".into(),
            });
        }
        if *pos + len > buf.len() {
            return Err(NetError::Truncated {
                layer: "dns",
                needed: *pos + len,
                got: buf.len(),
            });
        }
        labels.push(String::from_utf8_lossy(&buf[*pos..*pos + len]).into_owned());
        *pos += len;
    }
    Ok(labels.join("."))
}

/// A static authoritative zone: name → address mappings plus the zone apex.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    /// The zone apex, e.g. `family.name`.
    pub origin: String,
    records: Vec<(String, Ipv4Addr)>,
    /// TTL handed out with answers.
    pub ttl: u32,
}

impl Zone {
    /// Create a zone rooted at `origin`.
    pub fn new(origin: &str, ttl: u32) -> Zone {
        Zone {
            origin: origin.trim_matches('.').to_string(),
            records: Vec::new(),
            ttl,
        }
    }

    /// Add (or replace) an A record for a fully-qualified name.
    pub fn add_record(&mut self, name: &str, addr: Ipv4Addr) {
        let name = name.trim_matches('.').to_string();
        if let Some(r) = self.records.iter_mut().find(|(n, _)| *n == name) {
            r.1 = addr;
        } else {
            self.records.push((name, addr));
        }
    }

    /// Remove a record.
    pub fn remove_record(&mut self, name: &str) {
        let name = name.trim_matches('.');
        self.records.retain(|(n, _)| n != name);
    }

    /// Look up a name.
    pub fn lookup(&self, name: &str) -> Option<Ipv4Addr> {
        let name = name.trim_matches('.');
        self.records
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| *a)
    }

    /// True if the name falls within this zone.
    pub fn contains(&self, name: &str) -> bool {
        let name = name.trim_matches('.');
        name == self.origin || name.ends_with(&format!(".{}", self.origin))
    }

    /// Number of records in the zone.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Answer a query from the zone contents alone: an A answer for known
    /// names, `NXDOMAIN` for unknown names inside the zone, and `None` for
    /// names outside the zone (the caller may recurse or refuse).
    pub fn respond(&self, query: &DnsMessage) -> Option<DnsMessage> {
        let name = query.queried_name()?;
        if !self.contains(name) {
            return None;
        }
        match self.lookup(name) {
            Some(addr) => Some(DnsMessage::answer(query, addr, self.ttl)),
            None => Some(DnsMessage::error(query, Rcode::NxDomain)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let q = DnsMessage::query(0x1234, "alice.family.name");
        let parsed = DnsMessage::parse(&q.emit()).unwrap();
        assert_eq!(parsed, q);
        assert!(!parsed.is_response);
        assert_eq!(parsed.queried_name(), Some("alice.family.name"));
    }

    #[test]
    fn answer_round_trip() {
        let q = DnsMessage::query(7, "alice.family.name");
        let a = DnsMessage::answer(&q, Ipv4Addr::new(192, 168, 1, 20), 30);
        let parsed = DnsMessage::parse(&a.emit()).unwrap();
        assert!(parsed.is_response);
        assert_eq!(parsed.id, 7);
        assert_eq!(parsed.rcode, Rcode::NoError);
        assert_eq!(parsed.answers.len(), 1);
        assert_eq!(parsed.answers[0].addr, Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(parsed.answers[0].ttl, 30);
        assert_eq!(parsed.answers[0].name, "alice.family.name");
    }

    #[test]
    fn error_responses_round_trip() {
        let q = DnsMessage::query(9, "bogus.family.name");
        for rcode in [Rcode::NxDomain, Rcode::ServFail] {
            let e = DnsMessage::error(&q, rcode);
            let parsed = DnsMessage::parse(&e.emit()).unwrap();
            assert_eq!(parsed.rcode, rcode);
            assert!(parsed.answers.is_empty());
        }
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(DnsMessage::parse(&[0; 5]).is_err());
        let q = DnsMessage::query(1, "a.b");
        let bytes = q.emit();
        assert!(DnsMessage::parse(&bytes[..bytes.len() - 3]).is_err());
        // A compression pointer (0xc0) is unsupported.
        let mut with_ptr = q.emit();
        with_ptr[12] = 0xc0;
        assert!(DnsMessage::parse(&with_ptr).is_err());
    }

    #[test]
    fn zone_lookup_and_membership() {
        let mut zone = Zone::new("family.name", 60);
        assert!(zone.is_empty());
        zone.add_record("alice.family.name", Ipv4Addr::new(192, 168, 1, 20));
        zone.add_record("bob.family.name", Ipv4Addr::new(192, 168, 1, 21));
        zone.add_record("alice.family.name", Ipv4Addr::new(192, 168, 1, 22)); // replace
        assert_eq!(zone.len(), 2);
        assert_eq!(
            zone.lookup("alice.family.name"),
            Some(Ipv4Addr::new(192, 168, 1, 22))
        );
        assert!(zone.contains("anything.family.name"));
        assert!(zone.contains("family.name"));
        assert!(!zone.contains("example.com"));
        zone.remove_record("bob.family.name");
        assert_eq!(zone.lookup("bob.family.name"), None);
    }

    #[test]
    fn zone_responds_with_answer_nxdomain_or_nothing() {
        let mut zone = Zone::new("family.name", 60);
        zone.add_record("alice.family.name", Ipv4Addr::new(192, 168, 1, 20));

        let q = DnsMessage::query(1, "alice.family.name");
        let resp = zone.respond(&q).unwrap();
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers[0].addr, Ipv4Addr::new(192, 168, 1, 20));

        let q = DnsMessage::query(2, "carol.family.name");
        assert_eq!(zone.respond(&q).unwrap().rcode, Rcode::NxDomain);

        let q = DnsMessage::query(3, "example.com");
        assert!(zone.respond(&q).is_none());
    }
}
