//! ICMP echo (ping), the protocol behind Figure 8's datapath-latency
//! measurement.

use crate::buf::FrameBuf;
use crate::checksum;
use crate::{NetError, Result};

/// Minimum ICMP echo header length.
pub const HEADER_LEN: usize = 8;

/// An ICMP echo request or reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// True for an echo request, false for a reply.
    pub is_request: bool,
    /// Identifier (usually the pinging process id).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Payload carried back verbatim in the reply — Figure 8 sweeps this
    /// from 56 to 1400 bytes. A view into the received frame's shared
    /// buffer.
    pub payload: FrameBuf,
}

impl IcmpEcho {
    /// Build an echo request.
    pub fn request(ident: u16, seq: u16, payload: impl Into<FrameBuf>) -> IcmpEcho {
        IcmpEcho {
            is_request: true,
            ident,
            seq,
            payload: payload.into(),
        }
    }

    /// Build the reply answering this request. The echoed payload is an
    /// O(1) view of the request's — no bytes are copied.
    pub fn reply(&self) -> IcmpEcho {
        IcmpEcho {
            is_request: false,
            ident: self.ident,
            seq: self.seq,
            payload: self.payload.slice(..),
        }
    }

    /// Parse and verify from wire bytes. The payload is an O(1) view
    /// sharing `buf`'s allocation.
    pub fn parse(buf: &FrameBuf) -> Result<IcmpEcho> {
        if buf.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                layer: "icmp",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        if !checksum::verify(buf) {
            return Err(NetError::BadChecksum("icmp"));
        }
        let is_request = match buf[0] {
            8 => true,
            0 => false,
            other => {
                return Err(NetError::Malformed {
                    layer: "icmp",
                    what: format!("unsupported ICMP type {other}"),
                })
            }
        };
        Ok(IcmpEcho {
            is_request,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            seq: u16::from_be_bytes([buf[6], buf[7]]),
            payload: buf.slice(HEADER_LEN..),
        })
    }

    /// Serialise to wire bytes with a valid checksum.
    pub fn emit(&self) -> FrameBuf {
        let mut out = vec![0u8; HEADER_LEN + self.payload.len()];
        out[0] = if self.is_request { 8 } else { 0 };
        out[4..6].copy_from_slice(&self.ident.to_be_bytes());
        out[6..8].copy_from_slice(&self.seq.to_be_bytes());
        out[HEADER_LEN..].copy_from_slice(&self.payload);
        let c = checksum::checksum(&out);
        out[2..4].copy_from_slice(&c.to_be_bytes());
        FrameBuf::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_request_and_reply() {
        let req = IcmpEcho::request(0x1234, 7, vec![0xAA; 56]);
        let parsed = IcmpEcho::parse(&req.emit()).unwrap();
        assert_eq!(parsed, req);
        let reply = parsed.reply();
        assert!(!reply.is_request);
        assert_eq!(reply.ident, 0x1234);
        assert_eq!(reply.seq, 7);
        assert_eq!(reply.payload, req.payload);
        assert!(
            reply.payload.shares_allocation(&parsed.payload),
            "the echoed payload is a view, not a copy"
        );
        assert_eq!(IcmpEcho::parse(&reply.emit()).unwrap(), reply);
    }

    #[test]
    fn figure8_payload_sizes_round_trip() {
        for size in [56usize, 128, 512, 1024, 1400] {
            let req = IcmpEcho::request(1, 1, vec![0x5A; size]);
            let parsed = IcmpEcho::parse(&req.emit()).unwrap();
            assert_eq!(parsed.payload.len(), size);
        }
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let req = IcmpEcho::request(1, 1, vec![1, 2, 3, 4]);
        let mut bytes = req.emit().to_vec();
        bytes[9] ^= 0xff;
        assert_eq!(
            IcmpEcho::parse(&bytes.into()),
            Err(NetError::BadChecksum("icmp"))
        );
        assert!(matches!(
            IcmpEcho::parse(&req.emit().slice(..4)),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn unsupported_types_rejected() {
        // Destination unreachable (type 3) — valid ICMP but not echo.
        let mut bytes = vec![3u8, 0, 0, 0, 0, 0, 0, 0];
        let c = checksum::checksum(&bytes);
        bytes[2..4].copy_from_slice(&c.to_be_bytes());
        assert!(matches!(
            IcmpEcho::parse(&bytes.into()),
            Err(NetError::Malformed { layer: "icmp", .. })
        ));
    }
}
