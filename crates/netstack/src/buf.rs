//! Shared, immutable frame buffers: the zero-copy spine of the frame path.
//!
//! Every layer of the reproduction used to clone payload bytes as a packet
//! climbed the stack (bridge → Synjitsu → vchan → unikernel). [`FrameBuf`]
//! replaces those clones with reference-counted views: one `Arc<[u8]>`
//! allocation holds the received bytes, and [`FrameBuf::slice`] hands out
//! O(1) windows into it — an Ethernet payload, the IPv4 payload inside it,
//! the TCP payload inside *that* — all sharing the single allocation. The
//! jitsu-lint A001 ratchet (`crates/lint/budget.toml`) enforces that the
//! hot path stays this way: a packet is copied at most once, at ring
//! ingress.
//!
//! [`FrameBufMut`] is the builder half for emit paths: append bytes, then
//! [`FrameBufMut::freeze`] into an immutable shared buffer. Copies that
//! *must* happen (ring ingress, reassembly of out-of-order segments) go
//! through the explicit [`FrameBuf::copy_from_slice`] constructor so intent
//! is visible at the call site.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable view into shared frame bytes.
///
/// Cloning and slicing are O(1): both produce a new view over the same
/// underlying `Arc<[u8]>` allocation. The empty buffer holds no allocation
/// at all, so [`FrameBuf::empty`] is free and `const`.
#[derive(Clone)]
pub struct FrameBuf {
    /// `None` iff the buffer is empty — the empty view never allocates.
    data: Option<Arc<[u8]>>,
    start: usize,
    end: usize,
}

impl FrameBuf {
    /// The empty buffer. Allocation-free and `const`.
    pub const fn empty() -> FrameBuf {
        FrameBuf {
            data: None,
            start: 0,
            end: 0,
        }
    }

    /// Take ownership of `bytes` as a shared buffer (the sanctioned way to
    /// seal an emit-path `Vec`; no per-hop copies after this point).
    pub fn from_vec(bytes: Vec<u8>) -> FrameBuf {
        if bytes.is_empty() {
            return FrameBuf::empty();
        }
        let end = bytes.len();
        FrameBuf {
            data: Some(Arc::from(bytes)),
            start: 0,
            end,
        }
    }

    /// Copy `bytes` into a fresh shared buffer. This is the *explicit* copy
    /// constructor: the frame path allows exactly one copy per packet (ring
    /// ingress, reassembly), and that copy should be spelled out, not hidden
    /// in a `.to_vec()`.
    pub fn copy_from_slice(bytes: &[u8]) -> FrameBuf {
        let mut v = Vec::with_capacity(bytes.len());
        v.extend_from_slice(bytes);
        FrameBuf::from_vec(v)
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes are visible.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The visible bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }

    /// An O(1) sub-view sharing this buffer's allocation. Follows the std
    /// slice-index contract: an out-of-range or inverted range panics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> FrameBuf {
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => len,
        };
        if start > end || end > len {
            // jitsu-lint: allow(P001, "mirrors the std slice-index contract: a bad range is a caller bug")
            panic!("FrameBuf::slice: range {start}..{end} out of bounds for length {len}");
        }
        if start == end {
            return FrameBuf::empty();
        }
        match &self.data {
            Some(d) => FrameBuf {
                data: Some(Arc::clone(d)),
                start: self.start + start,
                end: self.start + end,
            },
            None => FrameBuf::empty(),
        }
    }

    /// Concatenate views. A single non-empty part is returned as an O(1)
    /// view (the common in-order delivery case); only genuine multi-part
    /// reassembly copies.
    pub fn concat(parts: &[FrameBuf]) -> FrameBuf {
        let non_empty: Vec<&FrameBuf> = parts.iter().filter(|p| !p.is_empty()).collect();
        match non_empty.as_slice() {
            [] => FrameBuf::empty(),
            [one] => (*one).clone(),
            many => {
                let total = many.iter().map(|p| p.len()).sum();
                let mut v = Vec::with_capacity(total);
                for part in many {
                    v.extend_from_slice(part);
                }
                FrameBuf::from_vec(v)
            }
        }
    }

    /// True when this view is backed by a heap allocation (the empty buffer
    /// never is — the zero-byte vchan read regression test keys on this).
    pub fn has_allocation(&self) -> bool {
        self.data.is_some()
    }

    /// True when both views are windows into the *same* allocation — the
    /// structural zero-copy check the `frame_path` bench suite counts
    /// copies with.
    pub fn shares_allocation(&self, other: &FrameBuf) -> bool {
        match (&self.data, &other.data) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Default for FrameBuf {
    fn default() -> FrameBuf {
        FrameBuf::empty()
    }
}

impl Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FrameBuf").field(&self.as_slice()).finish()
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(v: Vec<u8>) -> FrameBuf {
        FrameBuf::from_vec(v)
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(v: &[u8]) -> FrameBuf {
        FrameBuf::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for FrameBuf {
    fn from(v: &[u8; N]) -> FrameBuf {
        FrameBuf::copy_from_slice(v)
    }
}

impl From<&FrameBuf> for FrameBuf {
    fn from(v: &FrameBuf) -> FrameBuf {
        v.clone()
    }
}

impl From<FrameBufMut> for FrameBuf {
    fn from(v: FrameBufMut) -> FrameBuf {
        v.freeze()
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FrameBuf {}

impl PartialEq<[u8]> for FrameBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for FrameBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for FrameBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for FrameBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for FrameBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<FrameBuf> for Vec<u8> {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<FrameBuf> for [u8] {
    fn eq(&self, other: &FrameBuf) -> bool {
        self == other.as_slice()
    }
}

/// The builder half: an append-only byte buffer that freezes into a
/// [`FrameBuf`]. Emit paths compose a frame once (headers, then payload)
/// and seal it; nothing downstream copies it again.
#[derive(Debug, Default, Clone)]
pub struct FrameBufMut {
    buf: Vec<u8>,
}

impl FrameBufMut {
    /// An empty builder.
    pub fn new() -> FrameBufMut {
        FrameBufMut::default()
    }

    /// An empty builder with `capacity` bytes pre-reserved (emit paths know
    /// the frame length up front).
    pub fn with_capacity(capacity: usize) -> FrameBufMut {
        FrameBufMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Append one byte.
    pub fn push(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Overwrite a byte written earlier (checksum backfill in emit paths).
    pub fn set(&mut self, index: usize, byte: u8) {
        self.buf[index] = byte;
    }

    /// Seal into an immutable shared buffer.
    pub fn freeze(self) -> FrameBuf {
        FrameBuf::from_vec(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_allocation_free() {
        let e = FrameBuf::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.has_allocation());
        assert_eq!(e.as_slice(), &[] as &[u8]);
        assert_eq!(FrameBuf::default(), e);
        assert!(!FrameBuf::from_vec(Vec::new()).has_allocation());
        assert!(!FrameBuf::copy_from_slice(&[]).has_allocation());
    }

    #[test]
    fn from_vec_and_views_share_one_allocation() {
        let b = FrameBuf::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert!(b.has_allocation());
        let mid = b.slice(1..4);
        assert_eq!(mid, [2, 3, 4]);
        assert!(mid.shares_allocation(&b));
        let inner = mid.slice(1..);
        assert_eq!(inner, [3, 4]);
        assert!(inner.shares_allocation(&b));
        let all = b.slice(..);
        assert_eq!(all, b);
        assert!(all.shares_allocation(&b));
        let cloned = b.clone();
        assert!(cloned.shares_allocation(&b));
    }

    #[test]
    fn zero_length_slices_drop_the_allocation() {
        let b = FrameBuf::from_vec(vec![1, 2, 3]);
        let empty = b.slice(2..2);
        assert!(empty.is_empty());
        assert!(!empty.has_allocation());
        assert!(!empty.shares_allocation(&b));
    }

    #[test]
    fn slice_accepts_every_range_form() {
        let b = FrameBuf::from_vec(vec![10, 11, 12, 13]);
        assert_eq!(b.slice(..), [10, 11, 12, 13]);
        assert_eq!(b.slice(1..), [11, 12, 13]);
        assert_eq!(b.slice(..2), [10, 11]);
        assert_eq!(b.slice(1..3), [11, 12]);
        assert_eq!(b.slice(1..=2), [11, 12]);
        assert_eq!(b.slice(4..), [] as [u8; 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_the_end_panics_like_std() {
        FrameBuf::from_vec(vec![1, 2]).slice(..3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[allow(clippy::reversed_empty_ranges)]
    fn inverted_slice_panics_like_std() {
        FrameBuf::from_vec(vec![1, 2, 3]).slice(2..1);
    }

    #[test]
    fn copies_are_independent_allocations() {
        let a = FrameBuf::copy_from_slice(b"abc");
        let b = FrameBuf::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert!(!a.shares_allocation(&b));
    }

    #[test]
    fn concat_of_one_part_is_a_view_not_a_copy() {
        let b = FrameBuf::from_vec(vec![1, 2, 3]);
        let joined = FrameBuf::concat(&[FrameBuf::empty(), b.clone(), FrameBuf::empty()]);
        assert_eq!(joined, b);
        assert!(joined.shares_allocation(&b));
    }

    #[test]
    fn concat_of_many_parts_preserves_order() {
        let a = FrameBuf::from_vec(vec![1, 2]);
        let b = FrameBuf::from_vec(vec![3]);
        let c = FrameBuf::from_vec(vec![4, 5]);
        let joined = FrameBuf::concat(&[a.clone(), b, FrameBuf::empty(), c]);
        assert_eq!(joined, [1, 2, 3, 4, 5]);
        assert!(!joined.shares_allocation(&a));
        assert_eq!(FrameBuf::concat(&[]), FrameBuf::empty());
        assert!(!FrameBuf::concat(&[]).has_allocation());
    }

    #[test]
    fn equality_against_plain_byte_containers() {
        let b = FrameBuf::from_vec(b"hello".to_vec());
        assert_eq!(b, b"hello");
        assert_eq!(b, *b"hello");
        assert_eq!(b, b"hello".to_vec());
        assert_eq!(b, b"hello" as &[u8]);
        assert_eq!(b"hello".to_vec(), b);
        assert_ne!(b, b"world");
    }

    #[test]
    fn deref_exposes_slice_methods() {
        let b = FrameBuf::from_vec(b"GET / HTTP/1.1".to_vec());
        assert!(b.starts_with(b"GET"));
        assert_eq!(b[4], b'/');
        assert_eq!(b.iter().filter(|&&c| c == b'/').count(), 2);
        let (head, tail) = b.split_at(3);
        assert_eq!(head, b"GET");
        assert_eq!(tail.len(), 11);
    }

    #[test]
    fn builder_freezes_into_a_shared_buffer() {
        let mut m = FrameBufMut::with_capacity(8);
        assert!(m.is_empty());
        m.extend_from_slice(&[0xde, 0x00]);
        m.push(0xbe);
        m.set(1, 0xad);
        assert_eq!(m.len(), 3);
        assert_eq!(m.as_slice(), &[0xde, 0xad, 0xbe]);
        let frozen: FrameBuf = m.into();
        assert_eq!(frozen, [0xde, 0xad, 0xbe]);
        assert!(FrameBufMut::new().freeze().is_empty());
    }

    #[test]
    fn from_conversions() {
        let v: FrameBuf = vec![1, 2].into();
        let s: FrameBuf = (&[1u8, 2][..]).into();
        let a: FrameBuf = (&[1u8, 2]).into();
        assert_eq!(v, s);
        assert_eq!(v, a);
        let r: FrameBuf = (&v).into();
        assert!(r.shares_allocation(&v));
        assert_eq!(format!("{v:?}"), "FrameBuf([1, 2])");
    }
}
