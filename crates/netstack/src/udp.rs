//! UDP datagrams (DNS transport for the Jitsu directory service).

use crate::buf::FrameBuf;
use crate::checksum;
use crate::ipv4::Ipv4Addr;
use crate::{NetError, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes: a view into the received frame's shared buffer.
    pub payload: FrameBuf,
}

impl UdpDatagram {
    /// Construct a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: impl Into<FrameBuf>) -> UdpDatagram {
        UdpDatagram {
            src_port,
            dst_port,
            payload: payload.into(),
        }
    }

    /// Parse from wire bytes, verifying the checksum against the IPv4
    /// pseudo-header (a zero checksum means "not computed" and is accepted,
    /// per the RFC). The payload is an O(1) view sharing `buf`'s
    /// allocation.
    pub fn parse(buf: &FrameBuf, src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram> {
        if buf.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if length < HEADER_LEN || buf.len() < length {
            return Err(NetError::Truncated {
                layer: "udp",
                needed: length,
                got: buf.len(),
            });
        }
        let wire_checksum = u16::from_be_bytes([buf[6], buf[7]]);
        if wire_checksum != 0 {
            // jitsu-lint: allow(N001, "length was decoded from the datagram's u16 length field just above")
            let ph = checksum::pseudo_header(src.0, dst.0, 17, length as u16);
            if checksum::finish(checksum::partial(ph, &buf[..length])) != 0 {
                return Err(NetError::BadChecksum("udp"));
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: buf.slice(HEADER_LEN..length),
        })
    }

    /// Serialise with a checksum computed over the IPv4 pseudo-header.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> FrameBuf {
        // jitsu-lint: allow(N001, "payloads are MTU-bounded (≤1500 bytes), so header + payload is far below 65536")
        let length = (HEADER_LEN + self.payload.len()) as u16;
        let mut out = vec![0u8; length as usize];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&length.to_be_bytes());
        out[HEADER_LEN..].copy_from_slice(&self.payload);
        let ph = checksum::pseudo_header(src.0, dst.0, 17, length);
        let mut c = checksum::finish(checksum::partial(ph, &out));
        if c == 0 {
            c = 0xffff; // 0 is reserved for "no checksum"
        }
        out[6..8].copy_from_slice(&c.to_be_bytes());
        FrameBuf::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);

    #[test]
    fn round_trip_with_checksum() {
        let d = UdpDatagram::new(53000, 53, b"dns query bytes".to_vec());
        let bytes = d.emit(SRC, DST);
        let parsed = UdpDatagram::parse(&bytes, SRC, DST).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let d = UdpDatagram::new(1000, 2000, b"payload".to_vec());
        let bytes = d.emit(SRC, DST);
        assert_eq!(
            UdpDatagram::parse(&bytes, SRC, Ipv4Addr::new(10, 0, 0, 9)),
            Err(NetError::BadChecksum("udp"))
        );
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let d = UdpDatagram::new(5, 6, b"x".to_vec());
        let mut bytes = d.emit(SRC, DST).to_vec();
        bytes[6] = 0;
        bytes[7] = 0;
        let parsed = UdpDatagram::parse(&bytes.into(), SRC, DST).unwrap();
        assert_eq!(parsed.payload, b"x");
    }

    #[test]
    fn truncation_detected() {
        let d = UdpDatagram::new(5, 6, vec![0; 32]);
        let bytes = d.emit(SRC, DST);
        assert!(matches!(
            UdpDatagram::parse(&bytes.slice(..10), SRC, DST),
            Err(NetError::Truncated { .. })
        ));
        assert!(matches!(
            UdpDatagram::parse(&FrameBuf::copy_from_slice(&[0; 4]), SRC, DST),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn empty_payload_allowed() {
        let d = UdpDatagram::new(9, 10, Vec::new());
        let parsed = UdpDatagram::parse(&d.emit(SRC, DST), SRC, DST).unwrap();
        assert!(parsed.payload.is_empty());
    }
}
