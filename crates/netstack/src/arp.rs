//! ARP: resolving IPv4 addresses to MAC addresses on the local segment.
//!
//! Jitsu assigns each unikernel an external IP on the local bridge; before a
//! client (or the upstream router) can deliver TCP SYNs to it, ARP must
//! resolve that IP. Synjitsu answers ARP for unikernels that are still
//! booting, which is part of how it captures their early traffic.

use crate::ethernet::MacAddr;
use crate::ipv4::Ipv4Addr;
use crate::{NetError, Result};
use std::collections::BTreeMap;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// A parsed ARP packet (Ethernet/IPv4 only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// ARP packet length for Ethernet/IPv4.
pub const PACKET_LEN: usize = 28;

impl ArpPacket {
    /// Build a who-has request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// Build the reply answering `request` on behalf of `our_mac`.
    pub fn reply_to(request: &ArpPacket, our_mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: our_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Parse from wire bytes.
    pub fn parse(buf: &[u8]) -> Result<ArpPacket> {
        if buf.len() < PACKET_LEN {
            return Err(NetError::Truncated {
                layer: "arp",
                needed: PACKET_LEN,
                got: buf.len(),
            });
        }
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if htype != 1 || ptype != 0x0800 || buf[4] != 6 || buf[5] != 4 {
            return Err(NetError::Malformed {
                layer: "arp",
                what: "only Ethernet/IPv4 ARP is supported".into(),
            });
        }
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => {
                return Err(NetError::Malformed {
                    layer: "arp",
                    what: format!("unknown opcode {other}"),
                })
            }
        };
        let mut sender_mac = [0u8; 6];
        let mut target_mac = [0u8; 6];
        let mut sender_ip = [0u8; 4];
        let mut target_ip = [0u8; 4];
        sender_mac.copy_from_slice(&buf[8..14]);
        sender_ip.copy_from_slice(&buf[14..18]);
        target_mac.copy_from_slice(&buf[18..24]);
        target_ip.copy_from_slice(&buf[24..28]);
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr(sender_mac),
            sender_ip: Ipv4Addr(sender_ip),
            target_mac: MacAddr(target_mac),
            target_ip: Ipv4Addr(target_ip),
        })
    }

    /// Serialise to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PACKET_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // IPv4
        out.push(6);
        out.push(4);
        out.extend_from_slice(
            &match self.op {
                ArpOp::Request => 1u16,
                ArpOp::Reply => 2u16,
            }
            .to_be_bytes(),
        );
        out.extend_from_slice(&self.sender_mac.0);
        out.extend_from_slice(&self.sender_ip.0);
        out.extend_from_slice(&self.target_mac.0);
        out.extend_from_slice(&self.target_ip.0);
        out
    }
}

/// A simple ARP cache (no expiry policy beyond an entry cap).
#[derive(Debug, Default, Clone)]
pub struct ArpCache {
    entries: BTreeMap<Ipv4Addr, MacAddr>,
}

impl ArpCache {
    /// Create an empty cache.
    pub fn new() -> ArpCache {
        ArpCache::default()
    }

    /// Insert or refresh an entry.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(ip, mac);
    }

    /// Look up an entry.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.get(&ip).copied()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAC_A: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const MAC_B: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);
    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn request_reply_round_trip() {
        let req = ArpPacket::request(MAC_A, IP_A, IP_B);
        let parsed = ArpPacket::parse(&req.emit()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.op, ArpOp::Request);

        let reply = ArpPacket::reply_to(&parsed, MAC_B);
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_mac, MAC_B);
        assert_eq!(reply.sender_ip, IP_B);
        assert_eq!(reply.target_mac, MAC_A);
        assert_eq!(reply.target_ip, IP_A);
        assert_eq!(ArpPacket::parse(&reply.emit()).unwrap(), reply);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let req = ArpPacket::request(MAC_A, IP_A, IP_B);
        let mut bytes = req.emit();
        bytes[1] = 6; // hardware type: IEEE 802
        assert!(matches!(
            ArpPacket::parse(&bytes),
            Err(NetError::Malformed { layer: "arp", .. })
        ));
        let mut bad_op = req.emit();
        bad_op[7] = 9;
        assert!(ArpPacket::parse(&bad_op).is_err());
        assert!(matches!(
            ArpPacket::parse(&[0; 10]),
            Err(NetError::Truncated { layer: "arp", .. })
        ));
    }

    #[test]
    fn cache_insert_and_lookup() {
        let mut cache = ArpCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(IP_A), None);
        cache.insert(IP_A, MAC_A);
        cache.insert(IP_B, MAC_B);
        cache.insert(IP_A, MAC_B); // refresh
        assert_eq!(cache.lookup(IP_A), Some(MAC_B));
        assert_eq!(cache.len(), 2);
    }
}
