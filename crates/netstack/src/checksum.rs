//! The Internet checksum (RFC 1071) used by IPv4, ICMP, UDP and TCP.

/// Compute the one's-complement sum of `data`, folded to 16 bits, starting
/// from an initial partial sum (host byte order).
pub fn partial(mut sum: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let Some(&last) = chunks.remainder().first() {
        sum += u32::from(u16::from_be_bytes([last, 0]));
    }
    sum
}

/// Fold a partial sum and return the final checksum value.
pub fn finish(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    // jitsu-lint: allow(N001, "the fold loop above just established sum >> 16 == 0, so sum fits in u16")
    !(sum as u16)
}

/// One-shot checksum of a buffer.
pub fn checksum(data: &[u8]) -> u16 {
    finish(partial(0, data))
}

/// The IPv4 pseudo-header contribution used by TCP and UDP checksums.
pub fn pseudo_header(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> u32 {
    let mut sum = 0u32;
    sum = partial(sum, &src);
    sum = partial(sum, &dst);
    sum += u32::from(protocol);
    sum += u32::from(length);
    sum
}

/// Verify that a buffer containing its own checksum field sums to zero.
pub fn verify(data: &[u8]) -> bool {
    finish(partial(0, data)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = checksum(&[0x01, 0x02, 0x03, 0x00]);
        let odd = checksum(&[0x01, 0x02, 0x03]);
        assert_eq!(even, odd);
    }

    #[test]
    fn verify_detects_corruption() {
        // Build a fake header with its checksum inserted and verify it.
        let mut header = vec![
            0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00, 0x40, 0x01, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let c = checksum(&header);
        header[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&header));
        header[15] ^= 0xff;
        assert!(!verify(&header));
    }

    #[test]
    fn pseudo_header_contributes_to_sum() {
        let ph = pseudo_header([10, 0, 0, 1], [10, 0, 0, 2], 6, 20);
        let with = finish(partial(ph, b"hello world tcp data"));
        let without = checksum(b"hello world tcp data");
        assert_ne!(with, without);
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
        assert_eq!(finish(0), 0xffff);
    }
}
