//! A minimal HTTP/1.1 codec for the evaluation workloads.
//!
//! The paper's service-startup experiment measures end-to-end HTTP request
//! latency against freshly summoned unikernels (Figure 9a), and the
//! throughput experiment serves an HTTP persistent queue from disk (§4).
//! This module implements just enough of HTTP/1.1 — request line, headers,
//! `Content-Length` bodies — to drive those workloads realistically.

use crate::buf::{FrameBuf, FrameBufMut};
use crate::{NetError, Result};
use std::collections::BTreeMap;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method (GET, POST, …).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Body bytes: a view into the received buffer.
    pub body: FrameBuf,
}

impl HttpRequest {
    /// Build a GET request with a Host header.
    pub fn get(path: &str, host: &str) -> HttpRequest {
        let mut headers = BTreeMap::new();
        headers.insert("host".to_string(), host.to_string());
        HttpRequest {
            method: "GET".to_string(),
            path: path.to_string(),
            headers,
            body: FrameBuf::empty(),
        }
    }

    /// Build a POST request with a body.
    pub fn post(path: &str, host: &str, body: impl Into<FrameBuf>) -> HttpRequest {
        let body = body.into();
        let mut headers = BTreeMap::new();
        headers.insert("host".to_string(), host.to_string());
        headers.insert("content-length".to_string(), body.len().to_string());
        HttpRequest {
            method: "POST".to_string(),
            path: path.to_string(),
            headers,
            body,
        }
    }

    /// Serialise to wire bytes: compose once, seal into a shared buffer.
    pub fn emit(&self) -> FrameBuf {
        let mut out = FrameBufMut::new();
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.path).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out.freeze()
    }

    /// Parse from wire bytes. Returns `Ok(None)` if the buffer does not yet
    /// contain a complete request (headers plus declared body). The body is
    /// an O(1) view sharing `buf`'s allocation.
    pub fn parse(buf: &FrameBuf) -> Result<Option<HttpRequest>> {
        let Some((head, body_start)) = split_head(buf) else {
            return Ok(None);
        };
        let text = String::from_utf8_lossy(head);
        let mut lines = text.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or_default().to_string();
        let path = parts.next().unwrap_or_default().to_string();
        let version = parts.next().unwrap_or_default();
        if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
            return Err(NetError::Malformed {
                layer: "http",
                what: format!("bad request line: {request_line:?}"),
            });
        }
        let headers = parse_headers(lines)?;
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if buf.len() < body_start + content_length {
            return Ok(None);
        }
        Ok(Some(HttpRequest {
            method,
            path,
            headers,
            body: buf.slice(body_start..body_start + content_length),
        }))
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Body bytes: a view into the received buffer.
    pub body: FrameBuf,
}

impl HttpResponse {
    /// A 200 OK response with a body.
    pub fn ok(body: impl Into<FrameBuf>) -> HttpResponse {
        HttpResponse::with_status(200, "OK", body)
    }

    /// A 404 Not Found response.
    pub fn not_found() -> HttpResponse {
        HttpResponse::with_status(404, "Not Found", b"not found\n".to_vec())
    }

    /// A 503 Service Unavailable response (what a loaded Jitsu host returns
    /// when it cannot summon another unikernel).
    pub fn unavailable() -> HttpResponse {
        HttpResponse::with_status(503, "Service Unavailable", b"try another host\n".to_vec())
    }

    /// Build a response with an arbitrary status.
    pub fn with_status(status: u16, reason: &str, body: impl Into<FrameBuf>) -> HttpResponse {
        let body = body.into();
        let mut headers = BTreeMap::new();
        headers.insert("content-length".to_string(), body.len().to_string());
        headers.insert("connection".to_string(), "keep-alive".to_string());
        HttpResponse {
            status,
            reason: reason.to_string(),
            headers,
            body,
        }
    }

    /// Serialise to wire bytes: compose once, seal into a shared buffer.
    pub fn emit(&self) -> FrameBuf {
        let mut out = FrameBufMut::new();
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out.freeze()
    }

    /// Parse from wire bytes; `Ok(None)` when incomplete. The body is an
    /// O(1) view sharing `buf`'s allocation.
    pub fn parse(buf: &FrameBuf) -> Result<Option<HttpResponse>> {
        let Some((head, body_start)) = split_head(buf) else {
            return Ok(None);
        };
        let text = String::from_utf8_lossy(head);
        let mut lines = text.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or_default();
        let status: u16 =
            parts
                .next()
                .unwrap_or_default()
                .parse()
                .map_err(|_| NetError::Malformed {
                    layer: "http",
                    what: format!("bad status line: {status_line:?}"),
                })?;
        if !version.starts_with("HTTP/1.") {
            return Err(NetError::Malformed {
                layer: "http",
                what: format!("bad version in: {status_line:?}"),
            });
        }
        let reason = parts.next().unwrap_or_default().to_string();
        let headers = parse_headers(lines)?;
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if buf.len() < body_start + content_length {
            return Ok(None);
        }
        Ok(Some(HttpResponse {
            status,
            reason,
            headers,
            body: buf.slice(body_start..body_start + content_length),
        }))
    }
}

/// Split a buffer at the `\r\n\r\n` header terminator, returning the header
/// block and the index where the body starts.
fn split_head(buf: &[u8]) -> Option<(&[u8], usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|idx| (&buf[..idx], idx + 4))
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<BTreeMap<String, String>> {
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| NetError::Malformed {
            layer: "http",
            what: format!("bad header line: {line:?}"),
        })?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = HttpRequest::get("/photos/cat.jpg", "alice.family.name");
        let parsed = HttpRequest::parse(&req.emit()).unwrap().unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.headers["host"], "alice.family.name");
    }

    #[test]
    fn post_with_body_round_trip() {
        let req = HttpRequest::post("/queue", "q.local", b"item-1".to_vec());
        let emitted = req.emit();
        let parsed = HttpRequest::parse(&emitted).unwrap().unwrap();
        assert_eq!(parsed.body, b"item-1");
        assert!(parsed.body.shares_allocation(&emitted));
        assert_eq!(parsed.headers["content-length"], "6");
    }

    #[test]
    fn response_round_trip() {
        let resp = HttpResponse::ok(b"<html>hello</html>".to_vec());
        let parsed = HttpResponse::parse(&resp.emit()).unwrap().unwrap();
        assert_eq!(parsed, resp);
        assert_eq!(parsed.status, 200);
        let nf = HttpResponse::not_found();
        assert_eq!(
            HttpResponse::parse(&nf.emit()).unwrap().unwrap().status,
            404
        );
        let un = HttpResponse::unavailable();
        assert_eq!(
            HttpResponse::parse(&un.emit()).unwrap().unwrap().status,
            503
        );
    }

    #[test]
    fn incomplete_messages_return_none() {
        let req = HttpRequest::post("/q", "h", vec![0; 100]);
        let bytes = req.emit();
        // Headers not yet complete.
        assert_eq!(HttpRequest::parse(&bytes.slice(..10)).unwrap(), None);
        // Headers complete but body still streaming.
        let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(
            HttpRequest::parse(&bytes.slice(..head_end + 10)).unwrap(),
            None
        );
        // Same for responses.
        let resp = HttpResponse::ok(vec![0; 50]);
        let rbytes = resp.emit();
        assert_eq!(
            HttpResponse::parse(&rbytes.slice(..rbytes.len() - 1)).unwrap(),
            None
        );
    }

    #[test]
    fn malformed_messages_rejected() {
        assert!(HttpRequest::parse(&b"NOT A REQUEST\r\n\r\n".into()).is_err());
        assert!(HttpRequest::parse(&b"GET /x SPDY/9\r\n\r\n".into()).is_err());
        assert!(HttpRequest::parse(&b"GET / HTTP/1.1\r\nbadheader\r\n\r\n".into()).is_err());
        assert!(HttpResponse::parse(&b"HTTP/1.1 abc OK\r\n\r\n".into()).is_err());
        assert!(HttpResponse::parse(&b"ICY 200 OK\r\n\r\n".into()).is_err());
    }

    #[test]
    fn headers_are_case_insensitive() {
        let raw = b"GET / HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nok";
        let parsed = HttpRequest::parse(&raw.into()).unwrap().unwrap();
        assert_eq!(parsed.headers["host"], "x");
        assert_eq!(parsed.body, b"ok");
    }
}
