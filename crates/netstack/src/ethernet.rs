//! Ethernet II framing.

use crate::buf::{FrameBuf, FrameBufMut};
use crate::{NetError, Result};
use std::fmt;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// True for broadcast or multicast addresses (group bit set).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        self.0 == [0xff; 6]
    }

    /// Parse the usual colon-separated hex notation.
    pub fn parse(s: &str) -> Option<MacAddr> {
        let mut out = [0u8; 6];
        let mut n = 0;
        for part in s.split(':') {
            if n >= 6 {
                return None;
            }
            out[n] = u8::from_str_radix(part, 16).ok()?;
            n += 1;
        }
        if n == 6 {
            Some(MacAddr(out))
        } else {
            None
        }
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// The EtherType of a frame's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// Numeric value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decode a numeric value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// Ethernet header length.
pub const HEADER_LEN: usize = 14;

/// A parsed Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
    /// Payload bytes: a view into the received frame's shared buffer.
    pub payload: FrameBuf,
}

impl EthernetFrame {
    /// Construct a frame.
    pub fn new(
        dst: MacAddr,
        src: MacAddr,
        ethertype: EtherType,
        payload: impl Into<FrameBuf>,
    ) -> EthernetFrame {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload: payload.into(),
        }
    }

    /// Parse a frame from wire bytes. The payload is an O(1) view sharing
    /// `buf`'s allocation — no bytes are copied.
    pub fn parse(buf: &FrameBuf) -> Result<EthernetFrame> {
        if buf.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: buf.slice(HEADER_LEN..),
        })
    }

    /// Serialise to wire bytes: compose once, seal into a shared buffer.
    pub fn emit(&self) -> FrameBuf {
        let mut out = FrameBufMut::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.as_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out.freeze()
    }

    /// Total frame length on the wire.
    pub fn len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: MacAddr = MacAddr([2, 0, 0, 0, 0, 1]);
    const B: MacAddr = MacAddr([2, 0, 0, 0, 0, 2]);

    #[test]
    fn round_trip() {
        let f = EthernetFrame::new(A, B, EtherType::Ipv4, vec![1, 2, 3, 4]);
        let bytes = f.emit();
        assert_eq!(bytes.len(), f.len());
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed, f);
        assert!(!f.is_empty());
    }

    #[test]
    fn truncated_frame_rejected() {
        assert!(matches!(
            EthernetFrame::parse(&FrameBuf::copy_from_slice(&[0; 13])),
            Err(NetError::Truncated {
                layer: "ethernet",
                ..
            })
        ));
        // Exactly a header with no payload is fine.
        let f = EthernetFrame::parse(&FrameBuf::copy_from_slice(&[0; 14])).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn parsed_payload_is_a_view_not_a_copy() {
        let bytes = EthernetFrame::new(A, B, EtherType::Ipv4, vec![9; 64]).emit();
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert!(parsed.payload.shares_allocation(&bytes));
        assert_eq!(parsed.payload, vec![9; 64]);
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(EtherType::Ipv4.as_u16(), 0x0800);
        assert_eq!(EtherType::Arp.as_u16(), 0x0806);
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        assert_eq!(EtherType::Other(0x1234).as_u16(), 0x1234);
    }

    #[test]
    fn mac_properties_and_display() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!A.is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert_eq!(A.to_string(), "02:00:00:00:00:01");
    }

    #[test]
    fn mac_parse() {
        assert_eq!(MacAddr::parse("02:00:00:00:00:01"), Some(A));
        assert_eq!(
            MacAddr::parse("ff:ff:ff:ff:ff:ff"),
            Some(MacAddr::BROADCAST)
        );
        assert_eq!(MacAddr::parse("02:00:00:00:00"), None);
        assert_eq!(MacAddr::parse("02:00:00:00:00:01:09"), None);
        assert_eq!(MacAddr::parse("zz:00:00:00:00:01"), None);
    }
}
