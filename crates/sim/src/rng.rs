//! Deterministic random number generation.
//!
//! Every stochastic element of the reproduction (hotplug script jitter, SD
//! card latency variation, Docker's occasional ext4/VFS failures, …) draws
//! from a [`SimRng`] seeded explicitly by the experiment harness, so each
//! figure is reproducible bit-for-bit from its seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, explicitly-seeded random number generator.
///
/// This is a thin wrapper over [`rand::rngs::StdRng`] with convenience
/// helpers used across the simulation crates.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fork a new, independent generator derived from this one. The child's
    /// stream is a deterministic function of the parent seed and the draw
    /// position, so forking in a fixed order yields reproducible children.
    pub fn fork(&mut self) -> SimRng {
        let child_seed = self.inner.gen::<u64>() ^ 0x9e37_79b9_7f4a_7c15;
        SimRng::seed_from_u64(child_seed)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)` (returns `lo` if the range is empty).
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.uniform01() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform `usize` in `[0, n)`; returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Standard normal draw using the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.uniform01();
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// Exponential draw with the given mean (`mean <= 0` returns 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.uniform01();
        -mean * u.ln()
    }

    /// Log-normal draw parameterised by the mean and standard deviation of
    /// the *underlying* normal distribution.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Shuffle a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Pick a reference to a random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.index(items.len());
            Some(&items[i])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        let mut ca = a.fork();
        let mut cb = b.fork();
        assert_eq!(ca.next_u64(), cb.next_u64());
        // Parent and child streams differ.
        assert_ne!(a.next_u64(), ca.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            let y = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&y));
        }
        assert_eq!(r.uniform(5.0, 2.0), 5.0);
        assert_eq!(r.uniform_u64(9, 3), 9);
        assert_eq!(r.index(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(7.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(6);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean={mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(r.log_normal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = SimRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]).copied(), Some(42));
    }
}
