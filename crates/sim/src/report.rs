//! Report rendering: ASCII tables, CSV export and textual "figures".
//!
//! The `bench` crate's binaries use these to print each of the paper's
//! tables and figures in a form that can be eyeballed against the original
//! and diffed between runs.

use crate::series::Series;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Append a row of string slices.
    pub fn add_row_str(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            header_line.push_str(&format!("{:width$}  ", h, width = widths[i]));
        }
        out.push_str(header_line.trim_end());
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate().take(ncols) {
                line.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Render as CSV (headers then rows). Cells containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A textual "figure": a set of named series over a shared x axis, rendered
/// either as aligned columns (one column per series) or CSV.
#[derive(Debug, Clone, Default)]
pub struct Figure {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl Figure {
    /// Create a figure with axis labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The contained series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Collect the union of x values across all series, sorted.
    fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        xs
    }

    /// Render as an aligned text table: first column is x, one column per
    /// series.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            format!("{} ({} vs {})", self.title, self.y_label, self.x_label),
            &std::iter::once(self.x_label.as_str())
                .chain(self.series.iter().map(|s| s.label.as_str()))
                .collect::<Vec<_>>(),
        );
        for x in self.x_values() {
            let mut row = vec![format_num(x)];
            for s in &self.series {
                row.push(s.y_at(x).map(format_num).unwrap_or_default());
            }
            table.add_row(&row);
        }
        table.render()
    }

    /// Render as CSV with an x column and one column per series.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(
            "",
            &std::iter::once(self.x_label.as_str())
                .chain(self.series.iter().map(|s| s.label.as_str()))
                .collect::<Vec<_>>(),
        );
        for x in self.x_values() {
            let mut row = vec![format_num(x)];
            for s in &self.series {
                row.push(s.y_at(x).map(format_num).unwrap_or_default());
            }
            table.add_row(&row);
        }
        table.to_csv()
    }
}

/// Format a number compactly: integers without decimals, otherwise 3
/// significant decimals.
pub fn format_num(x: f64) -> String {
    if x.fract().abs() < 1e-9 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Table 1: Power", &["Board", "Idle (W)", "Spinning (W)"]);
        t.add_row_str(&["Cubieboard2", "1.43", "2.61"]);
        t.add_row_str(&["Cubietruck", "1.72", "2.86"]);
        let out = t.render();
        assert!(out.contains("== Table 1: Power =="));
        assert!(out.contains("Cubieboard2"));
        assert!(out.contains("Idle (W)"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Table 1: Power");
        // Columns align: every data line has the board name padded to width.
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn table_pads_and_truncates_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.add_row_str(&["1"]);
        t.add_row_str(&["1", "2", "3"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "1,");
        assert_eq!(lines[2], "1,2");
    }

    #[test]
    fn csv_escapes_special_chars() {
        let mut t = Table::new("t", &["desc", "n"]);
        t.add_row_str(&["hello, world", "1"]);
        t.add_row_str(&["say \"hi\"", "2"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\",1"));
        assert!(csv.contains("\"say \"\"hi\"\"\",2"));
    }

    #[test]
    fn figure_renders_series_columns() {
        let mut f = Figure::new("Figure 3", "parallel sequences", "time (s)");
        f.add_series(Series::from_points(
            "C xenstored",
            [(50.0, 300.0), (100.0, 700.0)],
        ));
        f.add_series(Series::from_points(
            "Jitsu xenstored",
            [(50.0, 50.0), (100.0, 100.0)],
        ));
        let out = f.render();
        assert!(out.contains("Figure 3"));
        assert!(out.contains("C xenstored"));
        assert!(out.contains("Jitsu xenstored"));
        assert!(out.contains("50"));
        let csv = f.to_csv();
        assert!(csv.starts_with("parallel sequences,C xenstored,Jitsu xenstored"));
        assert_eq!(f.series().len(), 2);
        assert_eq!(f.title(), "Figure 3");
    }

    #[test]
    fn figure_handles_mismatched_x() {
        let mut f = Figure::new("f", "x", "y");
        f.add_series(Series::from_points("a", [(1.0, 1.0)]));
        f.add_series(Series::from_points("b", [(2.0, 2.0)]));
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "1,1,");
        assert_eq!(lines[2], "2,,2");
    }

    #[test]
    fn format_num_behaviour() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(1.23456), "1.235");
        assert_eq!(format_num(-2.0), "-2");
    }
}
