//! Lightweight event tracing.
//!
//! Components of the simulated substrate emit trace events (domain created,
//! hotplug script ran, SYN buffered, handoff committed, …) into a [`Tracer`].
//! Integration tests assert over traces to verify causality and ordering,
//! and the examples print them to show the end-to-end flow of Figure 6.

use crate::time::SimTime;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// The component that emitted the event (e.g. "jitsud", "synjitsu").
    pub component: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<12} {}",
            self.at.to_string(),
            self.component,
            self.message
        )
    }
}

/// An append-only trace of events in virtual-time order of emission.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Tracer {
    /// Create an enabled tracer.
    pub fn new() -> Tracer {
        Tracer {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Create a disabled tracer that drops all events (for benchmarks).
    pub fn disabled() -> Tracer {
        Tracer {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event.
    pub fn emit(&mut self, at: SimTime, component: impl Into<String>, message: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                component: component.into(),
                message: message.into(),
            });
        }
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events emitted by a particular component.
    pub fn by_component<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.component == component)
    }

    /// The first event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// True if an event matching `a` occurs before one matching `b`
    /// (by position in the trace).
    pub fn happens_before(&self, a: &str, b: &str) -> bool {
        let ia = self.events.iter().position(|e| e.message.contains(a));
        let ib = self.events.iter().position(|e| e.message.contains(b));
        match (ia, ib) {
            (Some(x), Some(y)) => x < y,
            _ => false,
        }
    }

    /// Render the full trace as text, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Remove all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn emit_and_query() {
        let mut t = Tracer::new();
        t.emit(
            SimTime::from_millis(1),
            "jitsud",
            "DNS query for alice.family.name",
        );
        t.emit(SimTime::from_millis(2), "synjitsu", "buffered SYN");
        t.emit(SimTime::from_millis(300), "unikernel", "handoff committed");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t.is_enabled());
        assert_eq!(t.by_component("synjitsu").count(), 1);
        assert!(t.find("DNS query").is_some());
        assert!(t.find("nonexistent").is_none());
        assert!(t.happens_before("SYN", "handoff"));
        assert!(!t.happens_before("handoff", "SYN"));
        assert!(!t.happens_before("SYN", "missing"));
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let mut t = Tracer::disabled();
        t.emit(SimTime::ZERO, "x", "y");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn render_and_clear() {
        let mut t = Tracer::new();
        t.emit(SimTime::from_millis(5), "comp", "hello");
        let s = t.render();
        assert!(s.contains("comp"));
        assert!(s.contains("hello"));
        assert!(s.contains("5.000ms"));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at: SimTime::from_millis(42),
            component: "builder".into(),
            message: "domain built".into(),
        };
        let s = e.to_string();
        assert!(s.contains("builder"));
        assert!(s.contains("domain built"));
    }
}
