//! Data series: named `(x, y)` sequences that back the paper's figures.

/// One point of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPoint {
    /// The x coordinate (e.g. number of parallel VM sequences, payload size).
    pub x: f64,
    /// The y coordinate (e.g. seconds, milliseconds, watts).
    pub y: f64,
}

/// A named series of data points, e.g. one line of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Label shown in figure legends ("Jitsu Xenstored", "mirage", …).
    pub label: String,
    /// The points, in x order as produced by the experiment sweep.
    pub points: Vec<DataPoint>,
}

impl Series {
    /// Create an empty series with a label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Create a series from `(x, y)` tuples.
    pub fn from_points(
        label: impl Into<String>,
        pts: impl IntoIterator<Item = (f64, f64)>,
    ) -> Series {
        let mut s = Series::new(label);
        for (x, y) in pts {
            s.push(x, y);
        }
        s
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(DataPoint { x, y });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at a given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }

    /// Linear interpolation of y at an arbitrary x inside the series range.
    /// Returns `None` when the series is empty or x is outside its range.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
        if x < pts[0].x || x > pts[pts.len() - 1].x {
            return None;
        }
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            if (a.x..=b.x).contains(&x) {
                if (b.x - a.x).abs() < f64::EPSILON {
                    return Some(a.y);
                }
                let t = (x - a.x) / (b.x - a.x);
                return Some(a.y * (1.0 - t) + b.y * t);
            }
        }
        Some(pts[pts.len() - 1].y)
    }

    /// Maximum y value in the series.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }

    /// Minimum y value in the series.
    pub fn min_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.min(y))))
    }

    /// True if y never decreases as x increases (after sorting by x).
    pub fn is_monotone_nondecreasing(&self) -> bool {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
        pts.windows(2).all(|w| w[1].y >= w[0].y - 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut s = Series::new("jitsu");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.label, "jitsu");
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
    }

    #[test]
    fn from_points_builds_series() {
        let s = Series::from_points("l", [(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points[1], DataPoint { x: 1.0, y: 2.0 });
    }

    #[test]
    fn interpolation() {
        let s = Series::from_points("l", [(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(0.0), Some(0.0));
        assert_eq!(s.interpolate(10.0), Some(100.0));
        assert_eq!(s.interpolate(-1.0), None);
        assert_eq!(s.interpolate(11.0), None);
        assert_eq!(Series::new("e").interpolate(1.0), None);
    }

    #[test]
    fn interpolation_with_duplicate_x() {
        let s = Series::from_points("l", [(1.0, 5.0), (1.0, 7.0)]);
        assert_eq!(s.interpolate(1.0), Some(5.0));
    }

    #[test]
    fn min_max_and_monotone() {
        let s = Series::from_points("l", [(0.0, 3.0), (1.0, 1.0), (2.0, 5.0)]);
        assert_eq!(s.max_y(), Some(5.0));
        assert_eq!(s.min_y(), Some(1.0));
        assert!(!s.is_monotone_nondecreasing());
        let m = Series::from_points("m", [(0.0, 1.0), (1.0, 1.0), (2.0, 4.0)]);
        assert!(m.is_monotone_nondecreasing());
        assert_eq!(Series::new("e").max_y(), None);
    }
}
