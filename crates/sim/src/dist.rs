//! Latency distributions used by the calibrated cost models.
//!
//! Components of the simulated substrate (domain builder, hotplug scripts,
//! SD-card reads, network links, …) express their per-operation cost as a
//! [`Distribution`] over durations. Experiments draw from these using a
//! seeded [`SimRng`](crate::SimRng), keeping results deterministic.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over non-negative durations.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Always the same value.
    Constant(SimDuration),
    /// Uniform between two bounds (inclusive of the lower bound).
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound.
        hi: SimDuration,
    },
    /// Normal distribution, truncated at zero.
    Normal {
        /// Mean duration.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
    },
    /// Log-normal distribution parameterised directly by the *target*
    /// median and a multiplicative spread factor (sigma of the underlying
    /// normal, in natural-log units).
    LogNormal {
        /// Median duration.
        median: SimDuration,
        /// Spread (sigma of underlying normal).
        sigma: f64,
    },
    /// Exponential distribution with the given mean.
    Exponential {
        /// Mean duration.
        mean: SimDuration,
    },
    /// Empirical distribution: sample uniformly from recorded values.
    Empirical(Vec<SimDuration>),
    /// A base distribution plus a constant offset — convenient for
    /// "fixed cost + jitter" models.
    Shifted {
        /// Constant offset added to every sample.
        offset: SimDuration,
        /// The underlying distribution.
        base: Box<Distribution>,
    },
    /// A base distribution scaled by a constant factor — used for the
    /// ARM-vs-x86 CPU speed ratio.
    Scaled {
        /// Multiplicative factor applied to every sample.
        factor: f64,
        /// The underlying distribution.
        base: Box<Distribution>,
    },
}

impl Distribution {
    /// A constant distribution, as a convenience constructor.
    pub fn constant_millis(ms: u64) -> Distribution {
        Distribution::Constant(SimDuration::from_millis(ms))
    }

    /// A constant distribution from microseconds.
    pub fn constant_micros(us: u64) -> Distribution {
        Distribution::Constant(SimDuration::from_micros(us))
    }

    /// A normal distribution from fractional milliseconds.
    pub fn normal_millis(mean_ms: f64, std_ms: f64) -> Distribution {
        Distribution::Normal {
            mean: SimDuration::from_millis_f64(mean_ms),
            std_dev: SimDuration::from_millis_f64(std_ms),
        }
    }

    /// A uniform distribution from fractional milliseconds.
    pub fn uniform_millis(lo_ms: f64, hi_ms: f64) -> Distribution {
        Distribution::Uniform {
            lo: SimDuration::from_millis_f64(lo_ms),
            hi: SimDuration::from_millis_f64(hi_ms),
        }
    }

    /// Wrap this distribution with a constant offset.
    pub fn shifted(self, offset: SimDuration) -> Distribution {
        Distribution::Shifted {
            offset,
            base: Box::new(self),
        }
    }

    /// Wrap this distribution with a multiplicative factor.
    pub fn scaled(self, factor: f64) -> Distribution {
        Distribution::Scaled {
            factor,
            base: Box::new(self),
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            Distribution::Constant(d) => *d,
            Distribution::Uniform { lo, hi } => {
                let x = rng.uniform(lo.as_secs_f64(), hi.as_secs_f64());
                SimDuration::from_secs_f64(x)
            }
            Distribution::Normal { mean, std_dev } => {
                let x = rng.normal(mean.as_secs_f64(), std_dev.as_secs_f64());
                SimDuration::from_secs_f64(x.max(0.0))
            }
            Distribution::LogNormal { median, sigma } => {
                let mu = median.as_secs_f64().max(1e-12).ln();
                let x = rng.log_normal(mu, sigma.max(0.0));
                SimDuration::from_secs_f64(x)
            }
            Distribution::Exponential { mean } => {
                SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
            }
            Distribution::Empirical(values) => {
                rng.choose(values).copied().unwrap_or(SimDuration::ZERO)
            }
            Distribution::Shifted { offset, base } => *offset + base.sample(rng),
            Distribution::Scaled { factor, base } => base.sample(rng).mul_f64(*factor),
        }
    }

    /// Draw `n` samples.
    pub fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<SimDuration> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The analytic mean of the distribution where it has a closed form;
    /// empirical distributions return their sample mean.
    pub fn mean(&self) -> SimDuration {
        match self {
            Distribution::Constant(d) => *d,
            Distribution::Uniform { lo, hi } => {
                SimDuration::from_secs_f64((lo.as_secs_f64() + hi.as_secs_f64()) / 2.0)
            }
            Distribution::Normal { mean, .. } => *mean,
            Distribution::LogNormal { median, sigma } => {
                SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * sigma / 2.0).exp())
            }
            Distribution::Exponential { mean } => *mean,
            Distribution::Empirical(values) => {
                if values.is_empty() {
                    SimDuration::ZERO
                } else {
                    let total: f64 = values.iter().map(|d| d.as_secs_f64()).sum();
                    SimDuration::from_secs_f64(total / values.len() as f64)
                }
            }
            Distribution::Shifted { offset, base } => *offset + base.mean(),
            Distribution::Scaled { factor, base } => base.mean().mul_f64(*factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xdead_beef)
    }

    #[test]
    fn constant_always_same() {
        let d = Distribution::constant_millis(120);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r).as_millis(), 120);
        }
        assert_eq!(d.mean().as_millis(), 120);
    }

    #[test]
    fn uniform_within_bounds() {
        let d = Distribution::uniform_millis(10.0, 20.0);
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r).as_millis_f64();
            assert!((10.0..20.0).contains(&x), "x={x}");
        }
        assert!((d.mean().as_millis_f64() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn normal_truncated_at_zero() {
        let d = Distribution::normal_millis(1.0, 10.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r).as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn normal_sample_mean_close() {
        let d = Distribution::normal_millis(100.0, 5.0);
        let mut r = rng();
        let n = 5_000;
        let mean = d
            .sample_n(&mut r, n)
            .iter()
            .map(|x| x.as_millis_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn lognormal_median_close() {
        let d = Distribution::LogNormal {
            median: SimDuration::from_millis(50),
            sigma: 0.3,
        };
        let mut r = rng();
        let mut samples: Vec<f64> = d
            .sample_n(&mut r, 4_001)
            .iter()
            .map(|x| x.as_millis_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 50.0).abs() < 3.0, "median={median}");
        assert!(d.mean() > SimDuration::from_millis(50));
    }

    #[test]
    fn exponential_mean_close() {
        let d = Distribution::Exponential {
            mean: SimDuration::from_millis(10),
        };
        let mut r = rng();
        let n = 10_000;
        let mean = d
            .sample_n(&mut r, n)
            .iter()
            .map(|x| x.as_millis_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn empirical_samples_from_values() {
        let values = vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ];
        let d = Distribution::Empirical(values.clone());
        let mut r = rng();
        for _ in 0..100 {
            assert!(values.contains(&d.sample(&mut r)));
        }
        assert_eq!(d.mean().as_millis(), 2);
        let empty = Distribution::Empirical(vec![]);
        assert_eq!(empty.sample(&mut r), SimDuration::ZERO);
        assert_eq!(empty.mean(), SimDuration::ZERO);
    }

    #[test]
    fn shifted_adds_offset() {
        let d = Distribution::constant_millis(10).shifted(SimDuration::from_millis(5));
        let mut r = rng();
        assert_eq!(d.sample(&mut r).as_millis(), 15);
        assert_eq!(d.mean().as_millis(), 15);
    }

    #[test]
    fn scaled_multiplies() {
        // The ARM board is ~6x slower than the x86 server (paper §3.1).
        let x86 = Distribution::constant_millis(20);
        let arm = x86.clone().scaled(6.0);
        let mut r = rng();
        assert_eq!(arm.sample(&mut r).as_millis(), 120);
        assert_eq!(arm.mean().as_millis(), 120);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Distribution::normal_millis(10.0, 2.0);
        let mut r1 = SimRng::seed_from_u64(99);
        let mut r2 = SimRng::seed_from_u64(99);
        assert_eq!(d.sample_n(&mut r1, 50), d.sample_n(&mut r2, 50));
    }
}
