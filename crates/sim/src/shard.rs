//! Sharded discrete-event engine with deterministic virtual-time barriers.
//!
//! The flat [`Sim`](crate::Sim) engine funnels every event through one
//! ordered queue, so wall-clock cost scales with total event count. This
//! module partitions the world into isolated **domains** (a board, a
//! service, any unit that owns its own state), groups domains into
//! **shards**, and executes shards in a fixed order within **virtual-time
//! epochs**. Cross-domain messages are collected during an epoch and
//! delivered only at the epoch barrier, in a canonical order that does not
//! depend on how domains were grouped into shards — so an N-shard run is
//! bit-for-bit identical to a 1-shard run at any shard count.
//!
//! Three properties make the invariance hold *by construction* rather than
//! by testing alone:
//!
//! 1. **Domains are isolated Rust values.** A [`DomainCtx`] owns its state,
//!    its event queue and its own [`SimRng`] stream; an event receives
//!    `&mut DomainCtx<D>` and simply cannot reach another domain's state.
//! 2. **All cross-domain communication is barrier-delivered.** Even two
//!    domains that happen to share a shard exchange messages only at the
//!    epoch barrier, at the barrier timestamp, so co-residency is
//!    unobservable.
//! 3. **Barrier processing is shard-independent.** Outboxes drain in domain
//!    id order, hooks run in domain id order, and delivery assigns
//!    per-destination sequence numbers in that canonical order.
//!
//! Sharding here is *deterministic scheduling*, not threading: the engine
//! stays single-threaded and the D004 lint (no threads/locks in sim logic)
//! keeps applying. What sharding buys is per-domain queues (cheaper heap
//! operations than one global queue) and, because shards only interact at
//! barriers, a future parallel executor could run shards on OS threads
//! without changing a single observable bit — that executor would live
//! outside the sim-logic crates, behind the same barrier semantics.
//!
//! ```
//! use jitsu_sim::shard::{Domain, DomainCtx, DomainId, ShardedSim};
//! use jitsu_sim::{Scheduler, SimDuration, SimTime};
//!
//! struct Counter(u64);
//! impl Domain for Counter {
//!     type Msg = u64;
//!     fn on_message(ctx: &mut DomainCtx<Self>, msg: u64) {
//!         ctx.world_mut().0 += msg;
//!     }
//! }
//!
//! let mut sim = ShardedSim::new(4, SimDuration::from_millis(1));
//! let a = sim.add_domain(Counter(0), 1);
//! let b = sim.add_domain(Counter(0), 2);
//! sim.schedule_at(a, SimTime::ZERO, move |ctx| ctx.send(b, 7));
//! sim.run();
//! assert_eq!(sim.domain(b).0, 7);
//! ```

use crate::engine::{EventQueue, Scheduler};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifier of a domain within a [`ShardedSim`].
///
/// Ids are dense indices assigned by [`ShardedSim::add_domain`] in call
/// order; the id — never the shard — is the stable name of a domain, so
/// shard count can vary without renaming anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A unit of isolated simulated state that lives inside a [`ShardedSim`].
///
/// A domain owns its world, communicates with other domains exclusively via
/// typed messages ([`DomainCtx::send`]) delivered at epoch barriers, and may
/// observe each barrier through [`Domain::at_barrier`].
pub trait Domain: Sized + 'static {
    /// The message type exchanged between domains.
    type Msg: 'static;

    /// A message sent in a previous epoch arrives. Runs at the barrier
    /// timestamp, in canonical (sender id, send order) delivery order.
    fn on_message(ctx: &mut DomainCtx<Self>, msg: Self::Msg);

    /// Hook invoked at every epoch barrier, after all shards have executed
    /// the epoch and before outboxes drain. Runs for every domain in id
    /// order with the clock at the barrier timestamp; messages sent here go
    /// out in the same barrier's delivery. Default: no-op.
    fn at_barrier(_ctx: &mut DomainCtx<Self>) {}
}

/// The per-domain execution context: the domain's own clock, event queue,
/// RNG stream, outbox and world.
///
/// `DomainCtx` implements [`Scheduler`], so system logic written against
/// that trait runs identically under the flat [`Sim`](crate::Sim) engine
/// and inside a sharded domain.
pub struct DomainCtx<D: Domain> {
    id: DomainId,
    domain_count: u32,
    now: SimTime,
    executed: u64,
    queue: EventQueue<DomainCtx<D>>,
    rng: SimRng,
    outbox: Vec<(DomainId, D::Msg)>,
    state: D,
}

impl<D: Domain> DomainCtx<D> {
    fn new(id: DomainId, state: D, seed: u64) -> Self {
        DomainCtx {
            id,
            domain_count: 0,
            now: SimTime::ZERO,
            executed: 0,
            queue: EventQueue::new(),
            rng: SimRng::seed_from_u64(seed),
            outbox: Vec::new(),
            state,
        }
    }

    /// This domain's id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Total number of domains in the simulation (fixed once running).
    pub fn domain_count(&self) -> u32 {
        self.domain_count
    }

    /// This domain's private deterministic RNG stream. Draws consumed here
    /// never perturb any other domain's stream, which is what keeps final
    /// states bit-identical across shard counts.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Number of events this domain has executed.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Queue a message to another domain (or to self). It is delivered at
    /// the next epoch barrier via [`Domain::on_message`], at the barrier
    /// timestamp — never earlier, regardless of shard placement.
    pub fn send(&mut self, to: DomainId, msg: D::Msg) {
        self.outbox.push((to, msg));
    }
}

impl<D: Domain> Scheduler for DomainCtx<D> {
    type World = D;

    fn now(&self) -> SimTime {
        self.now
    }

    fn world(&self) -> &D {
        &self.state
    }

    fn world_mut(&mut self) -> &mut D {
        &mut self.state
    }

    fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Self) + 'static,
    {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(f));
    }
}

/// The sharded discrete-event engine.
///
/// Domains are assigned to shards by `id % num_shards`, shards execute in
/// ascending shard order within each epoch, and domains within a shard in
/// ascending id order. Because domains are isolated and messages are
/// barrier-delivered in canonical order (see the module docs), none of that
/// grouping is observable: the run is a pure function of the domains, their
/// seeds, the injected events and the epoch length — not of `num_shards`.
pub struct ShardedSim<D: Domain> {
    domains: Vec<DomainCtx<D>>,
    num_shards: u32,
    epoch: SimDuration,
    barriers: u64,
    executed: u64,
    /// Hard cap on executed events, to catch accidental livelock (matching
    /// the flat engine's tripwire).
    event_limit: u64,
}

impl<D: Domain> ShardedSim<D> {
    /// Create an engine with `num_shards` shards (clamped to at least 1)
    /// and the given epoch length (clamped to at least 1 ns).
    pub fn new(num_shards: u32, epoch: SimDuration) -> Self {
        ShardedSim {
            domains: Vec::new(),
            num_shards: num_shards.max(1),
            epoch: epoch.max(SimDuration::from_nanos(1)),
            barriers: 0,
            executed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Set a hard limit on the total number of events executed.
    /// [`ShardedSim::run`] treats exceeding it as livelock and panics.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Add a domain with its own deterministic RNG stream seeded from
    /// `seed`, returning its id. The seed — not the shard — parameterises
    /// the stream, so results do not depend on shard count.
    pub fn add_domain(&mut self, state: D, seed: u64) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(DomainCtx::new(id, state, seed));
        id
    }

    /// Number of domains.
    pub fn num_domains(&self) -> u32 {
        self.domains.len() as u32
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// The shard a domain executes in.
    pub fn shard_of(&self, id: DomainId) -> u32 {
        id.0 % self.num_shards
    }

    /// Epoch length.
    pub fn epoch(&self) -> SimDuration {
        self.epoch
    }

    /// Number of epoch barriers processed so far. Empty stretches of
    /// virtual time are skipped, so this counts *productive* epochs and is
    /// a deterministic, shard-count-invariant virtual metric.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Total events executed across all domains.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Total events still pending across all domains.
    pub fn events_pending(&self) -> usize {
        self.domains.iter().map(|d| d.queue.len()).sum()
    }

    /// Shared access to a domain's world.
    pub fn domain(&self, id: DomainId) -> &D {
        &self.domains[id.index()].state
    }

    /// Mutable access to a domain's world (between runs; events go through
    /// their own [`DomainCtx`]).
    pub fn domain_mut(&mut self, id: DomainId) -> &mut D {
        &mut self.domains[id.index()].state
    }

    /// Consume the engine, returning every domain's world in id order.
    pub fn into_worlds(self) -> Vec<D> {
        self.domains.into_iter().map(|d| d.state).collect()
    }

    /// Schedule an event on a domain at absolute virtual time `at`
    /// (clamped to the domain's clock). This is the injection point for
    /// external workload drivers.
    pub fn schedule_at<F>(&mut self, dom: DomainId, at: SimTime, f: F)
    where
        F: FnOnce(&mut DomainCtx<D>) + 'static,
    {
        let ctx = &mut self.domains[dom.index()];
        let at = at.max(ctx.now);
        ctx.queue.push(at, Box::new(f));
    }

    /// Earliest pending event time across all domains, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.domains
            .iter()
            .filter_map(|d| d.queue.peek_time())
            .min()
    }

    /// Run until every domain's queue is empty and no messages are in
    /// flight.
    ///
    /// Each iteration jumps to the epoch containing the earliest pending
    /// event (empty epochs cost nothing), executes shard 0, shard 1, … over
    /// the epoch window `[start, end)`, synchronises every domain's clock
    /// to the barrier time `end`, runs [`Domain::at_barrier`] hooks in id
    /// order, then drains outboxes in id order, enqueueing each message on
    /// its destination at time `end`.
    pub fn run(&mut self) {
        let count = self.domains.len() as u32;
        for d in &mut self.domains {
            d.domain_count = count;
        }
        let epoch_ns = u128::from(self.epoch.as_nanos().max(1));
        while let Some(first) = self.next_event_time() {
            // The epoch window containing the earliest pending event. The
            // end bound is exclusive; an event exactly at `end` belongs to
            // the next epoch. Near the top of the u64 range the bound
            // saturates and the final window becomes inclusive, so events
            // at SimTime::MAX still drain instead of spinning forever.
            let k = u128::from(first.as_nanos()) / epoch_ns;
            let end_ns = (k + 1) * epoch_ns;
            let (end, inclusive) = if end_ns > u128::from(u64::MAX) {
                (SimTime::MAX, true)
            } else {
                (SimTime::from_nanos(end_ns as u64), false)
            };

            // Execute shards in fixed ascending order, domains within a
            // shard in ascending id order.
            for shard in 0..self.num_shards {
                for idx in 0..self.domains.len() {
                    if idx as u32 % self.num_shards != shard {
                        continue;
                    }
                    let dom = &mut self.domains[idx];
                    loop {
                        let next = if inclusive {
                            dom.queue.pop()
                        } else {
                            dom.queue.pop_before(end)
                        };
                        let Some((at, run)) = next else { break };
                        dom.now = dom.now.max(at);
                        dom.executed += 1;
                        self.executed += 1;
                        if self.executed > self.event_limit {
                            // jitsu-lint: allow(P001, "livelock tripwire: exceeding the event limit means the experiment is unsound and must abort")
                            panic!(
                                "sharded simulation exceeded event limit of {} events (possible livelock)",
                                self.event_limit
                            );
                        }
                        run(dom);
                    }
                }
            }

            // Barrier: synchronise clocks, run hooks, deliver messages —
            // all in domain id order, independent of sharding.
            for dom in &mut self.domains {
                dom.now = end;
            }
            for idx in 0..self.domains.len() {
                D::at_barrier(&mut self.domains[idx]);
            }
            for src in 0..self.domains.len() {
                let outbox = std::mem::take(&mut self.domains[src].outbox);
                for (to, msg) in outbox {
                    let dest = &mut self.domains[to.index()];
                    dest.queue
                        .push(end, Box::new(move |ctx| D::on_message(ctx, msg)));
                }
            }
            self.barriers += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A domain that logs (time-in-micros, tag) pairs so tests can assert
    /// on exact per-domain event order.
    struct Logger {
        log: Vec<(u64, u64)>,
        draws: Vec<u64>,
    }

    impl Logger {
        fn new() -> Self {
            Logger {
                log: Vec::new(),
                draws: Vec::new(),
            }
        }
    }

    impl Domain for Logger {
        type Msg = u64;
        fn on_message(ctx: &mut DomainCtx<Self>, msg: u64) {
            let t = ctx.now().as_micros();
            let draw = ctx.rng().uniform_u64(0, 1_000_000);
            let w = ctx.world_mut();
            w.log.push((t, msg));
            w.draws.push(draw);
        }
    }

    fn two_domain_sim(shards: u32) -> (ShardedSim<Logger>, DomainId, DomainId) {
        let mut sim = ShardedSim::new(shards, SimDuration::from_millis(1));
        let a = sim.add_domain(Logger::new(), 11);
        let b = sim.add_domain(Logger::new(), 22);
        (sim, a, b)
    }

    #[test]
    fn local_events_fire_in_time_then_scheduling_order() {
        let (mut sim, a, _) = two_domain_sim(1);
        sim.schedule_at(a, SimTime::from_micros(30), |c| {
            let t = c.now().as_micros();
            c.world_mut().log.push((t, 3));
        });
        sim.schedule_at(a, SimTime::from_micros(10), |c| {
            let t = c.now().as_micros();
            c.world_mut().log.push((t, 1));
        });
        sim.schedule_at(a, SimTime::from_micros(10), |c| {
            let t = c.now().as_micros();
            c.world_mut().log.push((t, 2));
        });
        sim.run();
        assert_eq!(sim.domain(a).log, vec![(10, 1), (10, 2), (30, 3)]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn messages_arrive_at_the_epoch_barrier_not_earlier() {
        let (mut sim, a, b) = two_domain_sim(2);
        // Sent at t=100µs inside the [0, 1ms) epoch: must arrive at 1 ms.
        sim.schedule_at(a, SimTime::from_micros(100), move |c| c.send(b, 42));
        sim.run();
        assert_eq!(sim.domain(b).log, vec![(1_000, 42)]);
        assert_eq!(sim.barriers(), 2, "send epoch + delivery epoch");
    }

    #[test]
    fn empty_epochs_are_skipped_not_iterated() {
        let (mut sim, a, _) = two_domain_sim(1);
        // Two events 10 s apart with a 1 ms epoch: 10 000 empty epochs in
        // between must not each cost a barrier.
        sim.schedule_at(a, SimTime::from_secs(0), |c| {
            let t = c.now().as_micros();
            c.world_mut().log.push((t, 0));
        });
        sim.schedule_at(a, SimTime::from_secs(10), |c| {
            let t = c.now().as_micros();
            c.world_mut().log.push((t, 1));
        });
        sim.run();
        assert_eq!(sim.barriers(), 2);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_domain_now() {
        let (mut sim, a, _) = two_domain_sim(1);
        sim.schedule_at(a, SimTime::from_micros(50), |c| {
            c.schedule_at(SimTime::ZERO, |c| {
                let t = c.now().as_micros();
                c.world_mut().log.push((t, 9));
            });
        });
        sim.run();
        assert_eq!(sim.domain(a).log, vec![(50, 9)]);
    }

    #[test]
    fn self_send_is_also_barrier_delivered() {
        let (mut sim, a, _) = two_domain_sim(1);
        sim.schedule_at(a, SimTime::from_micros(1), move |c| c.send(a, 5));
        sim.run();
        assert_eq!(sim.domain(a).log, vec![(1_000, 5)]);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_cross_domain_livelock() {
        // Two domains bounce a message forever; the tripwire must fire.
        struct Pong;
        impl Domain for Pong {
            type Msg = ();
            fn on_message(ctx: &mut DomainCtx<Self>, (): ()) {
                let to = DomainId((ctx.id().0 + 1) % ctx.domain_count());
                ctx.send(to, ());
            }
        }
        let mut sim = ShardedSim::new(2, SimDuration::from_millis(1)).with_event_limit(100);
        let a = sim.add_domain(Pong, 1);
        let b = sim.add_domain(Pong, 2);
        sim.schedule_at(a, SimTime::ZERO, move |c| c.send(b, ()));
        sim.run();
    }

    /// The load-bearing property, in miniature: identical final state, event
    /// logs and RNG draws at every shard count.
    #[test]
    fn shard_count_is_unobservable() {
        type Observed = (Vec<(u64, u64)>, Vec<u64>, u64);
        fn run(shards: u32) -> Vec<Observed> {
            let mut sim = ShardedSim::new(shards, SimDuration::from_millis(1));
            let ids: Vec<DomainId> = (0..5).map(|i| sim.add_domain(Logger::new(), i)).collect();
            for (i, &id) in ids.iter().enumerate() {
                let next = ids[(i + 1) % ids.len()];
                let at = SimTime::from_micros(17 * (i as u64 + 1));
                sim.schedule_at(id, at, move |c| {
                    let tag = c.rng().uniform_u64(0, 100);
                    c.send(next, tag);
                });
            }
            sim.run();
            let barriers = sim.barriers();
            sim.into_worlds()
                .into_iter()
                .map(|w| (w.log, w.draws, barriers))
                .collect()
        }
        let one = run(1);
        for shards in [2, 3, 4, 8, 16] {
            assert_eq!(run(shards), one, "shards={shards} diverged from 1");
        }
    }

    #[test]
    fn at_barrier_hook_runs_in_id_order_and_can_send() {
        struct Chain {
            fired: bool,
            got: Vec<u64>,
        }
        impl Domain for Chain {
            type Msg = u64;
            fn on_message(ctx: &mut DomainCtx<Self>, msg: u64) {
                ctx.world_mut().got.push(msg);
            }
            fn at_barrier(ctx: &mut DomainCtx<Self>) {
                if ctx.world().fired {
                    return;
                }
                ctx.world_mut().fired = true;
                let me = u64::from(ctx.id().0);
                let to = DomainId((ctx.id().0 + 1) % ctx.domain_count());
                ctx.send(to, me);
            }
        }
        let mut sim = ShardedSim::new(3, SimDuration::from_millis(1));
        for i in 0..3u64 {
            sim.add_domain(
                Chain {
                    fired: false,
                    got: Vec::new(),
                },
                i,
            );
        }
        // One seed event so the engine processes an epoch at all.
        sim.schedule_at(DomainId(0), SimTime::ZERO, |_| {});
        sim.run();
        // Barrier 1: every domain fires once; messages land next epoch.
        assert_eq!(sim.domain(DomainId(1)).got, vec![0]);
        assert_eq!(sim.domain(DomainId(2)).got, vec![1]);
        assert_eq!(sim.domain(DomainId(0)).got, vec![2]);
    }
}
