//! Measurement collection: histograms, summary statistics and CDFs.
//!
//! The benchmark harness records per-request latencies (HTTP response
//! times, domain build times, ICMP RTTs, …) into these structures and then
//! renders them as the paper's figures via [`crate::report`].

use crate::time::SimDuration;

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl SummaryStats {
    /// Compute summary statistics from raw values. Returns `None` for an
    /// empty input.
    pub fn from_values(values: &[f64]) -> Option<SummaryStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        Some(SummaryStats {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            std_dev: var.sqrt(),
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }

    /// Compute summary statistics over durations, expressed in milliseconds.
    pub fn from_durations_ms(durations: &[SimDuration]) -> Option<SummaryStats> {
        let values: Vec<f64> = durations.iter().map(|d| d.as_millis_f64()).collect();
        SummaryStats::from_values(&values)
    }

    /// The statistics as `(field name, value)` pairs, in a fixed order — the
    /// serialization hook used by the `bench_snapshot` harness to emit each
    /// summary as machine-readable metrics without the crate knowing any
    /// output format.
    pub fn fields(&self) -> [(&'static str, f64); 8] {
        [
            ("count", self.count as f64),
            ("min", self.min),
            ("max", self.max),
            ("mean", self.mean),
            ("std_dev", self.std_dev),
            ("median", self.median),
            ("p95", self.p95),
            ("p99", self.p99),
        ]
    }
}

/// Percentile of an already-sorted slice using linear interpolation.
///
/// `pct` is clamped to `[0, 100]`: out-of-range requests return the min or
/// max element rather than indexing out of range. `pct = 0` is exactly the
/// minimum and `pct = 100` exactly the maximum (no interpolation residue).
/// A NaN `pct` has no defensible answer and returns NaN.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() || pct.is_nan() {
        return f64::NAN;
    }
    if pct <= 0.0 {
        return sorted[0];
    }
    if pct >= 100.0 {
        return sorted[sorted.len() - 1];
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of an unsorted slice. `pct` outside `[0, 100]` is clamped
/// (see [`SummaryStats`]-style semantics: 0 → min, 100 → exact max).
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, pct)
}

/// A fixed-bucket histogram over `f64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Create a histogram covering the closed range `[lo, hi]` with
    /// `buckets` equal-width buckets (a value exactly equal to `hi` lands in
    /// the top bucket, not in overflow). Panics if `buckets == 0` or
    /// `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            nan: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Record a value.
    ///
    /// NaN values are counted in [`Histogram::nan_count`] (and in the total
    /// [`Histogram::count`]) but excluded from the running sum, so one bad
    /// sample cannot poison [`Histogram::mean`] for the rest of the run.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        self.sum += value;
        if value < self.lo {
            self.underflow += 1;
        } else if value > self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // `value == hi` computes idx == buckets.len(); clamp it into the
            // top bucket so the range is closed at both ends.
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Record a duration in milliseconds.
    pub fn record_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Total number of recorded values (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded non-NaN values (0.0 when none have been
    /// recorded).
    pub fn mean(&self) -> f64 {
        let numeric = self.count - self.nan;
        if numeric == 0 {
            0.0
        } else {
            self.sum / numeric as f64
        }
    }

    /// Number of values below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of values above the histogram range (`hi` itself is in range).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of NaN samples recorded (excluded from buckets and the mean).
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Iterate over `(bucket_lower_bound, bucket_upper_bound, count)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets.iter().enumerate().map(move |(i, &c)| {
            let lo = self.lo + width * i as f64;
            (lo, lo + width, c)
        })
    }
}

/// An empirical cumulative distribution function built from samples.
///
/// Used for Figure 9a/9b, which plot HTTP response time CDFs.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Create an empty CDF.
    pub fn new() -> Cdf {
        Cdf::default()
    }

    /// Build a CDF from raw values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Cdf {
        let mut cdf = Cdf::new();
        for v in values {
            cdf.record(v);
        }
        cdf
    }

    /// Build a CDF from durations in milliseconds.
    pub fn from_durations_ms(durations: &[SimDuration]) -> Cdf {
        Cdf::from_values(durations.iter().map(|d| d.as_millis_f64()))
    }

    /// Record a sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// The fraction of samples ≤ `value`, in `[0, 1]`.
    pub fn fraction_below(&mut self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&x| x <= value);
        n as f64 / self.samples.len() as f64
    }

    /// The value at the given percentile (0–100).
    pub fn percentile(&mut self, pct: f64) -> f64 {
        self.ensure_sorted();
        percentile_sorted(&self.samples, pct)
    }

    /// Return `(value, cumulative_fraction)` points suitable for plotting,
    /// evaluated at every sample.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Evaluate the CDF on a fixed grid of `steps+1` points between `lo` and
    /// `hi` — the form used to print the paper's CDF figures as rows.
    pub fn grid(&mut self, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
        let steps = steps.max(1);
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.fraction_below(x))
            })
            .collect()
    }
}

/// An accumulator for per-request latencies that reports the tail
/// percentiles the boot-storm experiment cares about (p50/p95/p99
/// time-to-first-byte).
///
/// Unlike [`Histogram`] it keeps the raw samples, so percentiles are exact
/// regardless of range, and unlike [`Cdf`] it speaks [`SimDuration`]
/// natively.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ms.push(d.as_millis_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples_ms.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// The given percentile (0–100) in milliseconds, or 0.0 when empty
    /// (convenient for rendering report rows for all-SERVFAIL cells).
    pub fn percentile_ms(&self, pct: f64) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        percentile(&self.samples_ms, pct)
    }

    /// Several percentiles (0–100) in one pass: the samples are cloned and
    /// sorted once, not once per percentile. Returns 0.0 entries when no
    /// samples have been recorded.
    pub fn percentiles_ms(&self, pcts: &[f64]) -> Vec<f64> {
        if self.samples_ms.is_empty() {
            return vec![0.0; pcts.len()];
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        pcts.iter()
            .map(|&p| percentile_sorted(&sorted, p))
            .collect()
    }

    /// Median latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(50.0)
    }

    /// 95th-percentile latency in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(95.0)
    }

    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(99.0)
    }

    /// Full summary statistics over the recorded samples, in milliseconds.
    pub fn summary(&self) -> Option<SummaryStats> {
        SummaryStats::from_values(&self.samples_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats_basics() {
        let s = SummaryStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
        assert!(SummaryStats::from_values(&[]).is_none());
    }

    #[test]
    fn summary_from_durations() {
        let ds = [
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            SimDuration::from_millis(30),
        ];
        let s = SummaryStats::from_durations_ms(&ds).unwrap();
        assert!((s.mean - 20.0).abs() < 1e-9);
    }

    #[test]
    fn summary_fields_serialize_in_a_fixed_order() {
        let s = SummaryStats::from_values(&[1.0, 2.0, 3.0]).unwrap();
        let fields = s.fields();
        let names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["count", "min", "max", "mean", "std_dev", "median", "p95", "p99"]
        );
        assert_eq!(fields[0].1, 3.0);
        assert_eq!(fields[1].1, 1.0);
        assert_eq!(fields[2].1, 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&v, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0) - 25.0).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_requests() {
        // Regression: out-of-range percentiles must clamp to the extremes
        // rather than interpolating off the end of the slice.
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, -5.0), 10.0);
        assert_eq!(percentile(&v, 250.0), 40.0);
        assert!(percentile(&v, f64::NAN).is_nan());
    }

    #[test]
    fn percentile_100_is_exactly_the_max() {
        // pct = 100 must return the max element itself, bit for bit — no
        // interpolation residue from `rank = (n-1) * (100/100)`.
        let v: Vec<f64> = (0..997).map(|i| (i as f64) * 0.1 + 0.3).collect();
        let max = *v.last().unwrap();
        assert_eq!(percentile(&v, 100.0), max);
        assert_eq!(percentile(&v, 0.0), v[0]);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for v in [5.0, 15.0, 15.5, 99.9, -1.0, 100.0, 150.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1); // 150.0 only: 100.0 is in range
        let buckets: Vec<(f64, f64, u64)> = h.iter_buckets().collect();
        assert_eq!(buckets.len(), 10);
        assert_eq!(buckets[0].2, 1); // 5.0
        assert_eq!(buckets[1].2, 2); // 15.0, 15.5
        assert_eq!(buckets[9].2, 2); // 99.9 and the boundary value 100.0
    }

    #[test]
    fn histogram_hi_boundary_lands_in_the_top_bucket() {
        // Regression: a value exactly equal to `hi` used to be counted as
        // overflow, silently dropping the closed upper edge of the range.
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(10.0);
        assert_eq!(h.overflow(), 0);
        let buckets: Vec<(f64, f64, u64)> = h.iter_buckets().collect();
        assert_eq!(buckets[4].2, 1);
        // The open side just past `hi` still overflows.
        h.record(10.0 + f64::EPSILON * 16.0);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_nan_does_not_corrupt_the_mean() {
        // Regression: NaN used to be added to the running sum, turning
        // `mean()` into NaN for every later sample.
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record(10.0);
        h.record(f64::NAN);
        h.record(30.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.nan_count(), 1);
        assert!((h.mean() - 20.0).abs() < 1e-12, "mean = {}", h.mean());
        assert_eq!(h.underflow() + h.overflow(), 0);
        // A histogram fed only NaN still reports a finite (zero) mean.
        let mut only_nan = Histogram::new(0.0, 1.0, 1);
        only_nan.record(f64::NAN);
        assert_eq!(only_nan.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_mean_and_record_ms() {
        let mut h = Histogram::new(0.0, 1000.0, 10);
        h.record_ms(SimDuration::from_millis(100));
        h.record_ms(SimDuration::from_millis(300));
        assert!((h.mean() - 200.0).abs() < 1e-9);
        let empty = Histogram::new(0.0, 1.0, 1);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn cdf_fraction_and_percentile() {
        let mut cdf = Cdf::from_values((1..=100).map(|i| i as f64));
        assert_eq!(cdf.len(), 100);
        assert!(!cdf.is_empty());
        assert!((cdf.fraction_below(50.0) - 0.5).abs() < 1e-12);
        assert!((cdf.fraction_below(100.0) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert!((cdf.percentile(50.0) - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut cdf = Cdf::from_values([5.0, 1.0, 3.0, 2.0, 4.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_grid_covers_range() {
        let mut cdf = Cdf::from_durations_ms(&[
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            SimDuration::from_millis(300),
        ]);
        let grid = cdf.grid(0.0, 400.0, 4);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], (0.0, 0.0));
        assert!((grid[4].1 - 1.0).abs() < 1e-12);
        // Empty CDF yields all-zero fractions.
        let mut empty = Cdf::new();
        assert!(empty.grid(0.0, 1.0, 2).iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn latency_recorder_percentiles() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile_ms(99.0), 0.0);
        for ms in 1..=100u64 {
            rec.record(SimDuration::from_millis(ms));
        }
        assert_eq!(rec.count(), 100);
        assert!((rec.p50_ms() - 50.5).abs() < 1e-9);
        assert!(rec.p95_ms() > rec.p50_ms());
        assert!(rec.p99_ms() > rec.p95_ms());
        assert!(rec.p99_ms() <= 100.0);
        let summary = rec.summary().unwrap();
        assert_eq!(summary.count, 100);
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 100.0);
        // The batched form agrees with the one-at-a-time form.
        assert_eq!(
            rec.percentiles_ms(&[50.0, 95.0, 99.0]),
            vec![rec.p50_ms(), rec.p95_ms(), rec.p99_ms()]
        );
        assert_eq!(
            LatencyRecorder::new().percentiles_ms(&[50.0, 99.0]),
            vec![0.0, 0.0]
        );
    }
}
