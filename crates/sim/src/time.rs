//! Virtual time: nanosecond-resolution instants and durations.
//!
//! All simulated experiments in this repository run against a virtual clock
//! rather than the wall clock, so results are deterministic and independent
//! of the host machine. `SimTime` is an absolute instant since the start of
//! the simulation; `SimDuration` is a span between two instants. Both are
//! thin wrappers over a `u64` nanosecond count with saturating arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, measured in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The instant expressed in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Construct from fractional microseconds. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative floating-point factor (saturating).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(4);
        assert_eq!((t + d).as_millis(), 14);
        assert_eq!((t - d).as_millis(), 6);
        assert_eq!((t - SimTime::from_millis(3)).as_millis(), 7);
        assert_eq!((d + d).as_millis(), 8);
        assert_eq!((d - SimDuration::from_millis(1)).as_millis(), 3);
        assert_eq!((d * 3).as_millis(), 12);
        assert_eq!((d / 2).as_millis(), 2);
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime::from_millis(1);
        assert_eq!((t - SimDuration::from_secs(10)).as_nanos(), 0);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        let d = SimDuration::from_millis(1);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_micros(), 1_500);
        assert!((d.as_millis_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert!((SimDuration::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(0.5).as_millis(), 50);
        assert_eq!(d.mul_f64(6.0).as_millis(), 600);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn min_max_and_is_zero() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_millis(350)), "350.000ms");
    }

    #[test]
    fn duration_since_and_sum() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(8);
        assert_eq!(b.duration_since(a).as_millis(), 3);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        let total: SimDuration = vec![
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.as_millis(), 6);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
