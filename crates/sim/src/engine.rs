//! Discrete-event simulation engine.
//!
//! The engine owns a user-supplied *world* (the mutable state of the
//! simulated system) and a priority queue of scheduled events. An event is a
//! boxed closure that receives `&mut Sim<W>` so it can mutate the world,
//! advance no time itself, and schedule further events. Events fire in
//! timestamp order; ties break in scheduling order so runs are fully
//! deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A boxed event callback, generic over the context handed to events.
///
/// For the flat engine the context is [`Sim<W>`]; for the sharded engine it
/// is a per-domain [`crate::shard::DomainCtx`]. Sharing the alias (and the
/// queue below) keeps the two engines' (time, seq) ordering semantics
/// identical by construction.
pub(crate) type EventFn<Ctx> = Box<dyn FnOnce(&mut Ctx)>;

struct Scheduled<Ctx> {
    at: SimTime,
    seq: u64,
    run: EventFn<Ctx>,
}

impl<Ctx> PartialEq for Scheduled<Ctx> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<Ctx> Eq for Scheduled<Ctx> {}
impl<Ctx> PartialOrd for Scheduled<Ctx> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Ctx> Ord for Scheduled<Ctx> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The ordered event queue shared by [`Sim`] and the sharded engine.
///
/// Events pop in `(timestamp, scheduling sequence)` order: time first, ties
/// broken by the order in which they were scheduled. The queue owns the
/// sequence counter so every consumer gets the same deterministic tie-break.
pub(crate) struct EventQueue<Ctx> {
    heap: BinaryHeap<Scheduled<Ctx>>,
    seq: u64,
}

impl<Ctx> EventQueue<Ctx> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Timestamp of the earliest pending event, if any.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub(crate) fn push(&mut self, at: SimTime, run: EventFn<Ctx>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, run });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventFn<Ctx>)> {
        self.heap.pop().map(|e| (e.at, e.run))
    }

    /// Pop the earliest event only if it fires strictly before `bound`.
    pub(crate) fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, EventFn<Ctx>)> {
        match self.peek_time() {
            Some(at) if at < bound => self.pop(),
            _ => None,
        }
    }
}

/// The scheduling surface shared by [`Sim`] and the sharded engine's
/// per-domain contexts.
///
/// System logic written against this trait (for example the
/// `jitsu::concurrent` lifecycle handlers) runs unchanged on the flat
/// single-queue engine and on any domain of a [`crate::shard::ShardedSim`]:
/// the flat `Sim` is literally the 1-shard special case. Implementors must
/// preserve the engine's determinism contract — events fire in `(time,
/// scheduling order)` and scheduling in the past clamps to "now".
pub trait Scheduler: Sized {
    /// The world type mutated by events.
    type World;

    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Shared access to the world.
    fn world(&self) -> &Self::World;

    /// Mutable access to the world.
    fn world_mut(&mut self) -> &mut Self::World;

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past is
    /// clamped to "now".
    fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Self) + 'static;

    /// Schedule `f` to run `delay` after the current time.
    fn schedule_in<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut Self) + 'static,
    {
        let at = self.now() + delay;
        self.schedule_at(at, f);
    }

    /// Schedule `f` to run immediately (still after the current event
    /// finishes, preserving run-to-completion semantics).
    fn schedule_now<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Self) + 'static,
    {
        let at = self.now();
        self.schedule_at(at, f);
    }
}

/// The discrete-event simulator.
///
/// `W` is the world type: all simulated state lives there and is reachable
/// from event callbacks through [`Sim::world_mut`].
pub struct Sim<W> {
    now: SimTime,
    executed: u64,
    queue: EventQueue<Sim<W>>,
    world: W,
    /// Hard cap on executed events, to catch accidental livelock in tests.
    event_limit: u64,
}

impl<W> Sim<W> {
    /// Create a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            executed: 0,
            queue: EventQueue::new(),
            world,
            event_limit: u64::MAX,
        }
    }

    /// Set a hard limit on the number of events executed.
    ///
    /// [`Sim::run`] treats exceeding the limit as livelock and panics (the
    /// tripwire tests rely on). The windowed drivers [`Sim::run_until`] and
    /// [`Sim::run_for`] instead stop *before* the event that would pass the
    /// limit, leaving the clock at the last executed event rather than
    /// advancing it to the deadline — the window was not fully simulated,
    /// and pretending time passed would corrupt any metric read afterwards.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past is
    /// clamped to "now" (the event runs before time advances further).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(f));
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, f);
    }

    /// Schedule `f` to run immediately (still after the current event
    /// finishes, preserving run-to-completion semantics).
    pub fn schedule_now<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now, f);
    }

    /// Execute a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            None => false,
            Some((at, run)) => {
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.executed += 1;
                if self.executed > self.event_limit {
                    // jitsu-lint: allow(P001, "livelock tripwire: exceeding the event limit means the experiment is unsound and must abort")
                    panic!(
                        "simulation exceeded event limit of {} events (possible livelock)",
                        self.event_limit
                    );
                }
                run(self);
                true
            }
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the event queue is empty or virtual time would pass
    /// `deadline`.
    ///
    /// The deadline is **inclusive**: an event scheduled exactly at
    /// `deadline` executes before this call returns (ties at the deadline
    /// fire in scheduling order, like any other tie). Only events strictly
    /// after the deadline remain queued. Returns the number of events
    /// executed by this call.
    ///
    /// If an event limit is set ([`Sim::with_event_limit`]) and reached, the
    /// run stops mid-window: remaining in-window events stay queued and the
    /// clock stays at the last executed event instead of jumping to the
    /// deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.executed;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            if self.executed >= self.event_limit {
                // Stopped mid-window: do not advance the clock past the
                // last executed event — the rest of the window never ran.
                return self.executed - before;
            }
            self.step();
        }
        // Advance the clock to the deadline even if nothing fired at it, so
        // callers can interleave run_until with manual inspection.
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - before
    }

    /// Run for `duration` of virtual time from the current clock, then stop
    /// (a convenience over [`Sim::run_until`] for fixed-length experiment
    /// windows such as a boot-storm measurement interval). Returns the
    /// number of events executed.
    pub fn run_for(&mut self, duration: SimDuration) -> u64 {
        let deadline = self.now + duration;
        self.run_until(deadline)
    }

    /// Execute up to `max_events` pending events regardless of their
    /// timestamps and return how many actually ran (fewer only when the
    /// queue drained first). This is the batch-run entry point the
    /// `bench_snapshot` harness uses to measure raw dispatch throughput
    /// (events/sec): the caller drives a fixed, exactly-known number of
    /// events without reasoning about virtual deadlines.
    pub fn run_steps(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// The timestamp of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

impl<W> Scheduler for Sim<W> {
    type World = W;

    fn now(&self) -> SimTime {
        Sim::now(self)
    }

    fn world(&self) -> &W {
        Sim::world(self)
    }

    fn world_mut(&mut self) -> &mut W {
        Sim::world_mut(self)
    }

    fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Self) + 'static,
    {
        Sim::schedule_at(self, at, f);
    }
}

impl<W: Default> Default for Sim<W> {
    fn default() -> Self {
        Sim::new(W::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_millis(30), |s| {
            let t = s.now().as_millis();
            s.world_mut().push(t)
        });
        sim.schedule_in(SimDuration::from_millis(10), |s| {
            let t = s.now().as_millis();
            s.world_mut().push(t)
        });
        sim.schedule_in(SimDuration::from_millis(20), |s| {
            let t = s.now().as_millis();
            s.world_mut().push(t)
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10, 20, 30]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10u32 {
            sim.schedule_at(SimTime::from_millis(5), move |s| s.world_mut().push(i));
        }
        sim.run();
        assert_eq!(sim.world(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        sim.schedule_now(|s| {
            s.schedule_in(SimDuration::from_millis(1), |s| {
                *s.world_mut() += 1;
                s.schedule_in(SimDuration::from_millis(1), |s| *s.world_mut() += 1);
            });
        });
        sim.run();
        assert_eq!(*sim.world(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_millis(10), |s| {
            // Attempt to schedule before "now"; it must fire at now, not panic.
            s.schedule_at(SimTime::from_millis(1), |s| {
                let t = s.now().as_millis();
                s.world_mut().push(t);
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for ms in [5u64, 15, 25, 35] {
            sim.schedule_at(SimTime::from_millis(ms), move |s| s.world_mut().push(ms));
        }
        let n = sim.run_until(SimTime::from_millis(20));
        assert_eq!(n, 2);
        assert_eq!(sim.world(), &vec![5, 15]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.world(), &vec![5, 15, 25, 35]);
    }

    #[test]
    fn run_for_advances_a_fixed_window() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for ms in [5u64, 15, 25] {
            sim.schedule_at(SimTime::from_millis(ms), move |s| s.world_mut().push(ms));
        }
        assert_eq!(sim.run_for(SimDuration::from_millis(10)), 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.run_for(SimDuration::from_millis(10)), 1);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.world(), &vec![5, 15]);
    }

    #[test]
    fn run_until_deadline_is_inclusive() {
        // Pin the tie semantics: events exactly at the deadline execute,
        // events one tick later do not.
        let mut sim = Sim::new(Vec::<u64>::new());
        for ns in [19_999_999u64, 20_000_000, 20_000_000, 20_000_001] {
            sim.schedule_at(SimTime::from_nanos(ns), move |s| s.world_mut().push(ns));
        }
        let n = sim.run_until(SimTime::from_millis(20));
        assert_eq!(n, 3, "both deadline-tied events must fire");
        assert_eq!(sim.world(), &vec![19_999_999, 20_000_000, 20_000_000]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn event_limit_stops_run_for_mid_window_without_advancing_the_clock() {
        // Regression: with an event limit in force, run_for must stop at the
        // limit and leave now() at the last executed event — not panic, and
        // not pretend the rest of the window was simulated.
        let mut sim = Sim::new(Vec::<u64>::new()).with_event_limit(2);
        for ms in [5u64, 15, 25, 35] {
            sim.schedule_at(SimTime::from_millis(ms), move |s| s.world_mut().push(ms));
        }
        let n = sim.run_for(SimDuration::from_millis(40));
        assert_eq!(n, 2);
        assert_eq!(sim.world(), &vec![5, 15]);
        assert_eq!(sim.now(), SimTime::from_millis(15), "clock stays put");
        assert_eq!(sim.events_pending(), 2);
        // A further windowed run makes no progress and moves no clock.
        assert_eq!(sim.run_for(SimDuration::from_millis(40)), 0);
        assert_eq!(sim.now(), SimTime::from_millis(15));
    }

    #[test]
    fn run_steps_executes_an_exact_batch() {
        let mut sim = Sim::new(0u64);
        for i in 0..10u64 {
            sim.schedule_at(SimTime::from_millis(i), |s| *s.world_mut() += 1);
        }
        assert_eq!(sim.run_steps(4), 4);
        assert_eq!(*sim.world(), 4);
        assert_eq!(sim.events_executed(), 4);
        // Draining past the end reports only what actually ran.
        assert_eq!(sim.run_steps(100), 6);
        assert_eq!(*sim.world(), 10);
        assert_eq!(sim.run_steps(5), 0);
    }

    #[test]
    fn next_event_time_and_step() {
        let mut sim = Sim::new(());
        assert!(sim.next_event_time().is_none());
        assert!(!sim.step());
        sim.schedule_in(SimDuration::from_micros(3), |_| {});
        assert_eq!(sim.next_event_time(), Some(SimTime::from_micros(3)));
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        let mut sim = Sim::new(()).with_event_limit(100);
        fn again(s: &mut Sim<()>) {
            s.schedule_in(SimDuration::from_nanos(1), again);
        }
        sim.schedule_now(again);
        sim.run();
    }

    #[test]
    fn scheduler_generic_logic_drives_the_flat_engine() {
        // System logic written against the Scheduler trait (the way
        // jitsu::concurrent is) must run unchanged on Sim — the flat
        // engine is the 1-shard special case of the sharded engine.
        fn chain<S: Scheduler<World = Vec<u64>>>(s: &mut S, n: u64) {
            let t = s.now().as_millis();
            s.world_mut().push(t);
            if n > 0 {
                s.schedule_in(SimDuration::from_millis(2), move |s| chain(s, n - 1));
            }
        }
        let mut sim = Sim::new(Vec::new());
        sim.schedule_now(|s| chain(s, 3));
        sim.run();
        assert_eq!(sim.world(), &vec![0, 2, 4, 6]);
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Sim::new(String::new());
        sim.schedule_now(|s| s.world_mut().push_str("done"));
        sim.run();
        assert_eq!(sim.into_world(), "done");
    }
}
