//! Discrete-event simulation engine.
//!
//! The engine owns a user-supplied *world* (the mutable state of the
//! simulated system) and a priority queue of scheduled events. An event is a
//! boxed closure that receives `&mut Sim<W>` so it can mutate the world,
//! advance no time itself, and schedule further events. Events fire in
//! timestamp order; ties break in scheduling order so runs are fully
//! deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A boxed event callback.
type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulator.
///
/// `W` is the world type: all simulated state lives there and is reachable
/// from event callbacks through [`Sim::world_mut`].
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled<W>>,
    world: W,
    /// Hard cap on executed events, to catch accidental livelock in tests.
    event_limit: u64,
}

impl<W> Sim<W> {
    /// Create a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            world,
            event_limit: u64::MAX,
        }
    }

    /// Set a hard limit on the number of events executed by [`Sim::run`].
    /// Exceeding the limit panics; use in tests to catch livelock.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past is
    /// clamped to "now" (the event runs before time advances further).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, f);
    }

    /// Schedule `f` to run immediately (still after the current event
    /// finishes, preserving run-to-completion semantics).
    pub fn schedule_now<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now, f);
    }

    /// Execute a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            None => false,
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event queue went backwards");
                self.now = ev.at;
                self.executed += 1;
                if self.executed > self.event_limit {
                    // jitsu-lint: allow(P001, "livelock tripwire: exceeding the event limit means the experiment is unsound and must abort")
                    panic!(
                        "simulation exceeded event limit of {} events (possible livelock)",
                        self.event_limit
                    );
                }
                (ev.run)(self);
                true
            }
        }
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the event queue is empty or virtual time would pass
    /// `deadline`. Events scheduled exactly at the deadline still run.
    /// Returns the number of events executed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.executed;
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        // Advance the clock to the deadline even if nothing fired at it, so
        // callers can interleave run_until with manual inspection.
        if self.now < deadline {
            self.now = deadline;
        }
        self.executed - before
    }

    /// Run for `duration` of virtual time from the current clock, then stop
    /// (a convenience over [`Sim::run_until`] for fixed-length experiment
    /// windows such as a boot-storm measurement interval). Returns the
    /// number of events executed.
    pub fn run_for(&mut self, duration: SimDuration) -> u64 {
        let deadline = self.now + duration;
        self.run_until(deadline)
    }

    /// The timestamp of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.at)
    }
}

impl<W: Default> Default for Sim<W> {
    fn default() -> Self {
        Sim::new(W::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_millis(30), |s| {
            let t = s.now().as_millis();
            s.world_mut().push(t)
        });
        sim.schedule_in(SimDuration::from_millis(10), |s| {
            let t = s.now().as_millis();
            s.world_mut().push(t)
        });
        sim.schedule_in(SimDuration::from_millis(20), |s| {
            let t = s.now().as_millis();
            s.world_mut().push(t)
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10, 20, 30]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10u32 {
            sim.schedule_at(SimTime::from_millis(5), move |s| s.world_mut().push(i));
        }
        sim.run();
        assert_eq!(sim.world(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u64);
        sim.schedule_now(|s| {
            s.schedule_in(SimDuration::from_millis(1), |s| {
                *s.world_mut() += 1;
                s.schedule_in(SimDuration::from_millis(1), |s| *s.world_mut() += 1);
            });
        });
        sim.run();
        assert_eq!(*sim.world(), 2);
        assert_eq!(sim.now(), SimTime::from_millis(2));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_in(SimDuration::from_millis(10), |s| {
            // Attempt to schedule before "now"; it must fire at now, not panic.
            s.schedule_at(SimTime::from_millis(1), |s| {
                let t = s.now().as_millis();
                s.world_mut().push(t);
            });
        });
        sim.run();
        assert_eq!(sim.world(), &vec![10]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for ms in [5u64, 15, 25, 35] {
            sim.schedule_at(SimTime::from_millis(ms), move |s| s.world_mut().push(ms));
        }
        let n = sim.run_until(SimTime::from_millis(20));
        assert_eq!(n, 2);
        assert_eq!(sim.world(), &vec![5, 15]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.world(), &vec![5, 15, 25, 35]);
    }

    #[test]
    fn run_for_advances_a_fixed_window() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for ms in [5u64, 15, 25] {
            sim.schedule_at(SimTime::from_millis(ms), move |s| s.world_mut().push(ms));
        }
        assert_eq!(sim.run_for(SimDuration::from_millis(10)), 1);
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.run_for(SimDuration::from_millis(10)), 1);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        assert_eq!(sim.world(), &vec![5, 15]);
    }

    #[test]
    fn next_event_time_and_step() {
        let mut sim = Sim::new(());
        assert!(sim.next_event_time().is_none());
        assert!(!sim.step());
        sim.schedule_in(SimDuration::from_micros(3), |_| {});
        assert_eq!(sim.next_event_time(), Some(SimTime::from_micros(3)));
        assert!(sim.step());
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        let mut sim = Sim::new(()).with_event_limit(100);
        fn again(s: &mut Sim<()>) {
            s.schedule_in(SimDuration::from_nanos(1), again);
        }
        sim.schedule_now(again);
        sim.run();
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Sim::new(String::new());
        sim.schedule_now(|s| s.world_mut().push_str("done"));
        sim.run();
        assert_eq!(sim.into_world(), "done");
    }
}
