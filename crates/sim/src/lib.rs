//! # jitsu-sim — deterministic simulation substrate
//!
//! This crate provides the discrete-event simulation substrate used by the
//! Jitsu reproduction: a virtual clock, an event engine, a deterministic
//! random number generator with a small library of latency distributions,
//! metric collection (histograms, CDFs, summary statistics) and report
//! rendering (ASCII tables and CSV) used by the benchmark harness to
//! regenerate the paper's figures and tables.
//!
//! The paper's evaluation runs on physical Cubieboard2/Cubietruck ARM boards
//! and an x86 server. This repository replaces that hardware with calibrated
//! cost models executed on top of this engine, so that every experiment is
//! deterministic, laptop-scale and reproducible while preserving the
//! *relative* behaviour the paper reports (who wins, by what factor, where
//! crossovers fall).
//!
//! ## Quick tour
//!
//! ```
//! use jitsu_sim::{Sim, SimDuration};
//!
//! // A world with a counter; events bump it at different times.
//! let mut sim = Sim::new(0u32);
//! sim.schedule_in(SimDuration::from_millis(5), |sim| {
//!     *sim.world_mut() += 1;
//! });
//! sim.schedule_in(SimDuration::from_millis(1), |sim| {
//!     *sim.world_mut() += 10;
//!     let t = sim.now() + SimDuration::from_millis(2);
//!     sim.schedule_at(t, |sim| *sim.world_mut() += 100);
//! });
//! sim.run();
//! assert_eq!(*sim.world(), 111);
//! assert_eq!(sim.now().as_millis(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod metrics;
pub mod report;
pub mod rng;
pub mod series;
pub mod shard;
pub mod time;
pub mod trace;

pub use dist::Distribution;
pub use engine::{Scheduler, Sim};
pub use metrics::{Cdf, Histogram, LatencyRecorder, SummaryStats};
pub use report::{Figure, Table};
pub use rng::SimRng;
pub use series::{DataPoint, Series};
pub use shard::{Domain, DomainCtx, DomainId, ShardedSim};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
