//! C001 — RFC 1982 serial arithmetic on TCP sequence numbers.
//!
//! Sequence numbers wrap: `snd_una <= ack` is wrong the moment an ISN sits
//! near `u32::MAX`, which is exactly the regime the handoff proptests pin.
//! Any ordering comparison (`<`, `<=`, `>`, `>=`) or non-`wrapping_*`
//! arithmetic (`+`, `-`, `*`, and their `=` forms) on a sequence-classed
//! value in core-crate non-test code must go through `netstack::tcp`'s
//! `seq_lt`/`seq_le`/`seq_gt`/`seq_ge` helpers or `wrapping_*` methods. The
//! helpers themselves (any `fn seq_*`) are exempt — someone has to hold
//! the raw bits.

use crate::ast::{self, Expr, ExprKind};
use crate::diagnostics::Diagnostic;
use crate::rules::{AstContext, FileContext};
use crate::sema::Class;

pub fn check(ctx: &FileContext<'_>, ast_cx: &AstContext<'_>) -> Vec<Diagnostic> {
    let in_scope = ctx.crate_name.is_some_and(|c| ctx.config.is_core(c));
    if !in_scope || ctx.in_tests_dir {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &ast_cx.ast.functions {
        // The RFC 1982 helpers are the one sanctioned home for raw ops.
        if f.name.starts_with("seq_") {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut v = SeqVisitor {
            ctx,
            ast_cx,
            out: &mut out,
        };
        ast::visit_block(body, &mut v);
    }
    out
}

struct SeqVisitor<'a, 'b> {
    ctx: &'a FileContext<'a>,
    ast_cx: &'a AstContext<'a>,
    out: &'b mut Vec<Diagnostic>,
}

impl SeqVisitor<'_, '_> {
    fn is_seq(&self, e: &Expr) -> bool {
        *self.ast_cx.classes.class(e) == Class::Seq
    }

    fn fire(&mut self, e: &Expr, what: &str, instead: &str) {
        let t = self.ctx.tok(e.ti);
        self.out.push(Diagnostic::error(
            self.ctx.file,
            t.line,
            t.col,
            "C001",
            format!(
                "{what} on a TCP sequence-space value wraps incorrectly near \
                 u32::MAX; use {instead} (RFC 1982)"
            ),
        ));
    }
}

impl ast::Visit for SeqVisitor<'_, '_> {
    fn expr(&mut self, e: &Expr) {
        if self.ctx.is_test(e.ti) {
            return;
        }
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                if !(self.is_seq(lhs) || self.is_seq(rhs)) {
                    return;
                }
                if op.is_ordering() {
                    let helper = match op {
                        ast::BinOp::Lt => "netstack::tcp::seq_lt",
                        ast::BinOp::Le => "netstack::tcp::seq_le",
                        ast::BinOp::Gt => "netstack::tcp::seq_gt",
                        _ => "netstack::tcp::seq_ge",
                    };
                    self.fire(e, &format!("raw `{}` comparison", op.text()), helper);
                } else if op.is_wrap_arith() {
                    self.fire(
                        e,
                        &format!("non-wrapping `{}` arithmetic", op.text()),
                        &format!("`wrapping_{}`", wrap_name(*op)),
                    );
                }
            }
            ExprKind::Assign {
                op: Some(op), lhs, ..
            } if op.is_wrap_arith() && self.is_seq(lhs) => {
                self.fire(
                    e,
                    &format!("non-wrapping `{}=` arithmetic", op.text()),
                    &format!("`wrapping_{}`", wrap_name(*op)),
                );
            }
            _ => {}
        }
    }
}

fn wrap_name(op: ast::BinOp) -> &'static str {
    match op {
        ast::BinOp::Add => "add",
        ast::BinOp::Sub => "sub",
        _ => "mul",
    }
}
