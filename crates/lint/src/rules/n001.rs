//! N001 — unchecked narrowing `as` casts in wire-format crates.
//!
//! `len as u16` silently truncates the moment a payload outgrows the
//! field — precisely the failure mode wire encoders in `netstack`,
//! `xenstore` and `conduit` must never have. A cast is *narrowing* when
//! the source class resolves to a strictly wider integer than the target
//! (sequence-space values count as 32-bit); widening casts, same-width
//! sign changes and unresolvable operands stay silent.
//!
//! The `--fix` scaffold rewrites single-line sites to
//! `Ty::try_from(expr).expect("…TODO…")` with a P001 waiver scaffold, so
//! the truncation becomes a loud invariant instead of a quiet one.

use crate::ast::{self, Expr, ExprKind};
use crate::diagnostics::Diagnostic;
use crate::fix::{Edit, Fix};
use crate::rules::{AstContext, FileContext};
use crate::sema;

pub fn check(ctx: &FileContext<'_>, ast_cx: &AstContext<'_>) -> Vec<Diagnostic> {
    let in_scope = ctx
        .crate_name
        .is_some_and(|c| ctx.config.is_cast_checked(c));
    if !in_scope || ctx.in_tests_dir {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &ast_cx.ast.functions {
        let Some(body) = &f.body else { continue };
        let mut v = CastVisitor {
            ctx,
            ast_cx,
            out: &mut out,
        };
        ast::visit_block(body, &mut v);
    }
    out
}

/// Integer types `try_from` can target mechanically.
const FIXABLE_TARGETS: &[&str] = &[
    "u8", "i8", "u16", "i16", "u32", "i32", "u64", "i64", "usize", "isize",
];

struct CastVisitor<'a, 'b> {
    ctx: &'a FileContext<'a>,
    ast_cx: &'a AstContext<'a>,
    out: &'b mut Vec<Diagnostic>,
}

impl ast::Visit for CastVisitor<'_, '_> {
    fn expr(&mut self, e: &Expr) {
        if self.ctx.is_test(e.ti) {
            return;
        }
        let ExprKind::Cast {
            base,
            ty,
            ty_end_ti,
        } = &e.kind
        else {
            return;
        };
        let Some(src_w) = self.ast_cx.classes.class(base).int_width() else {
            return;
        };
        let Some(dst_w) = sema::class_of_ty(ty, None, self.ast_cx.index).int_width() else {
            return;
        };
        if src_w <= dst_w {
            return;
        }
        let as_tok = self.ctx.tok(e.ti);
        let mut d = Diagnostic::error(
            self.ctx.file,
            as_tok.line,
            as_tok.col,
            "N001",
            format!(
                "narrowing `as {ty}` of a {src_w}-bit value can truncate \
                 silently; use `{ty}::try_from(…)` or waive with the bound \
                 that makes it fit"
            ),
        );
        let base_start = self.ctx.tok(base.start_ti);
        let base_end = self.ctx.tok(base.end_ti);
        let ty_end = self.ctx.tok(*ty_end_ti);
        let single_line = base_start.line == ty_end.line;
        if single_line && FIXABLE_TARGETS.contains(&ty.as_str()) {
            let after_base = base_end.col + base_end.text.chars().count() as u32;
            let after_ty = ty_end.col + ty_end.text.chars().count() as u32;
            d = d.with_fix(Fix {
                summary: format!("rewrite `as {ty}` to `{ty}::try_from(…).expect(…)`"),
                edits: vec![
                    Edit::insert_at(base_start.line, base_start.col, format!("{ty}::try_from(")),
                    Edit::replace(
                        base_end.line,
                        after_base,
                        ty_end.line,
                        after_ty,
                        ").expect(\"jitsu-lint(N001): TODO state the bound that makes this fit\")",
                    ),
                    Edit::insert_at(
                        ty_end.line,
                        u32::MAX,
                        " // jitsu-lint: allow(P001, \"N001 autofix: TODO state the bound\")",
                    ),
                ],
            });
        }
        self.out.push(d);
    }
}
