//! D003 — ambient randomness.
//!
//! `thread_rng()`, `SeedableRng::from_entropy()`, and `rand::random()` pull
//! entropy from the OS, so two runs with the same experiment seed diverge.
//! Every RNG in the workspace must be constructed from a seed recorded in
//! the experiment configuration.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::FileContext;

const AMBIENT_FNS: &[&str] = &["thread_rng", "from_entropy"];

pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = ctx.len();
    for ci in 0..n {
        let t = ctx.tok(ci);
        if t.kind != TokenKind::Ident {
            continue;
        }
        if AMBIENT_FNS.contains(&t.text.as_str()) {
            out.push(Diagnostic::error(
                ctx.file,
                t.line,
                t.col,
                "D003",
                format!(
                    "ambient randomness `{}` is forbidden; seed RNGs from the \
                     experiment config",
                    t.text
                ),
            ));
            continue;
        }
        // `rand::random` — the one ambient entry point whose final segment
        // is too generic to match alone.
        if t.text == "rand"
            && ci + 3 < n
            && ctx.tok(ci + 1).is_punct(':')
            && ctx.tok(ci + 2).is_punct(':')
            && ctx.tok(ci + 3).is_ident("random")
        {
            let r = ctx.tok(ci + 3);
            out.push(Diagnostic::error(
                ctx.file,
                r.line,
                r.col,
                "D003",
                "ambient randomness `rand::random` is forbidden; seed RNGs from \
                 the experiment config",
            ));
        }
    }
    out
}
