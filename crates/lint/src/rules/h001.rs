//! H001 — crate-root hygiene.
//!
//! Every workspace crate root must carry `#![forbid(unsafe_code)]`: the
//! whole simulation's claim to memory safety and determinism rests on the
//! compiler checking every line, and `forbid` (unlike `deny`) cannot be
//! overridden further down the tree. The analyzer fails if any root drops
//! the attribute.

use crate::diagnostics::Diagnostic;
use crate::rules::FileContext;

pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    if !ctx.is_crate_root {
        return Vec::new();
    }
    // Look for the exact token run `# ! [ forbid ( unsafe_code ) ]`.
    let want: &[&str] = &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let n = ctx.len();
    let found = (0..n.saturating_sub(want.len() - 1)).any(|start| {
        want.iter()
            .enumerate()
            .all(|(k, w)| ctx.tok(start + k).text == *w)
    });
    if found {
        Vec::new()
    } else {
        vec![Diagnostic::error(
            ctx.file,
            1,
            1,
            "H001",
            "crate root must carry `#![forbid(unsafe_code)]`",
        )]
    }
}
