//! The rule suite and the per-file context rules run against.

pub mod a001;
pub mod c001;
pub mod d001;
pub mod d002;
pub mod d003;
pub mod d004;
pub mod h001;
pub mod n001;
pub mod p001;
pub mod r001;

use crate::ast;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::Token;
use crate::sema;

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path, `/`-separated (also the diagnostic label).
    pub file: &'a str,
    /// Directory name of the owning crate under `crates/`, if any.
    pub crate_name: Option<&'a str>,
    /// Is this file a workspace crate root (`src/lib.rs`)?
    pub is_crate_root: bool,
    /// Is this file under a `tests/` or `benches/` directory?
    pub in_tests_dir: bool,
    /// The full token stream, comments included.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: &'a [usize],
    /// Parallel to `tokens`: true when the token sits inside a
    /// `#[cfg(test)]` or `#[test]` item.
    pub test_span: &'a [bool],
    pub config: &'a Config,
}

impl FileContext<'_> {
    /// The `ci`-th *code* token (comments skipped).
    pub fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Is the `ci`-th code token inside test-only code?
    pub fn is_test(&self, ci: usize) -> bool {
        self.test_span[self.code[ci]]
    }

    /// Number of code tokens.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// The AST + dataflow view of the same file, for the shape-sensitive rules.
pub struct AstContext<'a> {
    /// The parsed file.
    pub ast: &'a ast::File,
    /// Per-expression type classes (indexed by `Expr::id`).
    pub classes: &'a sema::Classified,
    /// Workspace (or own-file) symbol knowledge.
    pub index: &'a sema::SymbolIndex,
}

/// Run every rule over a file.
pub fn all(ctx: &FileContext<'_>, ast_cx: &AstContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(d001::check(ctx));
    out.extend(d002::check(ctx));
    out.extend(d003::check(ctx));
    out.extend(d004::check(ctx));
    out.extend(p001::check(ctx));
    out.extend(h001::check(ctx));
    out.extend(c001::check(ctx, ast_cx));
    out.extend(a001::check(ctx, ast_cx));
    out.extend(r001::check(ctx, ast_cx));
    out.extend(n001::check(ctx, ast_cx));
    out
}
