//! D001 — unordered iteration over hash-based collections.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState` and on
//! insertion history, so any result that flows through it is not a pure
//! function of the experiment seed. The rule tracks, per file, every
//! binding whose declared type or initializer names `HashMap`/`HashSet`
//! (fields, `let` bindings, parameters) and flags iteration over those
//! bindings: the iterator-method family and `for … in` loops. Test code is
//! exempt — assertions that don't depend on order are fine there.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::FileContext;
use std::collections::BTreeSet;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    if ctx.in_tests_dir {
        return Vec::new();
    }
    let bindings = hash_bindings(ctx);
    if bindings.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    let n = ctx.len();

    // `binding.iter()` and friends — the receiver ident directly before the
    // dot is what we match against the binding set.
    for ci in 1..n.saturating_sub(2) {
        let m = ctx.tok(ci + 1);
        if ctx.tok(ci).is_punct('.')
            && m.kind == TokenKind::Ident
            && ITER_METHODS.contains(&m.text.as_str())
            && ctx.tok(ci + 2).is_punct('(')
            && ctx.tok(ci - 1).kind == TokenKind::Ident
            && bindings.contains(&ctx.tok(ci - 1).text)
            && !ctx.is_test(ci + 1)
        {
            let recv = &ctx.tok(ci - 1).text;
            out.push(Diagnostic::error(
                ctx.file,
                m.line,
                m.col,
                "D001",
                format!(
                    "`{recv}.{}()` iterates a hash-ordered collection; use a \
                     BTreeMap/BTreeSet or sort before iterating",
                    m.text
                ),
            ));
        }
    }

    // `for pat in expr { … }` where expr mentions a tracked binding that is
    // not immediately followed by `.` (method receivers are caught above).
    let mut ci = 0;
    while ci < n {
        if !ctx.tok(ci).is_ident("for") {
            ci += 1;
            continue;
        }
        // Find the `in` keyword at bracket depth 0 (patterns may contain
        // tuples, slices, even struct patterns with braces).
        let mut j = ci + 1;
        let mut depth = 0i32;
        let mut found_in = None;
        while j < n {
            let t = ctx.tok(j);
            if t.kind == TokenKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                    Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                    Some(b';') if depth == 0 => break, // not a for-loop after all
                    _ => {}
                }
            } else if depth == 0 && t.is_ident("in") {
                found_in = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_ix) = found_in else {
            ci += 1;
            continue;
        };
        // The iterated expression runs to the body's `{` at depth 0 (struct
        // literals cannot appear bare in a for-expression).
        let mut k = in_ix + 1;
        depth = 0;
        while k < n {
            let t = ctx.tok(k);
            if t.kind == TokenKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'{') if depth == 0 => break,
                    Some(b'(') | Some(b'[') => depth += 1,
                    Some(b')') | Some(b']') => depth -= 1,
                    _ => {}
                }
            }
            if t.kind == TokenKind::Ident
                && bindings.contains(&t.text)
                && !(k + 1 < n && ctx.tok(k + 1).is_punct('.'))
                && !ctx.is_test(k)
            {
                out.push(Diagnostic::error(
                    ctx.file,
                    t.line,
                    t.col,
                    "D001",
                    format!(
                        "`for … in` over hash-ordered `{}`; use a BTreeMap/BTreeSet \
                         or sort before iterating",
                        t.text
                    ),
                ));
            }
            k += 1;
        }
        ci = k.max(ci + 1);
    }

    out.sort_by_key(|d| (d.line, d.col));
    out.dedup_by_key(|d| (d.line, d.col));
    out
}

/// Identifiers declared in this file with a hash-based collection type:
/// `name: HashMap<…>` (fields, params, typed lets) and
/// `let name = HashMap::new()`-style initializers.
fn hash_bindings(ctx: &FileContext<'_>) -> BTreeSet<String> {
    let mut bindings = BTreeSet::new();
    let n = ctx.len();
    for ci in 0..n {
        let t = ctx.tok(ci);
        if t.kind != TokenKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over a `seg::seg::` path prefix.
        let mut k = ci;
        while k >= 3
            && ctx.tok(k - 1).is_punct(':')
            && ctx.tok(k - 2).is_punct(':')
            && ctx.tok(k - 3).kind == TokenKind::Ident
        {
            k -= 3;
        }
        // Skip reference sigils and lifetimes between the `:` and the type.
        let mut p = k;
        while p > 0
            && (ctx.tok(p - 1).is_punct('&')
                || ctx.tok(p - 1).is_ident("mut")
                || ctx.tok(p - 1).kind == TokenKind::Lifetime)
        {
            p -= 1;
        }
        // `name: HashMap<…>` — a single colon (not `::`) preceded by an ident.
        if p >= 2
            && ctx.tok(p - 1).is_punct(':')
            && !(p >= 3 && ctx.tok(p - 2).is_punct(':'))
            && ctx.tok(p - 2).kind == TokenKind::Ident
        {
            bindings.insert(ctx.tok(p - 2).text.clone());
            continue;
        }
        // `let [mut] name = HashMap::…` initializers.
        if p >= 3
            && ctx.tok(p - 1).is_punct('=')
            && ctx.tok(p - 2).kind == TokenKind::Ident
            && (ctx.tok(p - 3).is_ident("let") || ctx.tok(p - 3).is_ident("mut"))
        {
            bindings.insert(ctx.tok(p - 2).text.clone());
        }
    }
    bindings
}
