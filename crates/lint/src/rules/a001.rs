//! A001 — frame-buffer copies in the zero-copy hot path, under a ratchet.
//!
//! Roadmap item 2's zero-copy frame path has landed: every
//! `.clone()`/`.to_vec()` of payload bytes or whole frames — and every
//! `.to_vec()` that materialises a `FrameBuf` view back into an owned
//! buffer — in frame-path (`netstack`/`conduit`/`unikernel`/`jitsu`)
//! non-test code is *counted*, and the committed per-file counts in
//! `crates/lint/budget.toml` are a ratchet: CI fails if a file's count
//! grows (a new copy snuck in) or if the recorded budget exceeds reality
//! (stale slack — ratchet it down). The budget is now empty and must stay
//! that way: any counted copy is a regression of the zero-copy milestone.
//! (`FrameBuf::clone()` is uncounted — it is an O(1) refcount bump, not a
//! byte copy.)

use crate::ast::{self, Expr, ExprKind};
use crate::diagnostics::Diagnostic;
use crate::rules::{AstContext, FileContext};
use crate::sema::Class;

pub fn check(ctx: &FileContext<'_>, ast_cx: &AstContext<'_>) -> Vec<Diagnostic> {
    let in_scope = ctx.crate_name.is_some_and(|c| ctx.config.is_frame_path(c));
    if !in_scope || ctx.in_tests_dir {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &ast_cx.ast.functions {
        let Some(body) = &f.body else { continue };
        let mut v = CopyVisitor {
            ctx,
            ast_cx,
            out: &mut out,
        };
        ast::visit_block(body, &mut v);
    }
    out
}

struct CopyVisitor<'a, 'b> {
    ctx: &'a FileContext<'a>,
    ast_cx: &'a AstContext<'a>,
    out: &'b mut Vec<Diagnostic>,
}

impl ast::Visit for CopyVisitor<'_, '_> {
    fn expr(&mut self, e: &Expr) {
        if self.ctx.is_test(e.ti) {
            return;
        }
        let ExprKind::MethodCall { base, name, args } = &e.kind else {
            return;
        };
        if !args.is_empty() {
            return;
        }
        let base_class = self.ast_cx.classes.class(base);
        let copied = match name.as_str() {
            // `.to_vec()` on payload bytes — or on a shared `FrameBuf`
            // view — materialises a fresh buffer.
            "to_vec" => match base_class {
                Class::ByteBuf => true,
                Class::Struct(s) => s == "FrameBuf",
                _ => false,
            },
            // `.clone()` of payload bytes or of a whole frame struct.
            "clone" => match base_class {
                Class::ByteBuf => true,
                Class::Struct(s) => crate::sema::FRAME_TYPES.contains(&s.as_str()),
                _ => false,
            },
            _ => false,
        };
        if !copied {
            return;
        }
        let t = self.ctx.tok(e.ti);
        let what = match base_class {
            Class::Struct(s) => format!("whole-frame `{s}` copy"),
            _ => "payload byte-buffer copy".to_string(),
        };
        self.out.push(Diagnostic::error(
            self.ctx.file,
            t.line,
            t.col,
            "A001",
            format!(
                "{what} (`.{name}()`) in the frame hot path — counted against \
                 the zero-copy ratchet in crates/lint/budget.toml"
            ),
        ));
    }
}
