//! D004 — real OS concurrency inside sim-logic crates.
//!
//! The discrete-event engine owns every interleaving: logic that runs under
//! the virtual clock must never spawn OS threads or synchronise through
//! `Mutex`/`RwLock`, because the host scheduler would then influence event
//! order. Applies only to the sim-logic crates named in the config; the
//! harness/tooling crates may use real concurrency.
//!
//! The *sharded* engine (`jitsu_sim::shard`) does not relax this rule.
//! Sharding is deterministic scheduling, not threading: shards are executed
//! sequentially in fixed order inside each virtual-time epoch, domains are
//! isolated values, and cross-shard messages are delivered only at epoch
//! barriers in canonical order — which is exactly why an N-shard run is
//! bit-identical to a 1-shard run. Introducing a real lock or thread into
//! that loop would hand event ordering back to the host scheduler and
//! destroy the invariance, so D004 stays enforced over `crates/sim` and
//! every other sim-logic crate unchanged.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::FileContext;

const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let in_scope = ctx.crate_name.is_some_and(|c| ctx.config.is_sim_logic(c));
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = ctx.len();
    for ci in 0..n {
        let t = ctx.tok(ci);
        if t.kind != TokenKind::Ident {
            continue;
        }
        if LOCK_TYPES.contains(&t.text.as_str()) {
            out.push(Diagnostic::error(
                ctx.file,
                t.line,
                t.col,
                "D004",
                format!(
                    "real lock `{}` is forbidden in sim-logic crates; the sim \
                     engine owns all interleavings",
                    t.text
                ),
            ));
            continue;
        }
        if t.text == "thread"
            && ci + 3 < n
            && ctx.tok(ci + 1).is_punct(':')
            && ctx.tok(ci + 2).is_punct(':')
            && ctx.tok(ci + 3).is_ident("spawn")
        {
            let s = ctx.tok(ci + 3);
            out.push(Diagnostic::error(
                ctx.file,
                s.line,
                s.col,
                "D004",
                "`thread::spawn` is forbidden in sim-logic crates; schedule events \
                 on the sim engine instead",
            ));
        }
    }
    out
}
