//! P001 — panic policy for core crates.
//!
//! A panic in a sim-logic crate tears down the whole experiment mid-storm.
//! Non-test code in core crates must either handle its errors or carry a
//! waiver documenting the invariant that makes the `unwrap()`/`expect()`/
//! `panic!` unreachable — the waivers double as an audit trail of every
//! assumed invariant in the workspace.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::FileContext;

const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let in_scope = ctx.crate_name.is_some_and(|c| ctx.config.is_core(c));
    if !in_scope || ctx.in_tests_dir {
        return Vec::new();
    }
    let mut out = Vec::new();
    let n = ctx.len();
    for ci in 0..n {
        let t = ctx.tok(ci);
        if t.kind != TokenKind::Ident || ctx.is_test(ci) {
            continue;
        }
        // `.unwrap(` / `.expect(` — require the dot so `fn unwrap()` defs
        // and idents that merely contain the word don't fire.
        if PANICKY_METHODS.contains(&t.text.as_str())
            && ci > 0
            && ctx.tok(ci - 1).is_punct('.')
            && ci + 1 < n
            && ctx.tok(ci + 1).is_punct('(')
        {
            out.push(Diagnostic::error(
                ctx.file,
                t.line,
                t.col,
                "P001",
                format!(
                    "`.{}()` can panic in core-crate code; handle the error or \
                     waive with the invariant that makes it unreachable",
                    t.text
                ),
            ));
            continue;
        }
        if t.text == "panic" && ci + 1 < n && ctx.tok(ci + 1).is_punct('!') {
            out.push(Diagnostic::error(
                ctx.file,
                t.line,
                t.col,
                "P001",
                "`panic!` in core-crate code; return an error or waive with the \
                 invariant that makes it unreachable",
            ));
        }
    }
    out
}
