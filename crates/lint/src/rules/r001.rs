//! R001 — discarded `Result` values in core crates.
//!
//! `let _ = commit(...)` swallows the error path that the whole two-phase
//! handoff protocol exists to surface. In core-crate non-test code a
//! `Result` from a workspace function must be handled, propagated, or
//! waived with the reason the error is genuinely ignorable. The rule only
//! fires when *every* known signature of the callee returns `Result`
//! (see [`crate::sema::SymbolIndex::is_result_fn`]), plus the `write!`/
//! `writeln!` macros whose `fmt::Result` is the classic discard.
//!
//! The `--fix` scaffold rewrites `let _ = f();` to
//! `f().expect("…TODO…"); // jitsu-lint: allow(P001, "…TODO…")` — it keeps
//! the program behaviour-identical on the happy path while forcing the
//! author to either document the invariant or handle the error for real.

use crate::ast::{self, Expr, ExprKind, Stmt};
use crate::diagnostics::Diagnostic;
use crate::fix::{Edit, Fix};
use crate::rules::{AstContext, FileContext};

const EXPECT_SCAFFOLD: &str = ".expect(\"jitsu-lint(R001): TODO state why this cannot fail\")";
const WAIVER_SCAFFOLD: &str =
    " // jitsu-lint: allow(P001, \"R001 autofix: TODO state the invariant\")";

pub fn check(ctx: &FileContext<'_>, ast_cx: &AstContext<'_>) -> Vec<Diagnostic> {
    let in_scope = ctx.crate_name.is_some_and(|c| ctx.config.is_core(c));
    if !in_scope || ctx.in_tests_dir {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &ast_cx.ast.functions {
        let Some(body) = &f.body else { continue };
        let mut v = DiscardVisitor {
            ctx,
            ast_cx,
            out: &mut out,
        };
        ast::visit_block(body, &mut v);
    }
    out
}

/// If this expression's value is a `Result` from a known source, name the
/// source for the diagnostic.
fn result_source(e: &Expr, ast_cx: &AstContext<'_>) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { name, .. } if ast_cx.index.is_result_fn(name) => {
            Some(format!(".{name}()"))
        }
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) if segs.last().is_some_and(|n| ast_cx.index.is_result_fn(n)) => {
                Some(format!("{}()", segs.join("::")))
            }
            _ => None,
        },
        ExprKind::MacroCall { name, .. } if name == "write" || name == "writeln" => {
            Some(format!("{name}!"))
        }
        _ => None,
    }
}

struct DiscardVisitor<'a, 'b> {
    ctx: &'a FileContext<'a>,
    ast_cx: &'a AstContext<'a>,
    out: &'b mut Vec<Diagnostic>,
}

impl ast::Visit for DiscardVisitor<'_, '_> {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let {
                underscore: true,
                init: Some(init),
                let_ti,
                semi_ti,
                ..
            } => {
                if self.ctx.is_test(*let_ti) {
                    return;
                }
                let Some(source) = result_source(init, self.ast_cx) else {
                    return;
                };
                let let_tok = self.ctx.tok(*let_ti);
                let mut d = Diagnostic::error(
                    self.ctx.file,
                    let_tok.line,
                    let_tok.col,
                    "R001",
                    format!(
                        "`let _ =` discards the `Result` from `{source}`; handle \
                         it, propagate it, or waive with the reason it is \
                         ignorable"
                    ),
                );
                if let Some(semi_ti) = semi_ti {
                    let init_start = self.ctx.tok(init.start_ti);
                    let semi = self.ctx.tok(*semi_ti);
                    d = d.with_fix(Fix {
                        summary: format!("replace `let _ =` with `{source}.expect(…)`"),
                        edits: vec![
                            Edit::replace(
                                let_tok.line,
                                let_tok.col,
                                init_start.line,
                                init_start.col,
                                "",
                            ),
                            Edit::insert_at(semi.line, semi.col, EXPECT_SCAFFOLD),
                            Edit::insert_at(semi.line, u32::MAX, WAIVER_SCAFFOLD),
                        ],
                    });
                }
                self.out.push(d);
            }
            Stmt::Expr { expr, semi: true } => {
                if self.ctx.is_test(expr.ti) {
                    return;
                }
                let Some(source) = result_source(expr, self.ast_cx) else {
                    return;
                };
                let head = self.ctx.tok(expr.ti);
                let end = self.ctx.tok(expr.end_ti);
                let after_end = end.col + end.text.chars().count() as u32;
                let d = Diagnostic::error(
                    self.ctx.file,
                    head.line,
                    head.col,
                    "R001",
                    format!(
                        "statement discards the `Result` from `{source}`; handle \
                         it, propagate it, or waive with the reason it is \
                         ignorable"
                    ),
                )
                .with_fix(Fix {
                    summary: format!("call `.expect(…)` on the `{source}` result"),
                    edits: vec![
                        Edit::insert_at(end.line, after_end, EXPECT_SCAFFOLD),
                        Edit::insert_at(end.line, u32::MAX, WAIVER_SCAFFOLD),
                    ],
                });
                self.out.push(d);
            }
            _ => {}
        }
    }
}
