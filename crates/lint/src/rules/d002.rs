//! D002 — wall-clock time sources.
//!
//! `std::time::Instant` and `SystemTime` read the host clock, which differs
//! run to run; simulated components must take time from the `jitsu_sim`
//! virtual clock so every timestamp is a function of the event schedule.
//! The rule fires on *any* mention of the types — imports included, test
//! code included — because a wall-clock reading has no legitimate consumer
//! inside the simulated world. The one sanctioned exception is the
//! config's `wall_clock_sanctioned_dirs` (the root `src/bin/` harness
//! binaries): they stand *outside* the simulation and time it from the
//! outside, which is exactly where `bench_snapshot`'s wall-time half must
//! live so no measured path can read the host clock.

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::FileContext;

const WALL_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

pub fn check(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    if ctx.config.is_wall_clock_sanctioned(ctx.file) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for ci in 0..ctx.len() {
        let t = ctx.tok(ci);
        if t.kind == TokenKind::Ident && WALL_CLOCK_TYPES.contains(&t.text.as_str()) {
            out.push(Diagnostic::error(
                ctx.file,
                t.line,
                t.col,
                "D002",
                format!(
                    "wall-clock `{}` is forbidden; take time from the jitsu_sim \
                     virtual clock (SimTime/SimDuration)",
                    t.text
                ),
            ));
        }
    }
    out
}
