//! Deterministic workspace traversal.
//!
//! `read_dir` order is filesystem-dependent, so entries are sorted by name
//! at every level: the analyzer's own output must be byte-identical across
//! runs, for the same reason it exists at all.

use crate::config::Config;
use std::fs;
use std::io;
use std::path::Path;

/// The directories under the workspace root that are analyzed. `vendor/`
/// is deliberately absent: the vendored stand-ins emulate external crates
/// (criterion really does read the wall clock) and are not simulation code.
const ROOTS: &[&str] = &["crates", "src", "tests"];

/// Every `.rs` file to analyze, as sorted workspace-relative `/`-separated
/// paths.
pub fn rust_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            visit(&dir, top, cfg, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, rel: &str, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') {
            continue;
        }
        let path = entry.path();
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            if cfg.skip_dirs.contains(&name) {
                continue;
            }
            visit(&path, &child_rel, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_this_crate_and_skips_fixtures() {
        // The lint crate lives at <workspace>/crates/lint.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = rust_files(&root, &Config::default()).expect("walk workspace");
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(
            files.iter().all(|f| !f.contains("/fixtures/")),
            "fixture files must never be analyzed as workspace code"
        );
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
    }
}
