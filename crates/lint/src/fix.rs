//! Machine-applicable fixes: a [`Fix`] is a set of text edits positioned by
//! 1-based line and *character* column (matching the lexer's coordinates).
//!
//! `--fix` applies the mechanical subset of the rule suite — R001 discarded
//! `Result`s become `.expect(…)` with a P001 waiver scaffold, N001 `as`
//! narrowings become `try_from(…)` — leaving a `TODO` in each scaffold so
//! the author still has to state the invariant. Edits never try to be
//! clever: overlapping edits are dropped (first come, first served after
//! sorting), and the result is expected to be re-linted.

/// One text edit: replace the half-open span `[(line, col), (end_line,
/// end_col))` with `insert`. A pure insertion has `end == start`. `col ==
/// u32::MAX` means "end of that line" (before the newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    pub line: u32,
    pub col: u32,
    pub end_line: u32,
    pub end_col: u32,
    pub insert: String,
}

impl Edit {
    /// A pure insertion at `(line, col)`.
    pub fn insert_at(line: u32, col: u32, text: impl Into<String>) -> Self {
        Edit {
            line,
            col,
            end_line: line,
            end_col: col,
            insert: text.into(),
        }
    }

    /// Replace the span from `(line, col)` to `(end_line, end_col)`.
    pub fn replace(
        line: u32,
        col: u32,
        end_line: u32,
        end_col: u32,
        text: impl Into<String>,
    ) -> Self {
        Edit {
            line,
            col,
            end_line,
            end_col,
            insert: text.into(),
        }
    }
}

/// A machine-applicable fix attached to a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// What the fix does, for `--fix` reporting.
    pub summary: String,
    pub edits: Vec<Edit>,
}

/// Apply a set of fixes to a source string. Edits are applied last-position
/// first so earlier edits don't shift later coordinates; an edit that
/// overlaps an already-applied one is skipped.
pub fn apply(source: &str, fixes: &[Fix]) -> String {
    let mut edits: Vec<&Edit> = fixes.iter().flat_map(|f| &f.edits).collect();
    // Sort by start position descending (apply bottom-up).
    edits.sort_by_key(|e| std::cmp::Reverse((e.line, e.col)));

    let line_starts = compute_line_starts(source);
    let mut text = source.to_string();
    let mut applied_floor: Option<usize> = None; // lowest start byte applied so far
    for e in edits {
        let Some(start) = offset_of(&text, &line_starts, e.line, e.col) else {
            continue;
        };
        let Some(end) = offset_of(&text, &line_starts, e.end_line, e.end_col) else {
            continue;
        };
        if end < start {
            continue;
        }
        // Overlap guard: this edit must end at or before everything already
        // applied (we move strictly upward through the file).
        if let Some(floor) = applied_floor {
            if end > floor {
                continue;
            }
        }
        text.replace_range(start..end, &e.insert);
        applied_floor = Some(start);
    }
    text
}

/// Byte offsets of each line start in `source` (index 0 = line 1).
fn compute_line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Byte offset of 1-based `(line, col)` where `col` counts characters.
/// `col == u32::MAX` resolves to the end of the line. Columns past the end
/// of the line clamp to the end of the line.
fn offset_of(text: &str, line_starts: &[usize], line: u32, col: u32) -> Option<usize> {
    let ls = *line_starts.get(line.checked_sub(1)? as usize)?;
    let line_end = text[ls..].find('\n').map(|i| ls + i).unwrap_or(text.len());
    if col == u32::MAX {
        return Some(line_end);
    }
    let skip = col.saturating_sub(1) as usize;
    let off = ls
        + text[ls..line_end]
            .chars()
            .take(skip)
            .map(|c| c.len_utf8())
            .sum::<usize>();
    Some(off.min(line_end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(edits: Vec<Edit>) -> Fix {
        Fix {
            summary: "test".to_string(),
            edits,
        }
    }

    #[test]
    fn insertion_and_replacement_compose_bottom_up() {
        let src = "let _ = foo();\nlet x = 1;\n";
        let out = apply(
            src,
            &[fix(vec![
                Edit::replace(1, 1, 1, 9, ""),             // drop `let _ = `
                Edit::insert_at(1, 14, ".expect(\"ok\")"), // before `;`
            ])],
        );
        assert_eq!(out, "foo().expect(\"ok\");\nlet x = 1;\n");
    }

    #[test]
    fn end_of_line_sentinel_appends_before_newline() {
        let src = "foo();\nbar();\n";
        let out = apply(src, &[fix(vec![Edit::insert_at(1, u32::MAX, " // tail")])]);
        assert_eq!(out, "foo(); // tail\nbar();\n");
    }

    #[test]
    fn overlapping_edits_are_dropped() {
        let src = "abcdef\n";
        let out = apply(
            src,
            &[
                fix(vec![Edit::replace(1, 2, 1, 5, "X")]),
                fix(vec![Edit::replace(1, 4, 1, 6, "Y")]), // overlaps the first
            ],
        );
        // Exactly one of the two landed; the text must stay consistent.
        assert!(out == "aXef\n" || out == "abcYf\n", "{out:?}");
    }

    #[test]
    fn multiline_spans_replace_across_lines() {
        let src = "a(\n  b\n);\n";
        let out = apply(src, &[fix(vec![Edit::replace(1, 1, 3, 2, "c()")])]);
        assert_eq!(out, "c();\n");
    }

    #[test]
    fn char_columns_handle_multibyte_text() {
        let src = "écrit(œuf);\n";
        let out = apply(src, &[fix(vec![Edit::insert_at(1, 7, "x, ")])]);
        assert_eq!(out, "écrit(x, œuf);\n");
    }

    #[test]
    fn out_of_range_edits_are_ignored() {
        let src = "a\n";
        let out = apply(src, &[fix(vec![Edit::insert_at(99, 1, "nope")])]);
        assert_eq!(out, src);
    }
}
