//! Analyzer configuration: which crates each rule applies to.
//!
//! The defaults encode this workspace's layout. Rules look crates up by the
//! *directory* name under `crates/` (so `xen-sim`, not `xen_sim`).

/// Every rule code the waiver grammar accepts.
pub const RULES: &[&str] = &[
    "D001", "D002", "D003", "D004", "P001", "H001", "C001", "A001", "R001", "N001",
];

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose logic runs inside the discrete-event simulation: real
    /// OS concurrency (D004) is forbidden there because interleavings would
    /// not be controlled by the virtual clock.
    pub sim_logic_crates: Vec<String>,
    /// Crates where the panic policy (P001), sequence-arithmetic policy
    /// (C001) and discarded-Result policy (R001) apply to non-test code.
    pub core_crates: Vec<String>,
    /// Crates on the frame hot path, where buffer copies (A001) are
    /// counted against the zero-copy ratchet budget.
    pub frame_path_crates: Vec<String>,
    /// Crates encoding wire formats, where narrowing casts (N001) must be
    /// checked or waived.
    pub cast_crates: Vec<String>,
    /// Directory names that are never analyzed (build output, intentional
    /// rule-violation fixtures).
    pub skip_dirs: Vec<String>,
    /// Workspace-relative directory prefixes where wall-clock time (D002)
    /// is sanctioned: the root `src/bin/` harness binaries, which sit
    /// outside the simulated world and measure it from the outside (the
    /// `bench_snapshot` wall-time half). Everything under `crates/` stays
    /// fenced.
    pub wall_clock_sanctioned_dirs: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let sim_logic = [
            "sim",
            "xen-sim",
            "netstack",
            "conduit",
            "jitsu",
            "unikernel",
            "xenstore",
        ];
        Config {
            sim_logic_crates: sim_logic.iter().map(|s| s.to_string()).collect(),
            core_crates: sim_logic.iter().map(|s| s.to_string()).collect(),
            frame_path_crates: vec![
                "netstack".to_string(),
                "conduit".to_string(),
                "unikernel".to_string(),
                "jitsu".to_string(),
            ],
            cast_crates: vec![
                "netstack".to_string(),
                "xenstore".to_string(),
                "conduit".to_string(),
            ],
            skip_dirs: vec!["target".to_string(), "fixtures".to_string()],
            wall_clock_sanctioned_dirs: vec!["src/bin".to_string()],
        }
    }
}

impl Config {
    pub fn is_sim_logic(&self, crate_name: &str) -> bool {
        self.sim_logic_crates.iter().any(|c| c == crate_name)
    }

    pub fn is_core(&self, crate_name: &str) -> bool {
        self.core_crates.iter().any(|c| c == crate_name)
    }

    pub fn is_frame_path(&self, crate_name: &str) -> bool {
        self.frame_path_crates.iter().any(|c| c == crate_name)
    }

    pub fn is_cast_checked(&self, crate_name: &str) -> bool {
        self.cast_crates.iter().any(|c| c == crate_name)
    }

    /// Is `rel_path` inside a directory where wall-clock time is
    /// sanctioned (the root harness binaries)?
    pub fn is_wall_clock_sanctioned(&self, rel_path: &str) -> bool {
        self.wall_clock_sanctioned_dirs.iter().any(|d| {
            rel_path
                .strip_prefix(d.as_str())
                .is_some_and(|rest| rest.starts_with('/'))
        })
    }

    pub fn is_known_rule(rule: &str) -> bool {
        RULES.contains(&rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_sim_facing_crates() {
        let cfg = Config::default();
        for c in ["sim", "xen-sim", "xenstore", "jitsu"] {
            assert!(cfg.is_sim_logic(c), "{c} should be sim-logic");
            assert!(cfg.is_core(c), "{c} should be core");
        }
        assert!(!cfg.is_sim_logic("bench"));
        assert!(!cfg.is_core("lint"));
    }

    #[test]
    fn frame_path_and_cast_scopes_are_narrower_than_core() {
        let cfg = Config::default();
        for c in ["netstack", "conduit", "unikernel", "jitsu"] {
            assert!(cfg.is_frame_path(c), "{c} is on the frame path");
        }
        assert!(!cfg.is_frame_path("xenstore"));
        for c in ["netstack", "xenstore", "conduit"] {
            assert!(cfg.is_cast_checked(c), "{c} encodes wire formats");
        }
        assert!(!cfg.is_cast_checked("sim"));
        assert!(!cfg.is_cast_checked("lint"));
    }

    #[test]
    fn wall_clock_sanctuary_is_exactly_the_root_bin_dir() {
        let cfg = Config::default();
        assert!(cfg.is_wall_clock_sanctioned("src/bin/bench_snapshot.rs"));
        assert!(cfg.is_wall_clock_sanctioned("src/bin/nested/helper.rs"));
        assert!(!cfg.is_wall_clock_sanctioned("src/lib.rs"));
        assert!(!cfg.is_wall_clock_sanctioned("src/bingo.rs"));
        assert!(!cfg.is_wall_clock_sanctioned("crates/bench/src/bin/fig3.rs"));
        assert!(!cfg.is_wall_clock_sanctioned("crates/sim/src/time.rs"));
    }

    #[test]
    fn rule_codes_are_known() {
        for r in [
            "D001", "D002", "D003", "D004", "P001", "H001", "C001", "A001", "R001", "N001",
        ] {
            assert!(Config::is_known_rule(r));
        }
        assert!(!Config::is_known_rule("D999"));
    }
}
