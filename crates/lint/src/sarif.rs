//! SARIF 2.1.0 emission — machine-readable findings for CI annotation.
//!
//! Hand-rolled (the crate has zero dependencies): a tiny JSON writer with
//! proper string escaping, a fixed rule-metadata table, and deterministic
//! ordering (the diagnostics arrive already sorted, the rules table is a
//! constant). [`json_is_well_formed`] is a minimal recursive-descent JSON
//! syntax checker used by the golden test so the emitter can never ship a
//! structurally broken document.

use crate::diagnostics::{Diagnostic, Severity};
use std::fmt::Write;

/// Rule metadata embedded in the SARIF `tool.driver.rules` table.
const RULE_INFO: &[(&str, &str)] = &[
    ("D001", "iteration over unordered HashMap/HashSet bindings"),
    ("D002", "wall-clock time (Instant/SystemTime)"),
    (
        "D003",
        "ambient randomness (thread_rng/from_entropy/rand::random)",
    ),
    ("D004", "OS concurrency in sim-logic crates"),
    ("P001", "unwaived panic paths in core crates"),
    ("H001", "crate root missing #![forbid(unsafe_code)]"),
    ("C001", "raw ordering/arithmetic on TCP sequence numbers"),
    (
        "A001",
        "frame-buffer copies in the zero-copy hot path (ratcheted)",
    ),
    ("R001", "discarded Result values in core crates"),
    ("N001", "unchecked narrowing casts in wire-format crates"),
    ("W001", "waiver missing its mandatory reason"),
    ("W002", "waiver names an unknown rule"),
    ("W003", "waiver that silences nothing"),
];

/// Render diagnostics as a SARIF 2.1.0 document (pretty-printed, stable).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"jitsu-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULE_INFO.iter().enumerate() {
        let comma = if i + 1 < RULE_INFO.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }} }}{comma}",
            json_str(id),
            json_str(desc)
        );
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let _ = writeln!(s, "        {{");
        let _ = writeln!(s, "          \"ruleId\": {},", json_str(d.rule));
        let _ = writeln!(s, "          \"level\": {},", json_str(level));
        let _ = writeln!(
            s,
            "          \"message\": {{ \"text\": {} }},",
            json_str(&d.message)
        );
        let _ = writeln!(s, "          \"locations\": [");
        let _ = writeln!(s, "            {{");
        let _ = writeln!(s, "              \"physicalLocation\": {{");
        let _ = writeln!(
            s,
            "                \"artifactLocation\": {{ \"uri\": {} }},",
            json_str(&d.file)
        );
        let _ = writeln!(
            s,
            "                \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}",
            d.line, d.col
        );
        let _ = writeln!(s, "              }}");
        let _ = writeln!(s, "            }}");
        let _ = writeln!(s, "          ]");
        let _ = writeln!(s, "        }}{comma}");
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// Encode a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON well-formedness check (syntax only, no schema): a single
/// value followed by nothing but whitespace.
pub fn json_is_well_formed(text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let mut p = JsonCheck { chars, i: 0 };
    p.skip_ws();
    if !p.value() {
        return false;
    }
    p.skip_ws();
    p.i == p.chars.len()
}

struct JsonCheck {
    chars: Vec<char>,
    i: usize,
}

impl JsonCheck {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string(),
            Some('t') => self.literal("true"),
            Some('f') => self.literal("false"),
            Some('n') => self.literal("null"),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => false,
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        for c in word.chars() {
            if !self.eat(c) {
                return false;
            }
        }
        true
    }

    fn object(&mut self) -> bool {
        self.eat('{');
        self.skip_ws();
        if self.eat('}') {
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if !self.eat(':') {
                return false;
            }
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            return self.eat('}');
        }
    }

    fn array(&mut self) -> bool {
        self.eat('[');
        self.skip_ws();
        if self.eat(']') {
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            return self.eat(']');
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat('"') {
            return false;
        }
        loop {
            match self.peek() {
                None => return false,
                Some('"') => {
                    self.i += 1;
                    return true;
                }
                Some('\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => self.i += 1,
                        Some('u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return false,
                                }
                            }
                        }
                        _ => return false,
                    }
                }
                Some(c) if (c as u32) < 0x20 => return false,
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> bool {
        self.eat('-');
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
        if self.eat('.') {
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return false;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.i += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_run_is_well_formed_and_versioned() {
        let s = to_sarif(&[]);
        assert!(json_is_well_formed(&s), "invalid JSON:\n{s}");
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn results_carry_rule_level_message_and_location() {
        let diags = vec![
            Diagnostic::error("crates/netstack/src/x.rs", 7, 13, "A001", "a \"copy\""),
            Diagnostic::warning("a.rs", 1, 1, "W003", "unused waiver"),
        ];
        let s = to_sarif(&diags);
        assert!(json_is_well_formed(&s), "invalid JSON:\n{s}");
        assert!(s.contains("\"ruleId\": \"A001\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("a \\\"copy\\\""));
        assert!(s.contains("\"startLine\": 7, \"startColumn\": 13"));
        assert!(s.contains("\"uri\": \"crates/netstack/src/x.rs\""));
    }

    #[test]
    fn every_rule_code_has_metadata() {
        let s = to_sarif(&[]);
        for rule in crate::config::RULES {
            assert!(
                s.contains(&format!("\"id\": \"{rule}\"")),
                "rule {rule} missing from SARIF metadata"
            );
        }
        for w in ["W001", "W002", "W003"] {
            assert!(s.contains(&format!("\"id\": \"{w}\"")));
        }
    }

    #[test]
    fn json_checker_accepts_and_rejects_correctly() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e10",
            "{\"a\": [1, 2, {\"b\": \"c\\n\"}], \"d\": true}",
            " \"\\u00e9\" ",
        ] {
            assert!(json_is_well_formed(good), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01x",
            "1.",
            "nul",
        ] {
            assert!(!json_is_well_formed(bad), "{bad}");
        }
    }
}
