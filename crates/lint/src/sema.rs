//! The binding-aware dataflow layer: assign every expression a coarse
//! *class* (sequence number, byte buffer, sized integer, known struct, …)
//! by tracking declared types through `let` bindings, parameters, struct
//! fields and method returns.
//!
//! The classes are deliberately crude — this is a lint, not a type checker.
//! Anything unresolvable is [`Class::Unknown`], and every rule that
//! consumes a class treats `Unknown` as "stay silent": precision errs
//! toward false negatives, never toward noise.

use crate::ast::{self, Expr, ExprKind, File, LitKind, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Field names that denote TCP sequence-space values when the declaring
/// struct resolves them to `u32` (or cannot be resolved at all).
pub const SEQ_NAMES: &[&str] = &["seq", "ack", "snd_nxt", "snd_una", "rcv_nxt", "isn"];

/// Frame/buffer types whose wholesale copies the A001 ratchet counts.
pub const FRAME_TYPES: &[&str] = &[
    "EthernetFrame",
    "Ipv4Packet",
    "TcpSegment",
    "UdpDatagram",
    "ArpPacket",
    "IcmpEcho",
];

/// The coarse type class of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Class {
    /// Could not be resolved; rules must not fire on it.
    Unknown,
    Bool,
    /// Integer of the given bit width; `0` = unsuffixed literal
    /// (width unknown, so narrowing checks skip it).
    Int(u16),
    /// A TCP sequence-space `u32` (RFC 1982 serial arithmetic required).
    Seq,
    /// `Vec<u8>` / `&[u8]` payload bytes.
    ByteBuf,
    /// A struct known to the symbol index, by name.
    Struct(String),
    /// Resolved, but nothing any rule cares about.
    Other,
}

impl Class {
    /// Integer width for narrowing checks (`Seq` is a `u32`).
    pub fn int_width(&self) -> Option<u16> {
        match self {
            Class::Int(w) if *w > 0 => Some(*w),
            Class::Seq => Some(32),
            _ => None,
        }
    }
}

/// Workspace-wide symbol knowledge: which functions return `Result`, what
/// named functions return, and every struct's field table. Built once over
/// all parsed files so cross-file calls resolve; a single-file fallback
/// covers fixtures.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    returns_result: BTreeSet<String>,
    returns_other: BTreeSet<String>,
    /// fn name → return type text; ambiguous names map to `""`.
    fn_ret: BTreeMap<String, String>,
    /// struct name → (field name → type text).
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

impl SymbolIndex {
    /// Fold one parsed file into the index.
    pub fn add_file(&mut self, file: &File) {
        for (name, fields) in &file.structs {
            let entry = self.structs.entry(name.clone()).or_default();
            for (f, ty) in fields {
                entry.entry(f.clone()).or_insert_with(|| ty.clone());
            }
        }
        for f in &file.functions {
            match &f.ret {
                Some(r) if is_result_ty(r) => {
                    self.returns_result.insert(f.name.clone());
                }
                _ => {
                    self.returns_other.insert(f.name.clone());
                }
            }
            let ret = f.ret.clone().unwrap_or_default();
            self.fn_ret
                .entry(f.name.clone())
                .and_modify(|prev| {
                    if *prev != ret {
                        prev.clear(); // ambiguous across the workspace
                    }
                })
                .or_insert(ret);
        }
    }

    /// Does every known function of this name return a `Result`?
    ///
    /// Requiring *unanimity* keeps R001 quiet when one `fn close()` returns
    /// `Result` and another does not — a missed site is recoverable, a
    /// false positive forces a bogus waiver.
    pub fn is_result_fn(&self, name: &str) -> bool {
        self.returns_result.contains(name) && !self.returns_other.contains(name)
    }

    /// Unambiguous return type of a named function, if known.
    pub fn ret_of(&self, name: &str) -> Option<&str> {
        self.fn_ret
            .get(name)
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }
}

/// Does a return-type string denote `Result<…>` (including aliases like
/// `io::Result<…>`)?
pub fn is_result_ty(ty: &str) -> bool {
    let head = ty.split('<').next().unwrap_or(ty);
    head == "Result" || head.ends_with("::Result")
}

/// Resolve a declared type string to a class. `name_hint` is the binding
/// or field name: a `u32` named like a sequence number classifies as
/// [`Class::Seq`].
pub fn class_of_ty(ty: &str, name_hint: Option<&str>, index: &SymbolIndex) -> Class {
    let mut t = ty.trim();
    // Strip reference/mutability sigils; they don't change the class.
    loop {
        if let Some(rest) = t.strip_prefix('&') {
            t = rest.trim_start();
            if let Some(rest) = t.strip_prefix("mut ") {
                t = rest.trim_start();
            }
            // A stripped lifetime: `&'a T`.
            if t.starts_with('\'') {
                t = t.split_once(' ').map_or("", |(_, r)| r).trim_start();
            }
            continue;
        }
        break;
    }
    match t {
        "bool" => return Class::Bool,
        "u8" | "i8" => return Class::Int(8),
        "u16" | "i16" => return Class::Int(16),
        "i32" => return Class::Int(32),
        "u64" | "i64" | "usize" | "isize" => return Class::Int(64),
        "u128" | "i128" => return Class::Int(128),
        "Vec<u8>" | "[u8]" => return Class::ByteBuf,
        "u32" => {
            return match name_hint {
                Some(n) if SEQ_NAMES.contains(&n) => Class::Seq,
                _ => Class::Int(32),
            };
        }
        _ => {}
    }
    if t.starts_with("[u8;") {
        return Class::ByteBuf;
    }
    let head = t
        .split(['<', ' '])
        .next()
        .unwrap_or(t)
        .rsplit("::")
        .next()
        .unwrap_or(t);
    if index.structs.contains_key(head) || FRAME_TYPES.contains(&head) {
        return Class::Struct(head.to_string());
    }
    if t.is_empty() {
        Class::Unknown
    } else {
        Class::Other
    }
}

/// Per-function classification result: `classes[expr.id]` is the class of
/// that expression node (for every function in the file).
pub struct Classified {
    pub classes: Vec<Class>,
}

impl Classified {
    pub fn class(&self, e: &Expr) -> &Class {
        self.classes.get(e.id as usize).unwrap_or(&Class::Unknown)
    }
}

/// Classify every expression in every function of a parsed file.
pub fn classify(file: &File, index: &SymbolIndex) -> Classified {
    let mut classes = vec![Class::Unknown; file.expr_count as usize];
    for f in &file.functions {
        let mut env: BTreeMap<String, Class> = BTreeMap::new();
        if let Some(self_ty) = &f.self_ty {
            env.insert("self".to_string(), Class::Struct(self_ty.clone()));
        }
        for (name, ty) in &f.params {
            env.insert(name.clone(), class_of_ty(ty, Some(name), index));
        }
        if let Some(body) = &f.body {
            let mut cx = ClassifyCx {
                index,
                classes: &mut classes,
            };
            cx.block(body, &mut env);
        }
    }
    Classified { classes }
}

struct ClassifyCx<'a> {
    index: &'a SymbolIndex,
    classes: &'a mut Vec<Class>,
}

impl ClassifyCx<'_> {
    fn block(&mut self, b: &ast::Block, env: &mut BTreeMap<String, Class>) -> Class {
        let mut last = Class::Other;
        for (i, s) in b.stmts.iter().enumerate() {
            match s {
                Stmt::Let {
                    names,
                    ty,
                    init,
                    els,
                    ..
                } => {
                    let init_class = init.as_ref().map(|e| self.expr(e, env));
                    if let Some(b) = els {
                        self.block(b, env);
                    }
                    let declared = ty
                        .as_ref()
                        .map(|t| class_of_ty(t, names.first().map(String::as_str), self.index));
                    // A declared type wins; otherwise flow the initializer
                    // class into a single-name binding.
                    let class = match (declared, init_class) {
                        (Some(c), _) if c != Class::Unknown => c,
                        (_, Some(c)) => c,
                        _ => Class::Unknown,
                    };
                    if names.len() == 1 {
                        env.insert(names[0].clone(), class);
                    } else {
                        for n in names {
                            env.insert(n.clone(), Class::Unknown);
                        }
                    }
                    last = Class::Other;
                }
                Stmt::Expr { expr, semi } => {
                    let c = self.expr(expr, env);
                    last = if *semi || i + 1 != b.stmts.len() {
                        Class::Other
                    } else {
                        c
                    };
                }
            }
        }
        last
    }

    fn expr(&mut self, e: &Expr, env: &mut BTreeMap<String, Class>) -> Class {
        let class = self.compute(e, env);
        if let Some(slot) = self.classes.get_mut(e.id as usize) {
            *slot = class.clone();
        }
        class
    }

    fn compute(&mut self, e: &Expr, env: &mut BTreeMap<String, Class>) -> Class {
        match &e.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => env.get(name).cloned().unwrap_or(Class::Unknown),
                [ty, tail] => {
                    // Associated consts like `u32::MAX` keep their width.
                    if matches!(tail.as_str(), "MAX" | "MIN" | "BITS") {
                        class_of_ty(ty, None, self.index)
                    } else {
                        Class::Unknown
                    }
                }
                _ => Class::Unknown,
            },
            ExprKind::Lit(l) => match l {
                LitKind::Int(w) => Class::Int(*w),
                LitKind::Bool => Class::Bool,
                _ => Class::Other,
            },
            ExprKind::Field { base, name } => {
                let base_class = self.expr(base, env);
                match base_class {
                    Class::Struct(s) => {
                        if let Some(ty) = self.index.structs.get(&s).and_then(|fs| fs.get(name)) {
                            class_of_ty(ty, Some(name), self.index)
                        } else if SEQ_NAMES.contains(&name.as_str()) {
                            // Known struct but unlisted field (e.g. behind
                            // a tuple): fall back to the naming convention.
                            Class::Seq
                        } else {
                            Class::Unknown
                        }
                    }
                    Class::Unknown if SEQ_NAMES.contains(&name.as_str()) => Class::Seq,
                    _ => Class::Unknown,
                }
            }
            ExprKind::MethodCall { base, name, args } => {
                let base_class = self.expr(base, env);
                for a in args {
                    self.expr(a, env);
                }
                match name.as_str() {
                    "len" | "count" | "capacity" => Class::Int(64),
                    "to_vec" => Class::ByteBuf,
                    "clone" | "to_owned" | "min" | "max" => base_class,
                    n if n.starts_with("wrapping_") || n.starts_with("saturating_") => base_class,
                    _ => self
                        .index
                        .ret_of(name)
                        .map(|r| class_of_ty(r, None, self.index))
                        .unwrap_or(Class::Unknown),
                }
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee, env);
                for a in args {
                    self.expr(a, env);
                }
                if let ExprKind::Path(segs) = &callee.kind {
                    match segs.as_slice() {
                        // `u16::from(x)` and friends.
                        [ty, ctor] if ctor == "from" => {
                            return class_of_ty(ty, None, self.index);
                        }
                        [name] => {
                            if let Some(r) = self.index.ret_of(name) {
                                return class_of_ty(r, None, self.index);
                            }
                        }
                        _ => {}
                    }
                }
                Class::Unknown
            }
            ExprKind::MacroCall { name, args } => {
                for a in args {
                    self.expr(a, env);
                }
                if name == "vec" {
                    Class::Unknown // could be Vec<u8>, but we can't tell
                } else {
                    Class::Other
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lc = self.expr(lhs, env);
                let rc = self.expr(rhs, env);
                use ast::BinOp::*;
                match op {
                    Lt | Le | Gt | Ge | Eq | Ne | And | Or => Class::Bool,
                    _ => {
                        if lc == Class::Seq || rc == Class::Seq {
                            Class::Seq
                        } else if lc != Class::Unknown {
                            lc
                        } else {
                            rc
                        }
                    }
                }
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                self.expr(lhs, env);
                self.expr(rhs, env);
                Class::Other
            }
            ExprKind::Cast { base, ty, .. } => {
                self.expr(base, env);
                class_of_ty(ty, None, self.index)
            }
            ExprKind::Unary { op, base } => {
                let c = self.expr(base, env);
                match op {
                    '&' | '*' | '-' => c,
                    '!' => c,
                    _ => Class::Unknown,
                }
            }
            ExprKind::Index { base, index } => {
                let bc = self.expr(base, env);
                self.expr(index, env);
                match bc {
                    // `buf[i]` is one byte; `buf[a..b]` is still a byte slice.
                    Class::ByteBuf => {
                        if matches!(index.kind, ExprKind::Range { .. }) {
                            Class::ByteBuf
                        } else {
                            Class::Int(8)
                        }
                    }
                    _ => Class::Unknown,
                }
            }
            ExprKind::Try { base } => {
                self.expr(base, env);
                Class::Unknown
            }
            ExprKind::Tuple(xs) | ExprKind::Array(xs) => {
                for x in xs {
                    self.expr(x, env);
                }
                Class::Other
            }
            ExprKind::Block(b) => self.block(b, env),
            ExprKind::If {
                names,
                cond,
                then,
                els,
            } => {
                self.expr(cond, env);
                for n in names {
                    env.insert(n.clone(), Class::Unknown);
                }
                self.block(then, env);
                if let Some(els) = els {
                    self.expr(els, env);
                }
                Class::Unknown
            }
            ExprKind::Match { scrut, arms } => {
                self.expr(scrut, env);
                for arm in arms {
                    for n in &arm.names {
                        env.insert(n.clone(), Class::Unknown);
                    }
                    self.expr(&arm.body, env);
                }
                Class::Unknown
            }
            ExprKind::For { names, iter, body } => {
                self.expr(iter, env);
                for n in names {
                    env.insert(n.clone(), Class::Unknown);
                }
                self.block(body, env);
                Class::Other
            }
            ExprKind::While { names, cond, body } => {
                self.expr(cond, env);
                for n in names {
                    env.insert(n.clone(), Class::Unknown);
                }
                self.block(body, env);
                Class::Other
            }
            ExprKind::Loop { body } => {
                self.block(body, env);
                Class::Unknown
            }
            ExprKind::Closure { names, body } => {
                for n in names {
                    env.insert(n.clone(), Class::Unknown);
                }
                self.expr(body, env);
                Class::Other
            }
            ExprKind::StructLit { path, fields, rest } => {
                for (_, v) in fields {
                    self.expr(v, env);
                }
                if let Some(r) = rest {
                    self.expr(r, env);
                }
                path.last()
                    .map(|p| class_of_ty(p, None, self.index))
                    .unwrap_or(Class::Unknown)
            }
            ExprKind::Range { lo, hi } => {
                if let Some(e) = lo {
                    self.expr(e, env);
                }
                if let Some(e) = hi {
                    self.expr(e, env);
                }
                Class::Other
            }
            ExprKind::Return(x) | ExprKind::Break(x) => {
                if let Some(e) = x {
                    self.expr(e, env);
                }
                Class::Other
            }
            ExprKind::Opaque => Class::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer;

    fn classify_src(src: &str) -> (File, Classified, SymbolIndex) {
        let toks = lexer::lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let file = ast::parse(&toks, &code);
        let mut index = SymbolIndex::default();
        index.add_file(&file);
        let classified = classify(&file, &index);
        (file, classified, index)
    }

    /// Find the class of the first expression matching a predicate.
    fn find_class(
        file: &File,
        classified: &Classified,
        pred: &dyn Fn(&Expr) -> bool,
    ) -> Option<Class> {
        struct Finder<'a> {
            pred: &'a dyn Fn(&Expr) -> bool,
            found: Option<u32>,
        }
        impl ast::Visit for Finder<'_> {
            fn expr(&mut self, e: &Expr) {
                if self.found.is_none() && (self.pred)(e) {
                    self.found = Some(e.id);
                }
            }
        }
        let mut f = Finder { pred, found: None };
        for func in &file.functions {
            if let Some(b) = &func.body {
                ast::visit_block(b, &mut f);
            }
        }
        f.found.map(|id| classified.classes[id as usize].clone())
    }

    #[test]
    fn struct_fields_resolve_through_self() {
        let src = "\
struct Tcb { snd_nxt: u32, done: bool }
impl Tcb {
    fn f(&self) -> bool { self.snd_nxt < 5 }
    fn g(&self) -> bool { self.done }
}
";
        let (file, cl, _) = classify_src(src);
        let seq = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Field { name, .. } if name == "snd_nxt"),
        );
        assert_eq!(seq, Some(Class::Seq));
        let done = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Field { name, .. } if name == "done"),
        );
        assert_eq!(done, Some(Class::Bool));
    }

    #[test]
    fn bool_ack_flag_is_not_a_sequence_number() {
        // `TcpFlags.ack: bool` must not classify as Seq just by its name.
        let src = "\
struct TcpFlags { ack: bool }
impl TcpFlags {
    fn bits(&self) -> u8 { (self.ack as u8) << 4 }
}
";
        let (file, cl, _) = classify_src(src);
        let ack = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Field { name, .. } if name == "ack"),
        );
        assert_eq!(ack, Some(Class::Bool));
    }

    #[test]
    fn let_bindings_flow_classes() {
        let src = "\
struct S { seq: u32 }
fn f(s: &S, data: &[u8]) {
    let x = s.seq;
    let v = data.to_vec();
    let n = v.len();
    let small = n as u8;
    (x, v, n, small);
}
";
        let (file, cl, _) = classify_src(src);
        let x = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Path(p) if p == &vec!["x".to_string()]),
        );
        assert_eq!(x, Some(Class::Seq));
        let v = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Path(p) if p == &vec!["v".to_string()]),
        );
        assert_eq!(v, Some(Class::ByteBuf));
        let n = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Path(p) if p == &vec!["n".to_string()]),
        );
        assert_eq!(n, Some(Class::Int(64)));
    }

    #[test]
    fn wrapping_arithmetic_keeps_seq_class() {
        let src = "\
struct S { snd_una: u32 }
fn f(s: &S) -> u32 { s.snd_una.wrapping_add(1) }
";
        let (file, cl, _) = classify_src(src);
        let w = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::MethodCall { name, .. } if name == "wrapping_add"),
        );
        assert_eq!(w, Some(Class::Seq));
    }

    #[test]
    fn result_fns_require_unanimous_signatures() {
        let src = "\
fn a() -> Result<u32, String> { Ok(1) }
fn b() -> u32 { 1 }
mod m { fn a() -> u32 { 2 } }
";
        let (_, _, index) = classify_src(src);
        assert!(!index.is_result_fn("a"), "ambiguous `a` must not count");
        assert!(!index.is_result_fn("b"));
    }

    #[test]
    fn io_result_aliases_count_as_result() {
        assert!(is_result_ty("Result<(), Error>"));
        assert!(is_result_ty("io::Result<Vec<String>>"));
        assert!(is_result_ty("std::io::Result<()>"));
        assert!(!is_result_ty("Option<u32>"));
        assert!(!is_result_ty("ResultSet"));
    }

    #[test]
    fn declared_type_beats_initializer() {
        let src = "fn f() { let n: u16 = g(); n; }";
        let (file, cl, _) = classify_src(src);
        let n = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Path(p) if p == &vec!["n".to_string()]),
        );
        assert_eq!(n, Some(Class::Int(16)));
    }

    #[test]
    fn unsuffixed_literals_have_unknown_width() {
        let src = "fn f() { let x = 5; x; }";
        let (file, cl, _) = classify_src(src);
        let x = find_class(
            &file,
            &cl,
            &|e| matches!(&e.kind, ExprKind::Path(p) if p == &vec!["x".to_string()]),
        );
        assert_eq!(x, Some(Class::Int(0)));
        assert_eq!(Class::Int(0).int_width(), None);
    }

    #[test]
    fn byte_slices_and_arrays_are_byte_buffers() {
        let mut idx = SymbolIndex::default();
        idx.structs.insert("Frame".into(), BTreeMap::new());
        assert_eq!(class_of_ty("&[u8]", None, &idx), Class::ByteBuf);
        assert_eq!(class_of_ty("Vec<u8>", None, &idx), Class::ByteBuf);
        assert_eq!(class_of_ty("[u8; 6]", None, &idx), Class::ByteBuf);
        assert_eq!(
            class_of_ty("&mut Frame", None, &idx),
            Class::Struct("Frame".into())
        );
        assert_eq!(
            class_of_ty("&TcpSegment", None, &idx),
            Class::Struct("TcpSegment".into())
        );
    }
}
