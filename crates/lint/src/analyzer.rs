//! Per-file analysis and workspace orchestration: lex, parse, classify
//! bindings, locate test-only spans, run the rule suite, then apply and
//! audit waivers and the A001 ratchet budget.

use crate::ast;
use crate::budget;
use crate::config::Config;
use crate::diagnostics::{self, Diagnostic};
use crate::lexer::{self, Token, TokenKind};
use crate::rules::{self, AstContext, FileContext};
use crate::sema::{self, SymbolIndex};
use crate::waiver;
use crate::walk;
use std::fs;
use std::io;
use std::path::Path;

/// Analyze one file standalone. `rel_path` is the workspace-relative,
/// `/`-separated path: the rules derive the owning crate, crate-root
/// status, and tests-directory status from it, so fixtures can opt into
/// any role by choosing their pretend path.
///
/// Cross-file symbols resolve only as far as the file itself declares them;
/// [`analyze_workspace`] builds a workspace-wide [`SymbolIndex`] first so
/// calls into other crates classify too.
pub fn analyze_file(rel_path: &str, source: &str, cfg: &Config) -> Vec<Diagnostic> {
    let tokens = lexer::lex(source);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let parsed = ast::parse(&tokens, &code);
    let mut index = SymbolIndex::default();
    index.add_file(&parsed);
    analyze_file_indexed(rel_path, source, cfg, &index)
}

/// Analyze one file against a pre-built (typically workspace-wide) symbol
/// index.
pub fn analyze_file_indexed(
    rel_path: &str,
    source: &str,
    cfg: &Config,
    index: &SymbolIndex,
) -> Vec<Diagnostic> {
    let tokens = lexer::lex(source);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let parsed = ast::parse(&tokens, &code);
    let classes = sema::classify(&parsed, index);
    let test_span = compute_test_spans(&tokens, &code);

    let segs: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match segs.as_slice() {
        ["crates", name, ..] => Some(*name),
        ["src", ..] => Some("jitsu_repro"),
        _ => None,
    };
    let is_crate_root = matches!(segs.as_slice(), ["src", "lib.rs"])
        || matches!(segs.as_slice(), ["crates", _, "src", "lib.rs"]);
    let in_tests_dir = segs.iter().any(|s| *s == "tests" || *s == "benches");

    let ctx = FileContext {
        file: rel_path,
        crate_name,
        is_crate_root,
        in_tests_dir,
        tokens: &tokens,
        code: &code,
        test_span: &test_span,
        config: cfg,
    };
    let ast_cx = AstContext {
        ast: &parsed,
        classes: &classes,
        index,
    };

    let findings = rules::all(&ctx, &ast_cx);
    let (waivers, mut diags) = waiver::collect(rel_path, &tokens);

    // A waiver silences every finding of its rule on its target line (two
    // unwraps guarded by one documented invariant need one waiver).
    let mut used = vec![false; waivers.len()];
    for f in findings {
        let hit = waivers
            .iter()
            .position(|w| w.rule == f.rule && w.target_line == Some(f.line));
        match hit {
            Some(wi) => used[wi] = true,
            None => diags.push(f),
        }
    }
    for (w, used) in waivers.iter().zip(used) {
        if !used {
            diags.push(Diagnostic::warning(
                rel_path,
                w.line,
                w.col,
                "W003",
                format!(
                    "unused waiver for {} (\"{}\") silences nothing",
                    w.rule, w.reason
                ),
            ));
        }
    }
    diagnostics::sort(&mut diags);
    diags
}

/// Analyze every `.rs` file under `crates/`, `src/`, and `tests/` below
/// `root`, plus workspace-level checks (a crate missing its root file, the
/// A001 ratchet budget).
///
/// Two passes: the first parses every file into a workspace-wide
/// [`SymbolIndex`] (so `Result`-returning functions and struct fields
/// resolve across crates), the second runs the rules.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    let files = walk::rust_files(root, cfg)?;
    let mut sources = Vec::with_capacity(files.len());
    let mut index = SymbolIndex::default();
    for rel in files {
        let source = fs::read_to_string(root.join(&rel))?;
        let tokens = lexer::lex(&source);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        index.add_file(&ast::parse(&tokens, &code));
        sources.push((rel, source));
    }

    let mut diags = Vec::new();
    for (rel, source) in &sources {
        diags.extend(analyze_file_indexed(rel, source, cfg, &index));
    }

    // The A001 ratchet: exactly-budgeted copies are acknowledged debt;
    // growth and slack are both errors.
    let budget_path = root.join(budget::BUDGET_PATH);
    let (parsed_budget, mut budget_errors) = if budget_path.is_file() {
        budget::parse(&fs::read_to_string(&budget_path)?)
    } else {
        (budget::Budget::default(), Vec::new())
    };
    diags = budget::apply(diags, &parsed_budget);
    diags.append(&mut budget_errors);
    // H001 also guards against a crate root disappearing outright.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            if dir.join("Cargo.toml").is_file() && !dir.join("src/lib.rs").is_file() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                diags.push(Diagnostic::error(
                    &format!("crates/{name}/src/lib.rs"),
                    1,
                    1,
                    "H001",
                    "workspace crate has no src/lib.rs root to carry \
                     `#![forbid(unsafe_code)]`",
                ));
            }
        }
    }
    diagnostics::sort(&mut diags);
    Ok(diags)
}

/// Mark every token that belongs to a `#[cfg(test)]` or `#[test]` item
/// (the attribute, the item header, and its body or terminating `;`).
///
/// `#[cfg(not(test))]` and `#[cfg_attr(test, …)]` are *not* test spans:
/// only a leading `cfg` containing `test` without `not`, or a bare `test`
/// attribute, count.
fn compute_test_spans(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut flag = vec![false; tokens.len()];
    let n = code.len();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };

    let mut ci = 0;
    while ci < n {
        if !(tok(ci).is_punct('#') && ci + 1 < n && tok(ci + 1).is_punct('[')) {
            ci += 1;
            continue;
        }
        let (attr_end, is_test) = parse_attr(tokens, code, ci);
        if !is_test {
            ci = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut item_start = attr_end + 1;
        while item_start + 1 < n
            && tok(item_start).is_punct('#')
            && tok(item_start + 1).is_punct('[')
        {
            item_start = parse_attr(tokens, code, item_start).0 + 1;
        }
        // The item runs to a `;` at depth 0 or through its first brace block.
        let mut end = n.saturating_sub(1);
        let mut j = item_start;
        while j < n {
            let t = tok(j);
            if t.is_punct(';') {
                end = j;
                break;
            }
            if t.is_punct('{') {
                let mut depth = 1i32;
                let mut q = j + 1;
                while q < n && depth > 0 {
                    if tok(q).is_punct('{') {
                        depth += 1;
                    } else if tok(q).is_punct('}') {
                        depth -= 1;
                    }
                    q += 1;
                }
                end = q.saturating_sub(1);
                break;
            }
            j += 1;
        }
        for k in ci..=end.min(n.saturating_sub(1)) {
            flag[code[k]] = true;
        }
        ci = end + 1;
    }
    flag
}

/// Parse the attribute opening at code index `ci` (which holds `#`).
/// Returns the code index of the closing `]` and whether it marks test-only
/// code.
fn parse_attr(tokens: &[Token], code: &[usize], ci: usize) -> (usize, bool) {
    let n = code.len();
    let tok = |k: usize| -> &Token { &tokens[code[k]] };
    let mut idents: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    let mut j = ci + 1; // at `[`
    while j < n {
        let t = tok(j);
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(&t.text);
        }
        j += 1;
    }
    let is_test = match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    (j.min(n.saturating_sub(1)), is_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<String> {
        analyze_file(path, src, &Config::default())
            .into_iter()
            .map(|d| d.to_string())
            .collect()
    }

    const ROOT_OK: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn cfg_test_modules_are_exempt_from_p001_and_d001() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in m.iter() {
            let _ = (k, v);
        }
        m.get(&1).unwrap();
    }
}
";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let out = run("crates/sim/src/x.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("P001"));
    }

    #[test]
    fn core_crate_unwrap_outside_tests_fires() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(run("crates/xenstore/src/x.rs", src).len(), 1);
        // Same code in a non-core crate is fine.
        assert!(run("crates/bench/src/x.rs", src).is_empty());
        // And in an integration-test file of a core crate.
        assert!(run("crates/xenstore/tests/x.rs", src).is_empty());
    }

    #[test]
    fn waived_finding_is_silenced_and_waiver_counts_as_used() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    // jitsu-lint: allow(P001, \"x is checked by the caller\")
    x.unwrap()
}
";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unused_waiver_warns() {
        let src = "// jitsu-lint: allow(P001, \"nothing here panics\")\nfn f() {}\n";
        let out = run("crates/sim/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("W003"), "{out:?}");
    }

    #[test]
    fn crate_root_without_forbid_fires_h001() {
        let out = run("crates/sim/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("H001"));
        assert!(run("crates/sim/src/lib.rs", ROOT_OK).is_empty());
    }

    #[test]
    fn non_root_files_skip_h001() {
        assert!(run("crates/sim/src/engine.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn d002_fires_even_in_test_code() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::time::Instant;
}
";
        let out = run("crates/sim/src/x.rs", src);
        assert_eq!(out.len(), 1);
        assert!(out[0].contains("D002"));
    }

    #[test]
    fn d002_is_sanctioned_in_the_root_harness_binaries() {
        // src/bin/ hosts the bench_snapshot wall-clock half, deliberately
        // outside the crates/ fence; the same source anywhere else fires.
        let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }\n";
        let d002 = |path: &str| run(path, src).iter().filter(|d| d.contains("D002")).count();
        assert_eq!(d002("src/bin/bench_snapshot.rs"), 0);
        assert_eq!(d002("src/lib.rs"), 2);
        assert_eq!(d002("crates/bench/src/bin/fig3.rs"), 2);
    }

    #[test]
    fn d004_only_applies_to_sim_logic_crates() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(run("crates/netstack/src/x.rs", src).len(), 1);
        assert!(run("crates/lint/src/x.rs", src).is_empty());
    }
}
