//! The A001 ratchet budget: `crates/lint/budget.toml`.
//!
//! The budget file records, per source file, exactly how many frame-buffer
//! copies (A001) the tree is *allowed* to contain. The analyzer enforces it
//! in both directions:
//!
//! - **growth** — a file with more A001 findings than its recorded budget
//!   (or any findings with no entry at all) fails with the individual
//!   findings plus a summary error: a new copy snuck into the hot path;
//! - **slack** — a recorded budget above the actual count fails at the
//!   stale budget entry: progress toward zero-copy must be banked by
//!   ratcheting the number down, so it can never silently regress.
//!
//! When the recorded count equals reality, the findings are suppressed:
//! the debt is acknowledged and metered. The grammar is a deliberately tiny
//! TOML subset:
//!
//! ```text
//! # comment
//! [a001]
//! "crates/netstack/src/tcp/conn.rs" = 2
//! ```

use crate::diagnostics::Diagnostic;
use std::collections::BTreeMap;

/// Workspace-relative path of the budget file.
pub const BUDGET_PATH: &str = "crates/lint/budget.toml";

/// One budget entry: the allowed count and the line it sits on (so slack
/// errors point at the stale entry, not at the clean source file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    pub allowed: u32,
    pub line: u32,
}

/// Parsed budget: file path → allowed A001 count.
#[derive(Debug, Default)]
pub struct Budget {
    pub entries: BTreeMap<String, Entry>,
}

/// Parse the budget file. Grammar errors are diagnostics against the
/// budget file itself (rule A001 — the budget is part of the ratchet).
pub fn parse(text: &str) -> (Budget, Vec<Diagnostic>) {
    let mut budget = Budget::default();
    let mut diags = Vec::new();
    let mut in_section = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            in_section = name.trim() == "a001";
            if !in_section {
                diags.push(Diagnostic::error(
                    BUDGET_PATH,
                    lineno,
                    1,
                    "A001",
                    format!("unknown budget section `[{}]`", name.trim()),
                ));
            }
            continue;
        }
        if !in_section {
            diags.push(Diagnostic::error(
                BUDGET_PATH,
                lineno,
                1,
                "A001",
                "budget entry outside the [a001] section",
            ));
            continue;
        }
        let parsed = line.split_once('=').and_then(|(k, v)| {
            let path = k.trim().strip_prefix('"')?.strip_suffix('"')?;
            let count: u32 = v.trim().parse().ok()?;
            Some((path.to_string(), count))
        });
        match parsed {
            Some((path, count)) if count > 0 => {
                if budget
                    .entries
                    .insert(
                        path.clone(),
                        Entry {
                            allowed: count,
                            line: lineno,
                        },
                    )
                    .is_some()
                {
                    diags.push(Diagnostic::error(
                        BUDGET_PATH,
                        lineno,
                        1,
                        "A001",
                        format!("duplicate budget entry for {path}"),
                    ));
                }
            }
            Some((path, _)) => {
                diags.push(Diagnostic::error(
                    BUDGET_PATH,
                    lineno,
                    1,
                    "A001",
                    format!(
                        "budget entry for {path} is zero — delete the line; \
                         zero is the default"
                    ),
                ));
            }
            None => {
                diags.push(Diagnostic::error(
                    BUDGET_PATH,
                    lineno,
                    1,
                    "A001",
                    "malformed budget entry: expected `\"path\" = COUNT`",
                ));
            }
        }
    }
    (budget, diags)
}

/// Apply the ratchet: consume the raw diagnostics, suppress exactly-
/// budgeted A001 findings, and convert growth/slack into errors.
pub fn apply(diags: Vec<Diagnostic>, budget: &Budget) -> Vec<Diagnostic> {
    let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
    for d in diags.iter().filter(|d| d.rule == "A001") {
        *counts.entry(d.file.as_str()).or_default() += 1;
    }

    let mut out = Vec::new();
    for d in diags.iter() {
        if d.rule != "A001" {
            out.push(d.clone());
            continue;
        }
        let actual = counts.get(d.file.as_str()).copied().unwrap_or(0);
        let allowed = budget.entries.get(&d.file).map(|e| e.allowed).unwrap_or(0);
        if actual > allowed {
            out.push(d.clone());
        }
        // `actual <= allowed`: suppressed here; slack handled below.
    }

    // Growth summaries: one per over-budget file.
    for (file, &actual) in &counts {
        let allowed = budget.entries.get(*file).map(|e| e.allowed).unwrap_or(0);
        if actual > allowed {
            out.push(Diagnostic::error(
                file,
                1,
                1,
                "A001",
                format!(
                    "frame-copy count grew: {actual} found, budget allows \
                     {allowed} ({BUDGET_PATH}) — remove the new copy; the \
                     ratchet only turns toward zero"
                ),
            ));
        }
    }

    // Slack: recorded budget above reality means banked progress was lost.
    for (file, entry) in &budget.entries {
        let actual = counts.get(file.as_str()).copied().unwrap_or(0);
        if actual < entry.allowed {
            out.push(Diagnostic::error(
                BUDGET_PATH,
                entry.line,
                1,
                "A001",
                format!(
                    "budget slack for {file}: records {} but only {actual} \
                     cop{} remain — ratchet the entry down to bank the \
                     progress",
                    entry.allowed,
                    if actual == 1 { "y" } else { "ies" },
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a001(file: &str, line: u32) -> Diagnostic {
        Diagnostic::error(file, line, 1, "A001", "copy")
    }

    #[test]
    fn grammar_parses_sections_comments_and_entries() {
        let (b, errs) = parse(
            "# the ratchet\n\n[a001]\n\"crates/netstack/src/x.rs\" = 2\n\"crates/conduit/src/y.rs\" = 1\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries["crates/netstack/src/x.rs"].allowed, 2);
        assert_eq!(b.entries["crates/conduit/src/y.rs"].line, 5);
    }

    #[test]
    fn malformed_entries_are_errors() {
        for bad in [
            "[a001]\nnot-an-entry\n",
            "[a001]\n\"p\" = nope\n",
            "[wrong]\n",
            "\"p\" = 1\n",
            "[a001]\n\"p\" = 0\n",
            "[a001]\n\"p\" = 1\n\"p\" = 2\n",
        ] {
            let (_, errs) = parse(bad);
            assert!(!errs.is_empty(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn exactly_budgeted_findings_are_suppressed() {
        let (b, _) = parse("[a001]\n\"f.rs\" = 2\n");
        let out = apply(vec![a001("f.rs", 3), a001("f.rs", 9)], &b);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn growth_keeps_findings_and_adds_a_summary() {
        let (b, _) = parse("[a001]\n\"f.rs\" = 1\n");
        let out = apply(vec![a001("f.rs", 3), a001("f.rs", 9)], &b);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().any(|d| d.message.contains("grew")));
    }

    #[test]
    fn unbudgeted_findings_always_fail() {
        let out = apply(vec![a001("f.rs", 3)], &Budget::default());
        assert_eq!(out.len(), 2, "{out:?}"); // the finding + the summary
    }

    #[test]
    fn slack_fails_at_the_budget_entry() {
        let (b, _) = parse("[a001]\n\"f.rs\" = 2\n");
        let out = apply(vec![a001("f.rs", 3)], &b);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, BUDGET_PATH);
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("slack"));
    }

    #[test]
    fn the_committed_budget_is_empty_and_stays_that_way() {
        // The zero-copy milestone: the committed budget.toml carries no
        // entries, so every A001 finding anywhere in the frame-path crates
        // is an immediate error. Re-adding an entry would un-retire the
        // ratchet; this test makes that a deliberate, reviewed act.
        let text = include_str!("../budget.toml");
        let (budget, errs) = parse(text);
        assert!(
            errs.is_empty(),
            "budget.toml must stay well-formed: {errs:?}"
        );
        assert!(
            budget.entries.is_empty(),
            "the A001 budget was retired to empty when the zero-copy frame \
             path landed; new copy debt may not be banked: {:?}",
            budget.entries
        );
    }

    #[test]
    fn non_a001_diagnostics_pass_through() {
        let d = Diagnostic::error("f.rs", 1, 1, "P001", "panic");
        let out = apply(vec![d.clone()], &Budget::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "P001");
    }
}
